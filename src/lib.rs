//! Optimal mixed vector clocks for multithreaded systems — facade crate.
//!
//! This crate re-exports the whole workspace behind one dependency, which is
//! what an application would normally add:
//!
//! * [`graph`] — bipartite graphs, Hopcroft–Karp matching, Kőnig–Egerváry
//!   minimum vertex cover, random graph generators.
//! * [`trace`] — the thread–object computation model, happened-before oracle
//!   and synthetic workload generators.
//! * [`clock`] — vector timestamps and the thread / object / mixed / chain
//!   clock assigners.
//! * [`core`] — the offline optimal algorithm (Algorithm 1) and the
//!   incremental timestamping engine.
//! * [`online`] — the Naive / Random / Popularity / Adaptive online
//!   mechanisms.
//! * [`shard`] — the sharded timestamping engine: components striped across
//!   shards with an order-preserving merge, for multi-core recording.
//! * [`runtime`] — traced shared objects, trace sessions, the live causality
//!   monitor and the conflict analyzer.
//! * [`net`] — the pipeline as a networked multi-client service: framed
//!   protocol, TCP and in-process transports, session server with
//!   credit-based backpressure and reconnect-and-replay.
//! * [`obs`] — the zero-dependency observability layer: sharded atomic
//!   counters / gauges / log₂ histograms, the process-global registry every
//!   stage records into, and JSON + Prometheus snapshots.
//! * [`eval`] — the harness that regenerates the paper's figures.
//!
//! # Example
//!
//! ```
//! use mixed_vector_clock::prelude::*;
//!
//! // Build a computation: two threads sharing one queue object.
//! let mut computation = Computation::new();
//! computation.record(ThreadId(0), ObjectId(0));
//! computation.record(ThreadId(1), ObjectId(0));
//! computation.record(ThreadId(1), ObjectId(1));
//!
//! // The optimal mixed clock needs fewer components than threads or objects.
//! let plan = OfflineOptimizer::new().plan_for_computation(&computation);
//! assert!(plan.clock_size() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mvc_clock as clock;
pub use mvc_core as core;
pub use mvc_eval as eval;
pub use mvc_graph as graph;
pub use mvc_net as net;
pub use mvc_obs as obs;
pub use mvc_online as online;
pub use mvc_runtime as runtime;
pub use mvc_shard as shard;
pub use mvc_trace as trace;

/// The most commonly used types, re-exported from `mvc_core::prelude` plus
/// the online mechanisms, the mechanism registry, the workload generators and
/// the runtime session types.
///
/// The unified timestamping surface is all here: the
/// [`Timestamper`](mvc_core::Timestamper) trait with its four
/// implementations ([`BatchReplay`](mvc_core::BatchReplay),
/// [`TimestampingEngine`](mvc_core::TimestampingEngine),
/// [`OnlineTimestamper`](mvc_online::OnlineTimestamper),
/// [`ShardedEngine`](mvc_shard::ShardedEngine)), the
/// [`MechanismRegistry`](mvc_online::MechanismRegistry) for name-based
/// mechanism selection, the batch
/// ([`TraceSession`](mvc_runtime::TraceSession)) / live
/// ([`LiveSession`](mvc_runtime::LiveSession)) recording modes, and the
/// pluggable event sinks ([`EventSink`](mvc_core::EventSink) with the
/// mem / codec / stats / tee backends).
pub mod prelude {
    pub use mvc_core::prelude::*;
    pub use mvc_net::{
        ClientConfig, InProcTransport, NetServer, ProducerClient, ServerConfig, TcpTransport,
    };
    pub use mvc_online::{
        mechanism_from_name, simulate_components, simulate_final_size, Adaptive, MechanismRegistry,
        MechanismStats, Naive, NaiveSide, OnlineMechanism, OnlineRun, OnlineTimestamper,
        Popularity, Random, UnknownMechanismError,
    };
    pub use mvc_runtime::{
        ConflictAnalyzer, LiveRun, LiveSession, OnlineMonitor, PipelineError, SharedObject,
        ThreadHandle, TraceSession,
    };
    pub use mvc_shard::{ShardExecutor, ShardedEngine};
    pub use mvc_trace::{WorkloadBuilder, WorkloadKind};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable() {
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        let plan = OfflineOptimizer::new().plan_for_computation(&c);
        assert_eq!(plan.clock_size(), 1);
    }
}
