//! Round-trip and determinism guarantees for the trace layer: the binary
//! codec must be lossless on any generated computation, and the workload
//! generator must be a pure function of its parameters and seed.

mod support;

use mvc_trace::codec::{decode, encode, DecodeError};
use mvc_trace::{WorkloadBuilder, WorkloadKind};
use proptest::prelude::*;

use support::{ComputationStrategy, WORKLOAD_KINDS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `decode(encode(c)) == c` for computations from every workload family.
    #[test]
    fn codec_round_trip_is_identity(
        computation in ComputationStrategy::small(),
    ) {
        let encoded = encode(&computation);
        let decoded = decode(&encoded).expect("well-formed buffer must decode");
        prop_assert_eq!(decoded, computation);
    }

    /// Truncating an encoded trace anywhere after the magic must fail with a
    /// decode error, never panic or return a partial computation silently.
    #[test]
    fn truncated_buffers_fail_loudly(
        computation in ComputationStrategy { threads: 1..6, objects: 1..6, ops: 1..60 },
        cut_fraction in 0.0f64..1.0,
    ) {
        let encoded = encode(&computation);
        let cut = 4 + ((encoded.len() - 4) as f64 * cut_fraction) as usize;
        if cut < encoded.len() {
            prop_assert!(decode(&encoded[..cut]).is_err());
        }
    }

    /// The generator is deterministic: identical parameters and seed yield
    /// an identical computation, for every workload family.
    #[test]
    fn generator_is_deterministic_per_seed(
        threads in 1usize..10,
        objects in 1usize..10,
        ops in 0usize..200,
        seed in 0u64..1_000_000,
        kind_index in 0usize..4,
    ) {
        let kind = WORKLOAD_KINDS[kind_index];
        let build = || {
            WorkloadBuilder::new(threads, objects)
                .operations(ops)
                .kind(kind)
                .seed(seed)
                .build()
        };
        let first = build();
        prop_assert_eq!(first.len(), ops);
        prop_assert_eq!(build(), first);
    }
}

#[test]
fn bad_magic_is_rejected() {
    assert_eq!(decode(b"NOPE"), Err(DecodeError::BadMagic));
    assert_eq!(decode(b""), Err(DecodeError::BadMagic));
}

#[test]
fn fixed_seed_reproduces_the_same_trace_across_calls() {
    // A pinned spot-check: if the generator's sampling order ever changes,
    // this fails loudly so the change is made knowingly (it invalidates any
    // recorded experiment seeds).
    let a = WorkloadBuilder::new(7, 5)
        .operations(64)
        .kind(WorkloadKind::Nonuniform {
            hot_fraction: 0.25,
            hot_boost: 5.0,
        })
        .seed(424242)
        .build();
    let b = WorkloadBuilder::new(7, 5)
        .operations(64)
        .kind(WorkloadKind::Nonuniform {
            hot_fraction: 0.25,
            hot_boost: 5.0,
        })
        .seed(424242)
        .build();
    assert_eq!(a, b);
    assert_eq!(a.len(), 64);
    assert!(a.thread_count() <= 7 && a.object_count() <= 5);
}
