//! Cross-crate conformance suite: the paper's load-bearing theorems as
//! executable oracles.
//!
//! Ten invariant families are encoded so that any future refactor of the
//! graph, clock, core, online, shard, runtime or net crates is checked
//! against the mathematics rather than against snapshots:
//!
//! 1. **Kőnig duality (Theorem: offline optimality).**  The offline
//!    optimizer's clock size equals the maximum matching of the
//!    thread–object bipartite graph — cross-checked against both matching
//!    algorithms in `mvc_graph` and, on small graphs, against a brute-force
//!    enumeration of *all* vertex covers.
//! 2. **Order embedding (the vector clock condition).**  Every timestamp
//!    assigner that claims to characterise happened-before must map vector
//!    comparison exactly onto poset reachability: `s → t ⇔ s.v < t.v`,
//!    with concurrency ⇔ incomparability.
//! 3. **Online lower bound and the Adaptive budget.**  Every online
//!    mechanism's final clock is lower-bounded by the offline optimum of the
//!    final revealed graph (its component set is a vertex cover too), and
//!    the Adaptive mechanism respects its design bound on adversarial
//!    streams: at most `node_threshold` non-thread components, while pure
//!    Naive degenerates linearly on the star stream.
//! 4. **API unification.**  The redesigned surface must not change the
//!    mathematics: every registry mechanism, driven as a
//!    `Box<dyn OnlineMechanism>`, is bit-identical to its concrete-typed
//!    counterpart, and the three [`Timestamper`] implementations (batch
//!    replay, engine, online) agree on a replayed computation with a fixed
//!    component map.
//! 5. **Incremental optimum maintenance.**  After *every* insertion of a
//!    random edge stream, the incrementally maintained matching equals a
//!    from-scratch Hopcroft–Karp on the revealed prefix, and the lazily
//!    rebuilt cover satisfies Kőnig (size equals matching size, covers all
//!    edges) — the incremental engine is a pure optimisation, never a new
//!    algorithm.
//! 6. **Sharded timestamping parity.**  The sharded engine — any shard
//!    count, either executor, with or without mid-run component additions —
//!    produces the sequential engine's stamp stream bit for bit: sharding
//!    is a scheduling strategy, never a semantic change.
//! 7. **Ingest pipeline faithfulness.**  A live multi-threaded run through
//!    the segmented per-thread ingest buffers, the order-preserving merge,
//!    the sharded engine and any sink backend produces timestamps
//!    bit-for-bit equal to a post-hoc sequential batch replay of the merged
//!    interleaving — contention-free ingest is a scheduling strategy too,
//!    never a semantic change.
//! 8. **Streaming analyses equal post-hoc analysis.**  The analysis sinks
//!    riding the live pipeline reach the verdicts post-hoc analysis reaches
//!    from the recorded trace: the streaming `ConflictSink` flags *exactly*
//!    the pairs `ConflictAnalyzer` reports (same groups, same pairs, despite
//!    live stamps vs. a fresh offline-optimal plan — any valid cover
//!    characterises happened-before), and the streaming reachability index
//!    agrees with the bitset `CausalityOracle` on every in-window pair.
//! 9. **Networked service faithfulness.**  A multi-client run through the
//!    `mvc-net` framed protocol — N producer clients over in-process
//!    transports, one of them forced through a mid-stream disconnect and
//!    reconnect-and-replay — produces stamps bit-for-bit equal to a
//!    sequential batch replay of the same merged interleaving, and every
//!    client receives exactly its own threads' stamps in its own record
//!    order: the network is a scheduling strategy too, never a semantic
//!    change.
//! 10. **Wide-clock representations and shard assignments are invisible.**
//!     The sequential engine's chunked stamp format produces the dense
//!     format's stamps (and row readbacks) bit for bit at widths 64, 512 and
//!     4096, and the sharded engine under the locality-aware partitioned
//!     assignment — including a mid-run repartition that migrates worker
//!     slice state — produces the modulo-striped engine's stamps bit for
//!     bit on both executors: row layout and component placement are
//!     representation choices, never semantic ones.

mod support;

use mvc_clock::chain::ChainClockAssigner;
use mvc_clock::vector::{ObjectVectorClockAssigner, ThreadVectorClockAssigner};
use mvc_clock::{ClockOrd, TimestampAssigner, VectorTimestamp};
use mvc_core::{
    replay, verify_assignment, EventSink, OfflineOptimizer, StampFormat, Timestamper,
    TimestampingEngine,
};
use mvc_graph::matching::{hopcroft_karp, simple_augmenting};
use mvc_graph::{BipartiteGraph, IncrementalOptimum};
use mvc_online::{
    Adaptive, CompetitiveTracker, MechanismRegistry, Naive, OnlineMechanism, OnlineTimestamper,
    Popularity, Random,
};
use mvc_shard::{ShardAssignment, ShardExecutor, ShardedEngine};
use mvc_trace::generator::computation_from_edge_stream;
use mvc_trace::{
    CausalityOracle, Computation, EventId, ObjectId, ThreadId, WorkloadBuilder, WorkloadKind,
};
use proptest::prelude::*;

use support::{ComputationStrategy, EdgeStreamStrategy, GraphComputationStrategy};

// ---------------------------------------------------------------------------
// Oracle 1: Kőnig duality / offline optimality
// ---------------------------------------------------------------------------

/// Exhaustive minimum vertex cover over the graph's active vertices.
///
/// Only usable on small graphs (≲ 16 active vertices); serves as the
/// algorithm-independent ground truth for the Kőnig–Egerváry construction.
fn brute_force_min_cover(graph: &BipartiteGraph) -> usize {
    let left: Vec<usize> = graph.active_left().collect();
    let right: Vec<usize> = graph.active_right().collect();
    let edges: Vec<(usize, usize)> = graph.edges().collect();
    let n = left.len() + right.len();
    assert!(n <= 20, "brute force cover limited to small graphs");
    let mut best = n;
    for mask in 0u32..(1 << n) {
        let size = mask.count_ones() as usize;
        if size >= best {
            continue;
        }
        let in_cover = |l: usize, r: usize| {
            let li = left.iter().position(|&x| x == l);
            let ri = right.iter().position(|&x| x == r);
            li.is_some_and(|i| mask & (1 << i) != 0)
                || ri.is_some_and(|i| mask & (1 << (left.len() + i)) != 0)
        };
        if edges.iter().all(|&(l, r)| in_cover(l, r)) {
            best = size;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kőnig duality, algorithm cross-check: the offline clock size equals
    /// the maximum matching computed by *both* matching algorithms, and the
    /// produced component set is a genuine vertex cover of that size.
    #[test]
    fn offline_clock_size_equals_maximum_matching(
        gc in GraphComputationStrategy::medium(),
    ) {
        let (graph, computation) = gc;
        let plan = OfflineOptimizer::new().plan_for_graph(graph.clone());

        let hk = hopcroft_karp(&graph);
        let simple = simple_augmenting(&graph);
        prop_assert!(hk.is_valid_for(&graph));
        prop_assert_eq!(hk.size(), simple.size());
        prop_assert_eq!(plan.clock_size(), hk.size());
        prop_assert_eq!(plan.matching_size(), hk.size());

        prop_assert!(plan.cover().covers_all_edges(&graph));
        prop_assert_eq!(plan.cover().size(), plan.clock_size());

        // The plan built from the equivalent computation agrees.
        let from_computation = OfflineOptimizer::new().plan_for_computation(&computation);
        prop_assert_eq!(from_computation.clock_size(), plan.clock_size());
    }

    /// Kőnig duality, ground truth: on small graphs no vertex cover of any
    /// kind — not just covers the constructive proof can reach — is smaller
    /// than the matching-sized one the optimizer returns.
    #[test]
    fn offline_cover_is_globally_minimal(
        gc in GraphComputationStrategy::small(),
    ) {
        let (graph, _) = gc;
        let plan = OfflineOptimizer::new().plan_for_graph(graph.clone());
        prop_assert_eq!(plan.clock_size(), brute_force_min_cover(&graph));
    }
}

// ---------------------------------------------------------------------------
// Oracle 2: timestamps order-embed the happened-before poset
// ---------------------------------------------------------------------------

/// Checks `compare ⇔ reachability` for every ordered pair of events.
fn order_embeds(
    computation: &Computation,
    oracle: &CausalityOracle,
    stamps: &[VectorTimestamp],
) -> Result<(), String> {
    for i in 0..computation.len() {
        for j in 0..computation.len() {
            let (a, b) = (EventId(i), EventId(j));
            let cmp = stamps[i].compare(&stamps[j]);
            let expected = if i == j {
                ClockOrd::Equal
            } else if oracle.happened_before(a, b) {
                ClockOrd::Before
            } else if oracle.happened_before(b, a) {
                ClockOrd::After
            } else {
                ClockOrd::Concurrent
            };
            if cmp != expected {
                return Err(format!(
                    "events {i} vs {j}: expected {expected}, timestamps say {cmp}"
                ));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The vector clock condition for every characterising assigner: thread
    /// vector clocks, object vector clocks, the optimal mixed clock, and the
    /// chain clock all order-embed the happened-before poset.
    #[test]
    fn timestamps_order_embed_happened_before(
        computation in ComputationStrategy::small(),
    ) {
        let oracle = computation.causality_oracle();
        let plan = OfflineOptimizer::new().plan_for_computation(&computation);

        let assigners: [(&str, Vec<VectorTimestamp>); 4] = [
            ("thread", ThreadVectorClockAssigner::new().assign(&computation)),
            ("object", ObjectVectorClockAssigner::new().assign(&computation)),
            ("mixed", plan.assigner().assign(&computation)),
            ("chain", ChainClockAssigner::new().assign(&computation)),
        ];
        for (name, stamps) in assigners {
            prop_assert_eq!(stamps.len(), computation.len());
            if let Err(msg) = order_embeds(&computation, &oracle, &stamps) {
                prop_assert!(false, "{name} clock does not order-embed: {msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle 3: online lower bound + the Adaptive mechanism's budget
// ---------------------------------------------------------------------------

/// Replays one stream through a mechanism, checking the run against the
/// offline optimum of the final graph.
fn check_online_run<M: OnlineMechanism>(
    mechanism: M,
    computation: &Computation,
    offline_optimum: usize,
) -> Result<(), String> {
    let run = OnlineTimestamper::new(mechanism)
        .run(computation)
        .map_err(|e| e.to_string())?;
    let size = run.stats.clock_size();
    if size < offline_optimum {
        return Err(format!(
            "online clock {size} beat the offline optimum {offline_optimum}"
        ));
    }
    let ceiling = computation.thread_count() + computation.object_count();
    if size > ceiling {
        return Err(format!(
            "online clock {size} exceeds the trivial ceiling {ceiling}"
        ));
    }
    if !verify_assignment(computation, &run.timestamps) {
        return Err("online timestamps violate the vector clock condition".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every mechanism's final clock size is sandwiched between the offline
    /// optimum (its components are also a vertex cover of the final graph)
    /// and the trivial `threads + objects` ceiling, and its timestamps stay
    /// valid for the whole reveal order.
    #[test]
    fn online_clock_never_smaller_than_offline_optimum(
        stream in EdgeStreamStrategy { nodes: 2..12, density: 0.01..0.45 },
        seed in 0u64..1000,
    ) {
        let (graph, edges) = stream;
        let computation = computation_from_edge_stream(&edges);
        let optimum = OfflineOptimizer::new().plan_for_graph(graph).clock_size();

        for result in [
            check_online_run(Naive::threads(), &computation, optimum),
            check_online_run(Naive::objects(), &computation, optimum),
            check_online_run(Random::seeded(seed), &computation, optimum),
            check_online_run(Popularity::new(), &computation, optimum),
            check_online_run(Adaptive::with_paper_thresholds(), &computation, optimum),
        ] {
            if let Err(msg) = result {
                prop_assert!(false, "{}", msg);
            }
        }
    }

    /// Section IV's characterisation of the Naive mechanism: always choosing
    /// threads reproduces exactly the traditional thread vector clock size —
    /// one component per active thread.
    #[test]
    fn naive_threads_is_exactly_the_thread_vector_clock(
        computation in ComputationStrategy::small(),
    ) {
        let run = OnlineTimestamper::new(Naive::threads()).run(&computation).unwrap();
        prop_assert_eq!(run.stats.clock_size(), computation.thread_count());
        prop_assert_eq!(run.stats.object_components, 0);
    }

    /// The competitive trajectory never dips below optimal at any prefix:
    /// after every reveal, the online size dominates the optimum of the
    /// graph revealed so far.
    #[test]
    fn competitive_trajectory_dominates_prefix_optimum(
        stream in EdgeStreamStrategy { nodes: 2..10, density: 0.02..0.4 },
    ) {
        let (_, edges) = stream;
        let report = CompetitiveTracker::new(Popularity::new()).run(&edges);
        for point in &report.trajectory {
            prop_assert!(point.online_size >= point.offline_optimum);
            prop_assert!(point.ratio() >= 1.0);
        }
    }
}

/// The paper's adversarial family for Naive: a star around one hot object.
/// Naive-threads promotes every thread (ratio `n`); Popularity and Adaptive
/// promote the hub after at most one misstep (ratio ≤ 2).
#[test]
fn adaptive_and_popularity_stay_bounded_on_adversarial_star() {
    let n = 120;
    let star: Vec<(usize, usize)> = (0..n).map(|t| (t, 0)).collect();

    let naive = CompetitiveTracker::new(Naive::threads()).run(&star);
    assert_eq!(naive.final_point().unwrap().offline_optimum, 1);
    assert_eq!(naive.final_point().unwrap().online_size, n);

    for report in [
        CompetitiveTracker::new(Popularity::new()).run(&star),
        CompetitiveTracker::new(Adaptive::with_paper_thresholds()).run(&star),
    ] {
        let last = report.final_point().unwrap();
        assert_eq!(last.offline_optimum, 1);
        assert!(
            last.online_size <= 2,
            "hub mechanisms must converge on the star, got {}",
            last.online_size
        );
        assert!(report.worst_ratio() <= 2.0);
    }
}

/// The Adaptive mechanism's design bound: non-thread components can only be
/// added before the switch to Naive, so they never exceed the node
/// threshold — even on a stream engineered to force the switch.
#[test]
fn adaptive_respects_its_switch_budget_on_adversarial_stream() {
    // A perfect matching on 100+100 nodes: every reveal is uncovered, the
    // active node count blows through the threshold, and the mechanism must
    // switch to Naive partway through.
    let n = 100;
    let matching_stream: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
    let computation = computation_from_edge_stream(&matching_stream);

    let adaptive = Adaptive::with_paper_thresholds();
    let mut timestamper = OnlineTimestamper::new(adaptive);
    for event in computation.events() {
        timestamper.observe(event.thread, event.object).unwrap();
    }
    assert!(
        timestamper.mechanism().has_switched(),
        "the matching stream must force the switch"
    );
    let stats = timestamper.stats();
    assert!(
        stats.object_components <= 70,
        "non-thread components exceed the switch budget: {}",
        stats.object_components
    );
    // The final size is optimal here anyway (the stream IS a matching), so
    // the lower bound still holds.
    assert_eq!(stats.clock_size(), n);
}

// ---------------------------------------------------------------------------
// Oracle 4: the unified API is a refactor, not a new algorithm
// ---------------------------------------------------------------------------

/// Every registry mechanism, driven through `Box<dyn OnlineMechanism>`, must
/// produce bit-identical timestamps and stats to its concrete-typed
/// counterpart: the registry is a construction convenience, never a
/// behavioural fork.
#[test]
fn registry_mechanisms_match_their_concrete_counterparts_bit_for_bit() {
    let registry = MechanismRegistry::new();
    let parity_names: Vec<&str> = vec![
        "naive-threads",
        "naive-objects",
        "random",
        "popularity",
        "adaptive",
    ];
    assert_eq!(
        parity_names,
        MechanismRegistry::names(),
        "the parity check must cover exactly the registry"
    );
    for seed in 0..3u64 {
        let c = WorkloadBuilder::new(12, 12)
            .operations(250)
            .kind(WorkloadKind::Nonuniform {
                hot_fraction: 0.2,
                hot_boost: 6.0,
            })
            .seed(seed)
            .build();
        for &name in &parity_names {
            let by_name = registry.from_name(name).unwrap();
            let dyn_run = OnlineTimestamper::new(by_name).run(&c).unwrap();
            // The registry defaults are the paper's: Random seed 0, Adaptive
            // with the Section V thresholds.
            let concrete_run = match name {
                "naive-threads" => OnlineTimestamper::new(Naive::threads()).run(&c),
                "naive-objects" => OnlineTimestamper::new(Naive::objects()).run(&c),
                "random" => OnlineTimestamper::new(Random::seeded(0)).run(&c),
                "popularity" => OnlineTimestamper::new(Popularity::new()).run(&c),
                "adaptive" => OnlineTimestamper::new(Adaptive::with_paper_thresholds()).run(&c),
                other => unreachable!("unknown parity case {other}"),
            }
            .unwrap();
            assert_eq!(
                dyn_run.timestamps, concrete_run.timestamps,
                "{name}: boxed and concrete timestamps diverge (seed {seed})"
            );
            assert_eq!(
                dyn_run.stats, concrete_run.stats,
                "{name}: boxed and concrete stats diverge (seed {seed})"
            );
        }
    }
}

/// With a fixed component map covering the whole computation, all three
/// `Timestamper` implementations are the same protocol and must agree
/// bit-for-bit — with each other and with the batch assigner.
#[test]
fn all_three_timestamper_impls_agree_on_a_fixed_component_map() {
    for seed in 0..5u64 {
        let c = WorkloadBuilder::new(8, 8)
            .operations(200)
            .seed(seed)
            .build();
        let plan = OfflineOptimizer::new().plan_for_computation(&c);
        let reference = plan.assigner().assign(&c);

        let mut timestampers: Vec<Box<dyn Timestamper>> = vec![
            Box::new(plan.timestamper()),
            Box::new(TimestampingEngine::with_components(
                plan.components().clone(),
            )),
            Box::new(OnlineTimestamper::with_components(
                Popularity::new(),
                plan.components().clone(),
            )),
        ];
        for timestamper in &mut timestampers {
            let run = replay(timestamper.as_mut(), &c)
                .unwrap_or_else(|e| panic!("{}: {e}", timestamper.name()));
            assert_eq!(
                run.timestamps, reference,
                "{} disagrees with the batch assigner (seed {seed})",
                run.report.name
            );
            assert_eq!(run.report.events, c.len());
            assert_eq!(run.report.clock_size(), plan.clock_size());
            assert_eq!(run.report.components, *plan.components());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property form of the three-way agreement, across workload families.
    #[test]
    fn prop_timestamper_impls_agree(computation in ComputationStrategy::small()) {
        let plan = OfflineOptimizer::new().plan_for_computation(&computation);
        let reference = plan.assigner().assign(&computation);

        let mut batch = plan.timestamper();
        let mut engine = TimestampingEngine::with_components(plan.components().clone());
        let mut online =
            OnlineTimestamper::with_components(Naive::threads(), plan.components().clone());
        prop_assert_eq!(&replay(&mut batch, &computation).unwrap().timestamps, &reference);
        prop_assert_eq!(&replay(&mut engine, &computation).unwrap().timestamps, &reference);
        prop_assert_eq!(&replay(&mut online, &computation).unwrap().timestamps, &reference);
    }
}

// ---------------------------------------------------------------------------
// Oracle 5: incremental optimum maintenance == from-scratch at every prefix
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every single insertion of a random edge stream, the
    /// incrementally maintained matching size equals a from-scratch
    /// Hopcroft–Karp run on the revealed prefix, and the incremental cover
    /// satisfies Kőnig: its size equals the matching size and it covers
    /// every revealed edge.
    #[test]
    fn incremental_optimum_equals_scratch_after_every_insertion(
        stream in EdgeStreamStrategy { nodes: 2..12, density: 0.02..0.5 },
    ) {
        let (_, edges) = stream;
        let mut incremental = IncrementalOptimum::new();
        let mut revealed = BipartiteGraph::new(0, 0);
        for &(l, r) in &edges {
            prop_assert_eq!(incremental.insert_edge(l, r), revealed.add_edge_growing(l, r));
            let scratch = hopcroft_karp(&revealed);
            prop_assert_eq!(incremental.matching_size(), scratch.size());
            prop_assert_eq!(incremental.cover_size(), scratch.size());
            let cover = incremental.cover().clone();
            prop_assert_eq!(cover.size(), scratch.size());
            prop_assert!(
                cover.covers_all_edges(&revealed),
                "not a vertex cover after ({}, {})", l, r
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle 6: sharded timestamping == sequential timestamping, bit for bit
// ---------------------------------------------------------------------------

/// Shard counts the parity oracle sweeps.
const ORACLE6_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded engine's stamp stream equals the sequential engine's
    /// bit for bit — across random workloads, shard counts 1/2/4/8, and
    /// both executors — and its report carries the same component layout.
    #[test]
    fn sharded_engine_equals_sequential_engine(
        computation in ComputationStrategy::small(),
    ) {
        let plan = OfflineOptimizer::new().plan_for_computation(&computation);
        let mut sequential = TimestampingEngine::with_components(plan.components().clone());
        let reference = replay(&mut sequential, &computation).unwrap();
        for shards in ORACLE6_SHARD_COUNTS {
            for executor in [ShardExecutor::Inline, ShardExecutor::Threads] {
                let mut sharded = ShardedEngine::with_executor(
                    plan.components().clone(),
                    shards,
                    executor,
                );
                let run = replay(&mut sharded, &computation).unwrap();
                prop_assert_eq!(&run.timestamps, &reference.timestamps);
                prop_assert_eq!(&run.report.components, &reference.report.components);
                prop_assert_eq!(run.report.events, reference.report.events);
            }
        }
    }

    /// Mid-run component additions: both engines start from a half cover,
    /// recover from the same uncovered events by adding the same components,
    /// and still agree bit for bit on every stamp — on both executors, so
    /// the worker-side slice-widening path is exercised too.
    #[test]
    fn sharded_engine_agrees_under_midrun_component_additions(
        computation in ComputationStrategy::small(),
        shards_index in 0usize..4,
    ) {
        let shards = ORACLE6_SHARD_COUNTS[shards_index];
        let events: Vec<(ThreadId, ObjectId)> =
            computation.events().map(|e| (e.thread, e.object)).collect();
        let plan = OfflineOptimizer::new().plan_for_computation(&computation);
        let full = plan.components().components();
        // Start with only half the optimal cover; stamp until an event is
        // uncovered, add that event's thread component to BOTH engines, and
        // retry — exercising clock growth while vectors already carry data.
        let half: mvc_clock::ComponentMap =
            full.iter().take(full.len() / 2).copied().collect();
        for executor in [ShardExecutor::Inline, ShardExecutor::Threads] {
            let mut sequential = TimestampingEngine::with_components(half.clone());
            let mut sharded =
                ShardedEngine::with_executor(half.clone(), shards, executor);

            let (mut seq_out, mut shard_out) = (Vec::new(), Vec::new());
            let mut rest: &[(ThreadId, ObjectId)] = &events;
            loop {
                let a = Timestamper::observe_batch(&mut sequential, rest, &mut seq_out);
                let b = sharded.observe_batch(rest, &mut shard_out);
                // Same outcome — same error at the same position.
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(seq_out.len(), shard_out.len());
                match a {
                    Ok(()) => break,
                    Err(mvc_core::TimestampError::Uncovered { thread, .. }) => {
                        let done = seq_out.len() - (events.len() - rest.len());
                        rest = &rest[done..];
                        sequential.add_component(mvc_clock::Component::Thread(thread));
                        sharded.add_component(mvc_clock::Component::Thread(thread));
                    }
                    Err(e) => prop_assert!(false, "unexpected error {e}"),
                }
            }
            prop_assert_eq!(&seq_out, &shard_out);
            prop_assert_eq!(seq_out.len(), events.len());
            prop_assert_eq!(sequential.width(), Timestamper::width(&sharded));
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle 7: segmented ingest + sharded engine + any sink == sequential batch
// replay of the merged interleaving, bit for bit
// ---------------------------------------------------------------------------

/// A full object cover: every operation touches an object, so stamping with
/// one component per object can never fail — the live runs below need no
/// recovery path.
fn full_object_cover(objects: usize) -> mvc_clock::ComponentMap {
    (0..objects)
        .map(|o| mvc_clock::Component::Object(ObjectId(o)))
        .collect()
}

/// Runs one live multi-threaded session: `scripts[t]` is thread `t`'s
/// program (object index, kind) in program order, executed on a real OS
/// thread over shared contended objects, stamped as it drains through the
/// segmented ingest pipeline by a sharded engine into `sink`.
fn run_live_pipeline<S: mvc_core::EventSink>(
    scripts: &[Vec<(usize, mvc_trace::OpKind)>],
    objects: usize,
    shards: usize,
    executor: ShardExecutor,
    sink: S,
) -> (S, mvc_core::TimestampReport) {
    let session = mvc_runtime::TraceSession::new();
    let handles: Vec<_> = (0..scripts.len())
        .map(|t| session.register_thread(&format!("t{t}")))
        .collect();
    let objs: Vec<_> = (0..objects)
        .map(|o| session.shared_object(&format!("o{o}"), 0u64))
        .collect();
    let engine = ShardedEngine::with_executor(full_object_cover(objects), shards, executor);
    let mut live = session.live_with_sink(engine, sink);
    std::thread::scope(|scope| {
        for (script, handle) in scripts.iter().zip(&handles) {
            let objs = &objs;
            scope.spawn(move || {
                for &(o, kind) in script {
                    objs[o].apply(handle, kind, |v| *v += 1);
                }
            });
        }
        // Pump concurrently with the producers at least once, so the oracle
        // exercises mid-run drains (partial merges, stalls) and not only the
        // final quiescent drain.
        let _ = live.pump().unwrap();
    });
    live.finish_into_sink().map_err(|(_, e)| e).unwrap()
}

/// Sequential batch replay of `computation` over the same full object
/// cover, padded to the final width — the reference stream live runs must
/// reproduce bit for bit.
fn sequential_reference(computation: &Computation, objects: usize) -> Vec<VectorTimestamp> {
    let mut engine = TimestampingEngine::with_components(full_object_cover(objects));
    replay(&mut engine, computation).unwrap().timestamps
}

/// Per-thread scripts: `threads` threads × up to 24 ops over `objects`
/// contended objects with mixed op kinds.
fn scripts_strategy(
    threads: usize,
    objects: usize,
) -> impl Strategy<Value = Vec<Vec<(usize, mvc_trace::OpKind)>>> {
    use mvc_trace::OpKind;
    let op = (0..objects, 0usize..5).prop_map(|(o, k)| {
        let kind = [
            OpKind::Read,
            OpKind::Write,
            OpKind::Acquire,
            OpKind::Release,
            OpKind::Op,
        ][k];
        (o, kind)
    });
    proptest::collection::vec(proptest::collection::vec(op, 0..24), threads..=threads)
}

/// Thread counts oracle 7 sweeps (the 8-thread case is the stress shape the
/// ingest design targets).
const ORACLE7_THREADS: [usize; 4] = [1, 2, 4, 8];
const ORACLE7_SHARDS: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A live multi-threaded run through segmented ingest + sharded engine +
    /// memory sink produces timestamps bit-for-bit equal to a post-hoc
    /// sequential batch replay of the merged interleaving, and the merged
    /// interleaving preserves every per-thread chain.
    #[test]
    fn live_segmented_ingest_equals_sequential_batch_replay(
        config_idx in (0usize..4, 0usize..3, 0usize..2),
        seed_scripts in scripts_strategy(8, 5),
    ) {
        let (threads_idx, shards_idx, executor_idx) = config_idx;
        let threads = ORACLE7_THREADS[threads_idx];
        let shards = ORACLE7_SHARDS[shards_idx];
        let executor = [ShardExecutor::Inline, ShardExecutor::Threads][executor_idx];
        let scripts = &seed_scripts[..threads];

        let (recorder, report) = run_live_pipeline(
            scripts,
            5,
            shards,
            executor,
            mvc_core::MemoryRecorder::new(),
        );
        let (computation, timestamps) = recorder.into_parts();
        // Every produced operation is drained.
        prop_assert_eq!(computation.len(), scripts.iter().map(Vec::len).sum::<usize>());
        // Per-thread program order survives the merge.
        for (t, script) in scripts.iter().enumerate() {
            let chain: Vec<usize> = computation
                .thread_chain(ThreadId(t))
                .iter()
                .map(|&id| computation.event(id).object.index())
                .collect();
            let expected: Vec<usize> = script.iter().map(|&(o, _)| o).collect();
            prop_assert!(chain == expected, "thread {} program order", t);
        }
        // Bit-for-bit parity with a sequential batch replay of the merged
        // interleaving (full object cover ⇒ width fixed ⇒ no padding
        // subtleties).
        let reference = sequential_reference(&computation, 5);
        prop_assert_eq!(timestamps, reference);
        prop_assert_eq!(report.events, computation.len());
    }

    /// The same parity holds through every sink backend at once: a tee of
    /// mem + stats + codec.  The memory child carries the stamps for the
    /// bit-for-bit check, the codec child's bytes decode to the identical
    /// interleaving, and the stats child counted every event.
    #[test]
    fn live_pipeline_agrees_through_every_sink_backend(
        scripts in scripts_strategy(4, 4),
        shards_idx in 0usize..3,
    ) {
        let shards = ORACLE7_SHARDS[shards_idx];
        let sink = mvc_core::TeeSink::new(vec![
            Box::new(mvc_core::MemoryRecorder::new()),
            Box::new(mvc_core::StatsSink::new()),
            Box::new(mvc_core::CodecSink::new()),
        ]);
        let (tee, report) =
            run_live_pipeline(&scripts, 4, shards, ShardExecutor::Inline, sink);
        let total: usize = scripts.iter().map(Vec::len).sum();
        prop_assert_eq!(report.events, total);
        prop_assert_eq!(tee.events_accepted(), total);

        let children = tee.into_children();
        let recorder = children[0]
            .as_any()
            .downcast_ref::<mvc_core::MemoryRecorder>()
            .unwrap();
        let computation = recorder.computation();
        prop_assert_eq!(computation.len(), total);
        // Mem child: bit-for-bit parity with the sequential batch replay.
        prop_assert_eq!(
            recorder.timestamps().to_vec(),
            sequential_reference(computation, 4)
        );

        let codec = children[2]
            .as_any()
            .downcast_ref::<mvc_core::CodecSink>()
            .unwrap();
        let decoded = mvc_trace::codec::decode(&codec.clone().into_bytes()).unwrap();
        // Codec child: the streamed trace round-trips.
        prop_assert_eq!(&decoded, computation);

        let stats = children[1]
            .as_any()
            .downcast_ref::<mvc_core::StatsSink>()
            .unwrap()
            .stats();
        prop_assert_eq!(stats.events, total);
        if total > 0 {
            // Full object cover width.
            prop_assert_eq!(stats.max_clock_width, 4);
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle 8: streaming analyses == post-hoc analysis
// ---------------------------------------------------------------------------

/// The invariant groups oracle 8 monitors over its 5 contended objects:
/// two disjoint pairs plus one overlapping triple, so both the
/// single-membership fast path and the multi-group path are exercised.
fn oracle8_groups() -> Vec<Vec<ObjectId>> {
    vec![
        vec![ObjectId(0), ObjectId(1)],
        vec![ObjectId(2), ObjectId(3)],
        vec![ObjectId(1), ObjectId(2), ObjectId(4)],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A live run with the analysis sinks teed next to a recorder flags
    /// exactly what post-hoc analysis of the recorded trace finds: the
    /// streaming conflict sink's pairs equal `ConflictAnalyzer::analyze`
    /// (as sets — discovery order differs from the analyzer's group-major
    /// order), and the streaming reachability index answers every
    /// `happened_before` / `concurrent` query on in-window pairs exactly
    /// like the bitset `CausalityOracle`.
    #[test]
    fn streaming_analyses_agree_with_post_hoc_analysis(
        config_idx in (0usize..4, 0usize..3, 0usize..2),
        seed_scripts in scripts_strategy(8, 5),
    ) {
        let (threads_idx, shards_idx, executor_idx) = config_idx;
        let threads = ORACLE7_THREADS[threads_idx];
        let shards = ORACLE7_SHARDS[shards_idx];
        let executor = [ShardExecutor::Inline, ShardExecutor::Threads][executor_idx];
        let scripts = &seed_scripts[..threads];

        let analyzer = mvc_runtime::ConflictAnalyzer::with_groups(oracle8_groups());
        let sink = mvc_core::TeeSink::new(vec![
            Box::new(mvc_core::MemoryRecorder::new()),
            Box::new(mvc_runtime::ConflictSink::mirroring(&analyzer)),
            Box::new(mvc_runtime::ReachabilityIndexSink::unbounded()),
        ]);
        let (tee, report) = run_live_pipeline(scripts, 5, shards, executor, sink);
        let total: usize = scripts.iter().map(Vec::len).sum();
        prop_assert_eq!(report.events, total);

        let children = tee.into_children();
        let recorder = children[0]
            .as_any()
            .downcast_ref::<mvc_core::MemoryRecorder>()
            .unwrap();
        let computation = recorder.computation();
        prop_assert_eq!(computation.len(), total);

        // Streaming conflict pairs == post-hoc analyzer pairs, exactly.
        // The streaming sink used the live engine's stamps (full object
        // cover); the analyzer plans a fresh offline-optimal clock — any
        // valid cover characterises happened-before, so the pair sets must
        // still be identical.
        let conflict = children[1]
            .as_any()
            .downcast_ref::<mvc_runtime::ConflictSink>()
            .unwrap();
        let mut streamed = conflict.conflicts().to_vec();
        streamed.sort();
        prop_assert_eq!(streamed, analyzer.analyze(computation));

        // Streaming reachability == bitset causality oracle on every pair
        // (the window is unbounded, so every pair is in-window).
        let reach = children[2]
            .as_any()
            .downcast_ref::<mvc_runtime::ReachabilityIndexSink>()
            .unwrap();
        prop_assert_eq!(reach.spilled(), 0);
        let oracle = computation.causality_oracle();
        for a in 0..total {
            for b in a + 1..total {
                let (a, b) = (EventId(a), EventId(b));
                prop_assert_eq!(
                    reach.happened_before(a, b),
                    Some(oracle.happened_before(a, b))
                );
                prop_assert_eq!(
                    reach.happened_before(b, a),
                    Some(oracle.happened_before(b, a))
                );
                prop_assert_eq!(reach.concurrent(a, b), Some(oracle.concurrent(a, b)));
            }
        }
        // The oracle's concurrent-pair enumeration is the same relation.
        for (a, b) in oracle.all_concurrent_pairs() {
            prop_assert_eq!(reach.concurrent(a, b), Some(true));
        }
    }

    /// Conflict parity survives a bounded reachability window running
    /// alongside: spilling the reach window must not perturb the conflict
    /// sink (they are independent children of the tee), and in-window
    /// queries stay exact after eviction.
    #[test]
    fn bounded_window_spill_keeps_in_window_queries_exact(
        scripts in scripts_strategy(4, 5),
    ) {
        let window = 16;
        let sink = mvc_core::TeeSink::new(vec![
            Box::new(mvc_core::MemoryRecorder::new()),
            Box::new(mvc_runtime::ReachabilityIndexSink::with_capacity(window)),
        ]);
        let (tee, _) = run_live_pipeline(&scripts, 5, 2, ShardExecutor::Inline, sink);
        let children = tee.into_children();
        let recorder = children[0]
            .as_any()
            .downcast_ref::<mvc_core::MemoryRecorder>()
            .unwrap();
        let computation = recorder.computation();
        let reach = children[1]
            .as_any()
            .downcast_ref::<mvc_runtime::ReachabilityIndexSink>()
            .unwrap();
        let total = computation.len();
        prop_assert_eq!(reach.spilled(), total.saturating_sub(window));
        let oracle = computation.causality_oracle();
        for a in 0..total {
            for b in a + 1..total {
                let (a, b) = (EventId(a), EventId(b));
                match reach.compare(a, b) {
                    // Evicted on either side: explicitly unanswerable.
                    None => prop_assert!(
                        !reach.contains(a) || !reach.contains(b)
                    ),
                    Some(ord) => {
                        prop_assert_eq!(
                            ord.is_before(),
                            oracle.happened_before(a, b)
                        );
                        prop_assert_eq!(
                            ord.is_concurrent(),
                            oracle.concurrent(a, b)
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle 9: networked multi-client service == sequential batch replay of the
// merged interleaving, including across a forced disconnect + reconnect
// ---------------------------------------------------------------------------

/// Everything one networked proptest case produces: the per-client runs in
/// client order, and the server's merged trace with its stamp stream and
/// final component map.
struct NetCase {
    runs: Vec<mvc_net::ClientRun>,
    computation: Computation,
    timestamps: Vec<VectorTimestamp>,
    components: mvc_clock::ComponentMap,
    sessions: Vec<mvc_net::SessionSummary>,
}

/// Drives `clients` producer clients (two local threads each, scripts
/// `scripts[2c]` / `scripts[2c + 1]` interleaved in record order) through a
/// [`mvc_net::NetServer`] over in-process transports, single-threaded and
/// deterministic.  When `disconnect` is set, client 0's link is severed
/// mid-stream — keeping only half of the stamp bytes in flight — and the
/// client reconnects on a fresh pair, replaying its un-acknowledged suffix.
fn run_networked(
    scripts: &[Vec<(usize, mvc_trace::OpKind)>],
    objects: usize,
    shards: usize,
    executor: ShardExecutor,
    disconnect: bool,
) -> NetCase {
    use mvc_net::{ClientConfig, InProcTransport, NetServer, ProducerClient, ServerConfig};
    use std::time::Duration;

    const ZERO: Option<Duration> = Some(Duration::ZERO);
    let clients = scripts.len() / 2;
    let engine = ShardedEngine::with_executor(mvc_clock::ComponentMap::new(), shards, executor);
    let mut server = NetServer::new(
        engine,
        Box::new(mvc_core::MemoryRecorder::new()),
        ServerConfig::default(),
    );

    // Handshakes first, in client order: every client registers the *same*
    // object list, so the server's (deduplicated) object table and the
    // engine's cover are complete and deterministic before any event flows.
    let object_names: Vec<String> = (0..objects).map(|o| format!("o{o}")).collect();
    let mut conns = Vec::new();
    let mut fars = Vec::new();
    let mut cs = Vec::new();
    for c in 0..clients {
        let (near, far) = InProcTransport::pair();
        let conn = server.connect();
        let config = ClientConfig::new(
            vec![format!("c{c}-a"), format!("c{c}-b")],
            object_names.clone(),
            true,
        );
        let client = ProducerClient::connect(near, config).unwrap();
        conns.push(conn);
        fars.push(far);
        cs.push(client);
    }
    for c in 0..clients {
        server.service(conns[c], &mut fars[c]).unwrap();
        cs[c].step(ZERO).unwrap();
    }

    // Record everything up front (buffered client-side), each client
    // interleaving its two local threads position by position.
    for c in 0..clients {
        let (a, b) = (&scripts[2 * c], &scripts[2 * c + 1]);
        for i in 0..a.len().max(b.len()) {
            if let Some(&(o, kind)) = a.get(i) {
                cs[c].record(0, o, kind);
            }
            if let Some(&(o, kind)) = b.get(i) {
                cs[c].record(1, o, kind);
            }
        }
    }

    if disconnect {
        // Push client 0's whole stream, let the server ingest and queue the
        // stamps, then kill the link with half the stamp bytes undelivered.
        cs[0].step(ZERO).unwrap();
        server.service(conns[0], &mut fars[0]).unwrap();
        fars[0].sever_keeping(fars[0].pending() / 2);
        server.service(conns[0], &mut fars[0]).unwrap();
        cs[0]
            .step(ZERO)
            .expect_err("the severed link must surface as an error");

        let (near, far) = InProcTransport::pair();
        let conn = server.connect();
        cs[0].reconnect(near).unwrap();
        conns[0] = conn;
        fars[0] = far;
        server.service(conns[0], &mut fars[0]).unwrap();
        cs[0].step(ZERO).unwrap();
    }

    for client in &mut cs {
        client.request_finish();
    }
    let mut rounds = 0;
    while !cs.iter().all(|c| c.is_finished()) {
        for c in 0..clients {
            if !cs[c].is_finished() {
                cs[c].step(ZERO).unwrap();
            }
            server.service(conns[c], &mut fars[c]).unwrap();
        }
        rounds += 1;
        assert!(rounds < 10_000, "networked drive loop did not converge");
    }

    let runs: Vec<_> = cs.into_iter().map(|c| c.into_run().unwrap()).collect();
    let server_run = server.finish().unwrap();
    let recorder = server_run
        .sink
        .as_any()
        .downcast_ref::<mvc_core::MemoryRecorder>()
        .unwrap();
    NetCase {
        runs,
        computation: recorder.computation().clone(),
        timestamps: recorder.timestamps().to_vec(),
        components: server_run.report.components,
        sessions: server_run.sessions,
    }
}

const ORACLE9_CLIENTS: [usize; 3] = [1, 2, 3];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conformance oracle 9: the networked multi-client run — including one
    /// forced mid-stream disconnect + reconnect-and-replay — produces
    /// stamps bit-for-bit equal to a sequential batch replay of the same
    /// merged interleaving, and routes to each client exactly its own
    /// threads' stamps in its own record order.  Swept over client count ×
    /// shard count × both shard executors.
    #[test]
    fn networked_service_equals_sequential_batch_replay(
        config_idx in (0usize..3, 0usize..3, 0usize..2, 0usize..2),
        seed_scripts in scripts_strategy(6, 4),
    ) {
        let (clients_idx, shards_idx, executor_idx, disconnect_idx) = config_idx;
        let disconnect = disconnect_idx == 1;
        let clients = ORACLE9_CLIENTS[clients_idx];
        let shards = ORACLE7_SHARDS[shards_idx];
        let executor = [ShardExecutor::Inline, ShardExecutor::Threads][executor_idx];
        let scripts = &seed_scripts[..2 * clients];
        let case = run_networked(scripts, 4, shards, executor, disconnect);

        // Every produced operation was ingested exactly once, and every
        // session ran to a clean Goodbye.
        let total: usize = scripts.iter().map(Vec::len).sum();
        prop_assert_eq!(case.computation.len(), total);
        prop_assert_eq!(case.sessions.len(), clients);
        for s in &case.sessions {
            prop_assert!(s.completed, "session {} incomplete", s.token);
        }

        // Bit-for-bit parity with a sequential batch replay of the merged
        // interleaving under the server's own final component map.
        let mut engine = TimestampingEngine::with_components(case.components.clone());
        let reference = replay(&mut engine, &case.computation).unwrap().timestamps;
        prop_assert_eq!(&case.timestamps, &reference);

        // Stamp routing: walking each client's record order through its
        // global thread chains reproduces, bit for bit, the stamp stream
        // the client received over the wire.
        for (c, run) in case.runs.iter().enumerate() {
            if disconnect && c == 0 {
                prop_assert_eq!(run.reconnects, 1);
            }
            let (a, b) = (&scripts[2 * c], &scripts[2 * c + 1]);
            let mut cursors = [0usize; 2];
            let mut expected = Vec::new();
            for i in 0..a.len().max(b.len()) {
                for (lt, script) in [a, b].iter().enumerate() {
                    let Some(&(o, kind)) = script.get(i) else { continue };
                    let global = ThreadId(run.thread_ids[lt] as usize);
                    let id = case.computation.thread_chain(global)[cursors[lt]];
                    cursors[lt] += 1;
                    let event = case.computation.event(id);
                    prop_assert_eq!(event.object.index(), run.object_ids[o] as usize);
                    prop_assert_eq!(event.kind, kind);
                    expected.push(case.timestamps[id.index()].clone());
                }
            }
            prop_assert_eq!(&run.stamps, &expected);
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle 10: wide-clock representations and shard assignments are invisible
// ---------------------------------------------------------------------------

/// Clock widths the wide-clock oracle sweeps: exactly one chunk, several
/// chunks, and the acceptance width (64 chunks).
const ORACLE10_WIDTHS: [usize; 3] = [64, 512, 4096];

/// A component map over `width` components (half thread, half object, in id
/// order) and a clustered workload whose endpoints are all covered by it.
fn wide_case(width: usize, events: usize, seed: u64) -> (mvc_clock::ComponentMap, Computation) {
    let threads = width / 2;
    let objects = width - threads;
    let mut map = mvc_clock::ComponentMap::new();
    for t in 0..threads {
        map.push(mvc_clock::Component::Thread(ThreadId(t)));
    }
    for o in 0..objects {
        map.push(mvc_clock::Component::Object(ObjectId(o)));
    }
    let computation = WorkloadBuilder::new(threads, objects)
        .operations(events)
        .kind(WorkloadKind::Clustered {
            clusters: (width / 64).max(1),
        })
        .seed(seed)
        .build();
    (map, computation)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The chunked stamp format is bit-identical to the dense one at every
    /// width — stamps and per-thread / per-object row readbacks alike — so
    /// the sparse wide-clock hot path is a pure representation change.
    #[test]
    fn chunked_stamp_format_equals_dense_at_every_width(seed in 0u64..1000) {
        for width in ORACLE10_WIDTHS {
            let (map, computation) = wide_case(width, 300, seed);
            let mut dense =
                TimestampingEngine::with_format(map.clone(), StampFormat::Dense);
            let mut chunked =
                TimestampingEngine::with_format(map, StampFormat::Chunked);
            let a = replay(&mut dense, &computation).unwrap();
            let b = replay(&mut chunked, &computation).unwrap();
            prop_assert_eq!(&a.timestamps, &b.timestamps);
            for t in (0..width / 2).step_by((width / 7).max(1)) {
                prop_assert_eq!(
                    dense.thread_clock(ThreadId(t)),
                    chunked.thread_clock(ThreadId(t))
                );
            }
            for o in (0..width - width / 2).step_by((width / 7).max(1)) {
                prop_assert_eq!(
                    dense.object_clock(ObjectId(o)),
                    chunked.object_clock(ObjectId(o))
                );
            }
        }
    }

    /// The partitioned shard assignment — including a mid-run repartition,
    /// which migrates worker slice state to the recomputed placement —
    /// produces the modulo assignment's stamps bit for bit on every
    /// executor and shard count: component placement is scheduling, never
    /// semantics.
    #[test]
    fn partitioned_assignment_equals_modulo_everywhere(
        computation in ComputationStrategy::small(),
        shards_index in 0usize..4,
    ) {
        let shards = ORACLE6_SHARD_COUNTS[shards_index];
        let plan = OfflineOptimizer::new().plan_for_computation(&computation);
        let events: Vec<(ThreadId, ObjectId)> =
            computation.events().map(|e| (e.thread, e.object)).collect();
        let half = events.len() / 2;
        for executor in [ShardExecutor::Inline, ShardExecutor::Threads] {
            let mut modulo = ShardedEngine::with_assignment(
                plan.components().clone(),
                shards,
                executor,
                ShardAssignment::Modulo,
            );
            let reference = replay(&mut modulo, &computation).unwrap();

            let mut partitioned = ShardedEngine::with_assignment(
                plan.components().clone(),
                shards,
                executor,
                ShardAssignment::Partitioned,
            );
            prop_assert_eq!(partitioned.assignment(), ShardAssignment::Partitioned);
            let mut stamps = Vec::new();
            partitioned.observe_batch(&events[..half], &mut stamps).unwrap();
            // Re-place components from the interactions observed so far;
            // the stamp stream must not notice.
            partitioned.repartition();
            partitioned.observe_batch(&events[half..], &mut stamps).unwrap();
            prop_assert_eq!(&stamps, &reference.timestamps);
        }
    }
}
