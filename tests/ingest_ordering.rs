//! Tier-1 stress test for the segmented ingest pipeline's ordering
//! guarantees.
//!
//! Eight real OS threads hammer a handful of contended objects through
//! per-thread segmented buffers; the drain-side merge must reassemble an
//! interleaving that preserves **every per-thread program order** and
//! **every per-object serialization order** — the two chain families the
//! paper's happened-before model is built from.  Ground truth for the
//! serialization order is captured *inside* each object's critical section
//! (the mutation log written under the lock **is** the serialization
//! order), so the test does not assume what it is trying to prove.  The
//! merged interleaving is then cross-checked against the exact
//! `CausalityOracle`.

use std::thread;

use mvc_runtime::TraceSession;
use mvc_trace::{EventId, ObjectId, OpKind, ThreadId};

const THREADS: usize = 8;
const OBJECTS: usize = 4;
const OPS_PER_THREAD: usize = 200;

/// Thread `t`'s deterministic program: op `k` touches object
/// `(t + k) % OBJECTS`, cycling so every thread contends on every object.
fn program(t: usize) -> Vec<usize> {
    (0..OPS_PER_THREAD).map(|k| (t + k) % OBJECTS).collect()
}

#[test]
fn stress_merge_preserves_both_chain_families() {
    let session = TraceSession::new();
    // Each object's value is its ground-truth serialization log: one
    // (thread, per-thread op index) entry appended under the lock.
    let objects: Vec<_> = (0..OBJECTS)
        .map(|o| session.shared_object(&format!("o{o}"), Vec::<(usize, usize)>::new()))
        .collect();
    let mut workers = Vec::new();
    for t in 0..THREADS {
        let handle = session.register_thread(&format!("worker-{t}"));
        let objects = objects.clone();
        workers.push(thread::spawn(move || {
            for (k, &o) in program(t).iter().enumerate() {
                objects[o].write(&handle, |log| log.push((t, k)));
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }

    // Capture the ground-truth serialization logs, then drain.
    let probe = session.register_thread("probe");
    let truth: Vec<Vec<(usize, usize)>> = objects
        .iter()
        .map(|o| o.read(&probe, |log| log.clone()))
        .collect();
    let computation = session.into_computation();
    assert_eq!(
        computation.len(),
        THREADS * OPS_PER_THREAD + OBJECTS,
        "every operation drained (workers + probe reads)"
    );

    // Per-thread chains replay each thread's program order exactly.
    for t in 0..THREADS {
        let chain: Vec<usize> = computation
            .thread_chain(ThreadId(t))
            .iter()
            .map(|&id| computation.event(id).object.index())
            .collect();
        assert_eq!(chain, program(t), "thread {t} program order broken");
    }

    // Per-object chains replay each object's lock-order log exactly.  Map
    // each chain event back to (thread, per-thread op index) through the
    // thread chains, skipping the probe's trailing read.
    for (o, truth_log) in truth.iter().enumerate() {
        let chain = computation.object_chain(ObjectId(o));
        let replayed: Vec<(usize, usize)> = chain
            .iter()
            .map(|&id| {
                let e = computation.event(id);
                (e.thread.index(), e.thread_seq)
            })
            .filter(|&(t, _)| t < THREADS)
            .collect();
        assert_eq!(
            &replayed, truth_log,
            "object {o} serialization order broken"
        );
        assert_eq!(chain.len(), truth_log.len() + 1, "plus the probe read");
    }

    // Cross-check against the exact happened-before oracle: the merged
    // append order must be a linear extension of the full causal closure,
    // and both chain families must be causally ordered step by step.
    let oracle = computation.causality_oracle();
    for (a, b) in oracle.all_ordered_pairs() {
        assert!(a < b, "append order must linearise happened-before");
    }
    for t in 0..THREADS {
        let chain = computation.thread_chain(ThreadId(t));
        for pair in chain.windows(2) {
            assert!(oracle.happened_before(pair[0], pair[1]));
        }
    }
    for o in 0..OBJECTS {
        let chain = computation.object_chain(ObjectId(o));
        for pair in chain.windows(2) {
            assert!(oracle.happened_before(pair[0], pair[1]));
        }
        // First and last are transitively ordered through the whole chain.
        assert!(oracle.happened_before(chain[0], *chain.last().unwrap()));
    }

    // Spot-check concurrency is still possible: with 8 threads on 4 objects
    // there must exist at least one concurrent pair (the run is genuinely
    // parallel, not accidentally serialised by the tracer).
    let some_concurrent = (0..computation.len().min(400)).any(|i| {
        (i + 1..computation.len().min(400)).any(|j| oracle.concurrent(EventId(i), EventId(j)))
    });
    assert!(
        some_concurrent,
        "expected concurrent events in a multi-threaded run"
    );

    // Kind fidelity: workers wrote, the probe read.
    let kinds: Vec<OpKind> = computation.events().map(|e| e.kind).collect();
    assert_eq!(
        kinds.iter().filter(|&&k| k == OpKind::Write).count(),
        THREADS * OPS_PER_THREAD
    );
    assert_eq!(
        kinds.iter().filter(|&&k| k == OpKind::Read).count(),
        OBJECTS
    );
}
