//! Tier-1 gate: the workspace lints clean under mvc-lint.
//!
//! This is the in-process twin of the CI step `cargo run -p mvc-lint --
//! --deny`: every invariant in `lint.toml` (hot-path panic freedom, the
//! declared lock order, atomic-ordering discipline, unsafe-freedom, the
//! migrated forbidden-pattern rules, and no debug output) holds over the
//! current source tree. A failure message lists the exact findings.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cfg = mvc_lint::Config::load(&root.join("lint.toml")).expect("lint.toml parses");
    let files = mvc_lint::workspace_files(root).expect("workspace walk succeeds");
    assert!(
        files.len() > 50,
        "workspace walk looks broken: only {} files found",
        files.len()
    );
    let diags = mvc_lint::lint_paths(root, &files, &cfg).expect("all sources readable");
    assert!(
        diags.is_empty(),
        "mvc-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
