//! Property tests for the vector timestamp comparison algebra
//! (`mvc_clock::compare`): the partial-order laws every clock in the
//! workspace leans on, checked on raw vectors drawn from the same strategy
//! module as the conformance suite.

mod support;

use mvc_clock::{ClockOrd, VectorTimestamp};
use proptest::prelude::*;

use support::{ComputationStrategy, TimestampTripleStrategy};

/// `compare` with the operands flipped must mirror the outcome.
fn flipped(ord: ClockOrd) -> ClockOrd {
    match ord {
        ClockOrd::Before => ClockOrd::After,
        ClockOrd::After => ClockOrd::Before,
        ClockOrd::Equal => ClockOrd::Equal,
        ClockOrd::Concurrent => ClockOrd::Concurrent,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Antisymmetry (as duality of outcomes): `a.compare(b)` and
    /// `b.compare(a)` are always mirror images, so `Before` in both
    /// directions is impossible.  `Concurrent` is symmetric by the same law.
    #[test]
    fn comparison_is_antisymmetric_and_concurrency_symmetric(
        triple in TimestampTripleStrategy::small(),
    ) {
        let (a, b, _) = triple;
        let ab = a.compare(&b);
        let ba = b.compare(&a);
        prop_assert_eq!(ba, flipped(ab));
        prop_assert_eq!(ab == ClockOrd::Concurrent, ba == ClockOrd::Concurrent);
        // Equality really is component-wise equality.
        prop_assert_eq!(ab == ClockOrd::Equal, a == b);
    }

    /// Transitivity of the strict order: `a < b` and `b < c` imply `a < c`
    /// (and likewise through an `Equal` link on either side).
    #[test]
    fn strict_order_is_transitive(
        triple in TimestampTripleStrategy::small(),
    ) {
        let (a, b, c) = triple;
        let ab = a.compare(&b);
        let bc = b.compare(&c);
        let ac = a.compare(&c);
        let le = |o: ClockOrd| o == ClockOrd::Before || o == ClockOrd::Equal;
        if le(ab) && le(bc) {
            prop_assert!(
                le(ac),
                "a ≤ b and b ≤ c but a.compare(c) = {}", ac
            );
            if ab == ClockOrd::Before || bc == ClockOrd::Before {
                prop_assert_eq!(ac, ClockOrd::Before);
            }
        }
    }

    /// Reflexivity and the `strictly_less_than` helper agree with `compare`.
    #[test]
    fn reflexivity_and_strictly_less_than_agree(
        triple in TimestampTripleStrategy::small(),
    ) {
        let (a, b, _) = triple;
        prop_assert_eq!(a.compare(&a), ClockOrd::Equal);
        prop_assert_eq!(a.strictly_less_than(&b), a.compare(&b) == ClockOrd::Before);
    }

    /// `merge_max` is the least upper bound: the merge dominates both inputs
    /// and is dominated by any other common upper bound.
    #[test]
    fn merge_max_is_least_upper_bound(
        triple in TimestampTripleStrategy::small(),
    ) {
        let (a, b, c) = triple;
        let ge = |x: &VectorTimestamp, y: &VectorTimestamp| {
            matches!(x.compare(y), ClockOrd::After | ClockOrd::Equal)
        };
        let mut m = a.clone();
        m.merge_max(&b);
        prop_assert!(ge(&m, &a));
        prop_assert!(ge(&m, &b));
        if ge(&c, &a) && ge(&c, &b) {
            prop_assert!(ge(&c, &m), "upper bound c does not dominate merge");
        }
    }

    /// The laws hold on timestamps a real assigner produces, not only on raw
    /// vectors: comparison over the optimal mixed clock's output is
    /// antisymmetric pairwise across a generated computation.
    #[test]
    fn assigned_timestamps_obey_the_algebra(
        computation in ComputationStrategy { threads: 1..6, objects: 1..6, ops: 0..60 },
    ) {
        use mvc_clock::TimestampAssigner;
        let plan = mvc_core::OfflineOptimizer::new().plan_for_computation(&computation);
        let stamps = plan.assigner().assign(&computation);
        for i in 0..stamps.len() {
            for j in 0..stamps.len() {
                prop_assert_eq!(
                    stamps[j].compare(&stamps[i]),
                    flipped(stamps[i].compare(&stamps[j]))
                );
            }
        }
    }
}
