//! Shared proptest strategies for the workspace-level test suites.
//!
//! Lives in a subdirectory (not compiled as its own integration-test crate)
//! and is pulled in with `mod support;` by `conformance.rs`,
//! `clock_properties.rs` and `trace_roundtrip.rs`, so every suite draws its
//! computations and graphs from the same distributions.

// Each integration-test crate uses a subset of these strategies.
#![allow(dead_code)]

use std::ops::Range;

use mvc_graph::{BipartiteGraph, GraphScenario, RandomGraphBuilder};
use mvc_trace::generator::random_graph_computation;
use mvc_trace::{Computation, WorkloadBuilder, WorkloadKind};
use proptest::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// The workload families the paper's model covers, cycled through by
/// [`ComputationStrategy`].
pub const WORKLOAD_KINDS: [WorkloadKind; 6] = [
    WorkloadKind::Uniform,
    WorkloadKind::Nonuniform {
        hot_fraction: 0.25,
        hot_boost: 5.0,
    },
    WorkloadKind::ProducerConsumer { queues: 2 },
    WorkloadKind::LockStriped {
        cross_stripe_prob: 0.2,
    },
    WorkloadKind::Matching {
        rotation_period: 16,
    },
    WorkloadKind::PhaseShift {
        period: 24,
        shift: 2,
    },
];

/// Strategy yielding random thread–object computations across all workload
/// families.
#[derive(Debug, Clone)]
pub struct ComputationStrategy {
    /// Range of thread counts.
    pub threads: Range<usize>,
    /// Range of object counts.
    pub objects: Range<usize>,
    /// Range of operation counts.
    pub ops: Range<usize>,
}

impl ComputationStrategy {
    /// A small computation: enough structure for interesting covers while
    /// keeping the `O(n^2)` causality oracle cheap.
    pub fn small() -> Self {
        ComputationStrategy {
            threads: 1..10,
            objects: 1..10,
            ops: 0..150,
        }
    }
}

impl Strategy for ComputationStrategy {
    type Value = Computation;

    fn generate(&self, rng: &mut StdRng) -> Computation {
        let threads = rng.gen_range(self.threads.clone());
        let objects = rng.gen_range(self.objects.clone());
        let ops = rng.gen_range(self.ops.clone());
        let kind = WORKLOAD_KINDS[rng.gen_range(0..WORKLOAD_KINDS.len())];
        let seed = rng.gen_range(0u64..=u64::MAX);
        WorkloadBuilder::new(threads, objects)
            .operations(ops)
            .kind(kind)
            .seed(seed)
            .build()
    }
}

/// Strategy yielding a random bipartite graph together with a computation
/// whose thread–object graph is exactly that graph (one event per edge, in a
/// random reveal order).
#[derive(Debug, Clone)]
pub struct GraphComputationStrategy {
    /// Range of node counts per side.
    pub nodes: Range<usize>,
    /// Range of edge densities.
    pub density: Range<f64>,
}

impl GraphComputationStrategy {
    /// Graphs small enough for the brute-force cover cross-check.
    pub fn small() -> Self {
        GraphComputationStrategy {
            nodes: 1..8,
            density: 0.0..0.7,
        }
    }

    /// Larger graphs for algorithm-vs-algorithm cross-checks.
    pub fn medium() -> Self {
        GraphComputationStrategy {
            nodes: 1..25,
            density: 0.0..0.5,
        }
    }
}

impl Strategy for GraphComputationStrategy {
    type Value = (BipartiteGraph, Computation);

    fn generate(&self, rng: &mut StdRng) -> (BipartiteGraph, Computation) {
        let nodes = rng.gen_range(self.nodes.clone());
        let density = rng.gen_range(self.density.clone());
        let scenario = if rng.gen_bool(0.5) {
            GraphScenario::Uniform
        } else {
            GraphScenario::default_nonuniform()
        };
        let seed = rng.gen_range(0u64..=u64::MAX);
        random_graph_computation(nodes, nodes, density, scenario, seed)
    }
}

/// Strategy yielding an online edge-reveal stream with its final graph.
#[derive(Debug, Clone)]
pub struct EdgeStreamStrategy {
    /// Range of node counts per side.
    pub nodes: Range<usize>,
    /// Range of edge densities.
    pub density: Range<f64>,
}

impl Strategy for EdgeStreamStrategy {
    type Value = (BipartiteGraph, Vec<(usize, usize)>);

    fn generate(&self, rng: &mut StdRng) -> (BipartiteGraph, Vec<(usize, usize)>) {
        let nodes = rng.gen_range(self.nodes.clone());
        let density = rng.gen_range(self.density.clone());
        let seed = rng.gen_range(0u64..=u64::MAX);
        RandomGraphBuilder::new(nodes, nodes)
            .density(density)
            .scenario(GraphScenario::default_nonuniform())
            .seed(seed)
            .build_edge_stream()
    }
}

/// Strategy yielding triples of equal-width vector timestamps, for testing
/// the comparison algebra of `mvc_clock::compare` on raw vectors (not only
/// on vectors an assigner happens to produce).
#[derive(Debug, Clone)]
pub struct TimestampTripleStrategy {
    /// Range of vector widths.
    pub width: Range<usize>,
    /// Exclusive upper bound on component values (small values maximise the
    /// chance of equal/ordered pairs).
    pub magnitude: u64,
}

impl TimestampTripleStrategy {
    /// Small, collision-rich timestamps.
    pub fn small() -> Self {
        TimestampTripleStrategy {
            width: 1..8,
            magnitude: 4,
        }
    }
}

impl Strategy for TimestampTripleStrategy {
    type Value = (
        mvc_clock::VectorTimestamp,
        mvc_clock::VectorTimestamp,
        mvc_clock::VectorTimestamp,
    );

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let width = rng.gen_range(self.width.clone());
        let draw = |rng: &mut StdRng| {
            mvc_clock::VectorTimestamp::from_components(
                (0..width)
                    .map(|_| rng.gen_range(0..self.magnitude))
                    .collect(),
            )
        };
        (draw(rng), draw(rng), draw(rng))
    }
}
