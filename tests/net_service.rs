//! The networked service driven deterministically over the in-process
//! transport: multi-client merging, stamp routing, backpressure,
//! frame-boundary failure (truncation and corruption), version mismatch,
//! and the mid-stream disconnect + reconnect-and-replay story.
//!
//! No sockets: every test runs single-threaded over
//! [`InProcTransport`] pairs, alternating client
//! [`step`](ProducerClient::step)s with server
//! [`service`](NetServer::service) rounds.  (The equality-with-batch
//! oracle lives in `tests/conformance.rs` as oracle 9; this file covers
//! the protocol and failure machinery itself.)

use std::time::Duration;

use mvc_core::{MemoryRecorder, TimestampingEngine};
use mvc_net::frame::{self, Frame, FrameReader};
use mvc_net::{
    ClientConfig, ConnId, InProcTransport, NetError, NetServer, ProducerClient, ServerConfig,
    Transport, TransportError,
};
use mvc_trace::OpKind;

const ZERO: Option<Duration> = Some(Duration::ZERO);

type Server = NetServer<TimestampingEngine>;
type Client = ProducerClient<InProcTransport>;

fn new_server(config: ServerConfig) -> Server {
    NetServer::new(
        TimestampingEngine::new(),
        Box::new(MemoryRecorder::new()),
        config,
    )
}

/// One client/server link: the server-side transport half plus the conn id.
struct Link {
    conn: ConnId,
    far: InProcTransport,
}

fn connect(server: &mut Server, config: ClientConfig) -> (Client, Link, InProcTransport) {
    let (near, far) = InProcTransport::pair();
    let spy = near.clone();
    let conn = server.connect();
    let client = ProducerClient::connect(near, config).expect("connect");
    (client, Link { conn, far }, spy)
}

/// Alternates client steps and server service rounds until every client
/// finished (or panics after a generous round cap — the protocol is
/// supposed to converge without any timing assumptions).
fn drive(server: &mut Server, links: &mut [Link], clients: &mut [&mut Client]) {
    for _ in 0..10_000 {
        for client in clients.iter_mut() {
            if !client.is_finished() {
                client.step(ZERO).expect("client step");
            }
        }
        for link in links.iter_mut() {
            server.service(link.conn, &mut link.far).expect("service");
        }
        if clients.iter().all(|c| c.is_finished()) {
            return;
        }
    }
    panic!("protocol did not converge");
}

/// Reads every frame currently deliverable on a raw transport half.
fn read_frames(transport: &mut InProcTransport, reader: &mut FrameReader) -> Vec<Frame> {
    let mut buf = [0u8; 16 * 1024];
    let mut frames = Vec::new();
    while let Ok(mvc_net::Recv::Bytes(n)) = transport.recv(&mut buf, ZERO) {
        reader.feed(&buf[..n]);
    }
    while let Some(frame) = reader.try_next().expect("well-formed server stream") {
        frames.push(frame);
    }
    frames
}

#[test]
fn two_clients_share_objects_and_get_their_stamps_back() {
    let mut server = new_server(ServerConfig::default());
    let (mut a, mut link_a, _) = connect(
        &mut server,
        ClientConfig::new(
            vec!["a0".into(), "a1".into()],
            vec!["x".into(), "y".into()],
            true,
        ),
    );
    let (mut b, mut link_b, _) = connect(
        &mut server,
        ClientConfig::new(vec!["b0".into()], vec!["y".into(), "z".into()], true),
    );
    for i in 0..40 {
        a.record(i % 2, i % 2, OpKind::Write);
        b.record(0, i % 2, OpKind::Read);
    }
    a.request_finish();
    b.request_finish();
    drive(
        &mut server,
        std::slice::from_mut(&mut link_a),
        &mut [&mut a],
    );
    drive(
        &mut server,
        std::slice::from_mut(&mut link_b),
        &mut [&mut b],
    );
    let run_a = a.into_run().expect("a finished");
    let run_b = b.into_run().expect("b finished");
    assert_eq!(run_a.stamps.len(), 40);
    assert_eq!(run_b.stamps.len(), 40);
    // Objects are shared by name: A's "y" and B's "y" are one object.
    assert_eq!(run_a.object_ids[1], run_b.object_ids[0]);
    assert_ne!(run_a.object_ids[0], run_b.object_ids[1]);

    let run = server.finish().expect("server finish");
    assert_eq!(run.report.events, 80);
    assert_eq!(run.sessions.len(), 2);
    assert!(run.sessions.iter().all(|s| s.completed));
    let recorder = run
        .sink
        .as_any()
        .downcast_ref::<MemoryRecorder>()
        .expect("mem sink");
    assert_eq!(recorder.computation().len(), 80);
    // Three distinct objects total: x, y (shared), z.
    assert_eq!(run.report.components.len(), 3);

    // Routing correctness: for each client thread, the client's stamp
    // subsequence for that thread equals the server's stamp subsequence
    // for the same (global) thread — same stamps, same per-thread order.
    let (computation, timestamps) = (recorder.computation(), recorder.timestamps());
    for (run, config) in [(&run_a, 2usize), (&run_b, 1usize)] {
        for local in 0..config {
            let global = run.thread_ids[local] as usize;
            let server_side: Vec<_> = computation
                .events()
                .zip(timestamps)
                .filter(|(e, _)| e.thread.index() == global)
                .map(|(_, ts)| ts.clone())
                .collect();
            // Client events alternate threads in record order.
            let client_side: Vec<_> = run
                .stamps
                .iter()
                .enumerate()
                .filter(|(i, _)| i % config == local)
                .map(|(_, ts)| ts.clone())
                .collect();
            assert_eq!(client_side, server_side, "thread {local} of {config}");
        }
    }
}

#[test]
fn tiny_credit_window_backpressures_but_completes() {
    let mut server = new_server(ServerConfig {
        credit_window: 8,
        stamps_per_frame: 3,
    });
    let (mut client, mut link, _) = connect(
        &mut server,
        ClientConfig::new(vec!["t".into()], vec!["o".into()], true),
    );
    for _ in 0..100 {
        client.record(0, 0, OpKind::Op);
    }
    client.request_finish();
    drive(
        &mut server,
        std::slice::from_mut(&mut link),
        &mut [&mut client],
    );
    let run = client.into_run().expect("finished");
    assert_eq!(run.stamps.len(), 100);
    // Stamps are the per-object sequence 1..=100 (single object cover).
    for (i, stamp) in run.stamps.iter().enumerate() {
        assert_eq!(stamp.as_slice(), &[(i + 1) as u64]);
    }
}

#[test]
fn an_overrun_of_the_credit_window_is_rejected_with_an_error_frame() {
    let mut server = new_server(ServerConfig {
        credit_window: 4,
        stamps_per_frame: 16,
    });
    let conn = server.connect();
    let (mut near, mut far) = InProcTransport::pair();

    let mut hello = Vec::new();
    frame::write_stream_header(&mut hello);
    frame::write_frame(
        &mut hello,
        &Frame::Hello {
            token: 0,
            want_stamps: false,
            stamps_received: 0,
            threads: vec!["t".into()],
            objects: vec!["o".into()],
        },
    );
    near.send(&hello).unwrap();
    server.service(conn, &mut far).unwrap();
    let mut reader = FrameReader::new();
    let frames = read_frames(&mut near, &mut reader);
    let credit = match &frames[..] {
        [Frame::HelloAck { credit, .. }] => *credit,
        other => panic!("expected HelloAck, got {other:?}"),
    };
    assert_eq!(credit, 4);

    // A rogue client ignores the window and sends credit + 1 events.
    let mut overrun = Vec::new();
    frame::write_frame(
        &mut overrun,
        &Frame::Events {
            events: vec![(0, 0, OpKind::Op); credit as usize + 1],
        },
    );
    near.send(&overrun).unwrap();
    server.service(conn, &mut far).unwrap();
    assert!(!server.is_open(conn), "overrun closes the connection");
    let frames = read_frames(&mut near, &mut reader);
    match &frames[..] {
        [Frame::Error { code, message }] => {
            assert_eq!(*code, frame::error_code::PROTOCOL);
            assert!(message.contains("credit"), "got: {message}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // Nothing from the rejected frame was ingested.
    let run = server.finish().expect("finish");
    assert_eq!(run.report.events, 0);
}

#[test]
fn a_wrong_protocol_version_fails_loudly_not_silently() {
    let mut server = new_server(ServerConfig::default());
    let conn = server.connect();
    let (mut near, mut far) = InProcTransport::pair();
    near.send(b"MVN\x09junkjunkjunk").unwrap();
    server.service(conn, &mut far).unwrap();
    assert!(!server.is_open(conn));
    let mut reader = FrameReader::new();
    let frames = read_frames(&mut near, &mut reader);
    match &frames[..] {
        [Frame::Error { message, .. }] => {
            assert!(message.contains("version 9"), "got: {message}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
}

#[test]
fn corruption_mid_stream_closes_the_connection_but_not_the_session() {
    let mut server = new_server(ServerConfig::default());
    let (mut client, mut link, spy) = connect(
        &mut server,
        ClientConfig::new(vec!["t".into()], vec!["o".into()], true),
    );
    // Handshake, then a first batch of events.
    server.service(link.conn, &mut link.far).unwrap();
    client.step(ZERO).unwrap();
    for _ in 0..10 {
        client.record(0, 0, OpKind::Write);
    }
    client.step(ZERO).unwrap();
    server.service(link.conn, &mut link.far).unwrap();

    // Line noise: bytes that cannot be a valid frame.
    spy.clone().send(&[0xff; 16]).unwrap();
    server.service(link.conn, &mut link.far).unwrap();
    assert!(
        !server.is_open(link.conn),
        "corruption closes the connection"
    );

    // The client observes the server's error frame as a remote failure.
    let err = loop {
        match client.step(ZERO) {
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, NetError::Remote(code, _) if code == frame::error_code::PROTOCOL),
        "got: {err:?}"
    );

    // The session survives: reconnect on a fresh pair and finish.
    let (near2, far2) = InProcTransport::pair();
    let conn2 = server.connect();
    client.reconnect(near2).expect("reconnect");
    let mut link2 = Link {
        conn: conn2,
        far: far2,
    };
    for _ in 0..10 {
        client.record(0, 0, OpKind::Read);
    }
    client.request_finish();
    drive(
        &mut server,
        std::slice::from_mut(&mut link2),
        &mut [&mut client],
    );
    let run = client.into_run().expect("finished after reconnect");
    assert_eq!(run.events, 20);
    assert_eq!(run.stamps.len(), 20);
    assert_eq!(run.reconnects, 1);
    let server_run = server.finish().expect("finish");
    assert_eq!(server_run.report.events, 20);
}

#[test]
fn mid_stream_disconnect_replays_the_watermark_suffix_bit_for_bit() {
    // Reference: the same workload over one uninterrupted connection.
    let script: Vec<(usize, usize, OpKind)> = (0..60)
        .map(|i| (i % 2, i % 3, [OpKind::Read, OpKind::Write][i % 2]))
        .collect();
    let config = || {
        let mut c = ClientConfig::new(
            vec!["t0".into(), "t1".into()],
            vec!["x".into(), "y".into(), "z".into()],
            true,
        );
        // Small frames so the cut lands between and inside event frames.
        c.events_per_frame = 4;
        c
    };

    let mut reference_server = new_server(ServerConfig::default());
    let (mut reference, mut ref_link, _) = connect(&mut reference_server, config());
    for &(t, o, kind) in &script {
        reference.record(t, o, kind);
    }
    reference.request_finish();
    drive(
        &mut reference_server,
        std::slice::from_mut(&mut ref_link),
        &mut [&mut reference],
    );
    let reference_run = reference.into_run().expect("reference finished");
    let reference_server_run = reference_server.finish().expect("reference finish");

    // Interrupted: sever the link mid-frame after the events are on the
    // wire, reconnect, and let the replay fill the gap.
    let mut server = new_server(ServerConfig::default());
    let (mut client, mut link, spy) = connect(&mut server, config());
    server.service(link.conn, &mut link.far).unwrap();
    client.step(ZERO).unwrap(); // consume the ack
    for &(t, o, kind) in &script {
        client.record(t, o, kind);
    }
    client.step(ZERO).unwrap(); // all event frames hit the wire
    let pending = spy.pending();
    assert!(pending > 0);
    // Keep roughly half the bytes, cutting inside a frame.
    spy.sever_keeping(pending / 2);
    server.service(link.conn, &mut link.far).unwrap();
    assert!(!server.is_open(link.conn));
    let err = client.step(ZERO).expect_err("link is dead");
    assert!(matches!(err, NetError::Transport(TransportError::Closed)));

    let (near2, far2) = InProcTransport::pair();
    let conn2 = server.connect();
    client.reconnect(near2).expect("reconnect");
    let mut link2 = Link {
        conn: conn2,
        far: far2,
    };
    client.request_finish();
    drive(
        &mut server,
        std::slice::from_mut(&mut link2),
        &mut [&mut client],
    );
    let run = client.into_run().expect("finished");
    let server_run = server.finish().expect("finish");

    // Bit-for-bit: every event gets the stamp it would have gotten in the
    // uninterrupted run.  The client sees that directly (its stamps are
    // indexed by its own event order); on the server the merge may emit a
    // *different linear extension* of the same partial order when pump
    // boundaries differ, so the interleaving is compared chain-wise and
    // the stamps through the oracle-7 contract (sequential batch replay
    // of the merged interleaving).
    assert_eq!(run.reconnects, 1);
    assert_eq!(run.stamps, reference_run.stamps);
    let recorded = |r: &mvc_net::ServerRun| {
        r.sink
            .as_any()
            .downcast_ref::<MemoryRecorder>()
            .map(|m| (m.computation().clone(), m.timestamps().to_vec()))
            .expect("mem sink")
    };
    let (computation, timestamps) = recorded(&server_run);
    let (ref_computation, _) = recorded(&reference_server_run);
    // Same partial order: identical per-thread and per-object chains.
    for t in 0..2 {
        let chain = |c: &mvc_trace::Computation| -> Vec<(usize, OpKind)> {
            c.thread_chain(mvc_trace::ThreadId(t))
                .iter()
                .map(|&id| (c.event(id).object.index(), c.event(id).kind))
                .collect()
        };
        assert_eq!(chain(&computation), chain(&ref_computation), "thread {t}");
    }
    for o in 0..3 {
        let chain = |c: &mvc_trace::Computation| -> Vec<(usize, OpKind)> {
            c.object_chain(mvc_trace::ObjectId(o))
                .iter()
                .map(|&id| (c.event(id).thread.index(), c.event(id).kind))
                .collect()
        };
        assert_eq!(chain(&computation), chain(&ref_computation), "object {o}");
    }
    // And the interrupted run's stamps equal a sequential batch replay of
    // its own merged interleaving.
    let mut engine = TimestampingEngine::with_components(server_run.report.components.clone());
    let replayed = mvc_core::replay(&mut engine, &computation)
        .unwrap()
        .timestamps;
    assert_eq!(timestamps, replayed);
}

#[test]
fn stamps_lost_with_the_connection_are_retransmitted_after_reconnect() {
    // want_stamps with a cut placed after the server has *sent* stamps the
    // client never received: the reconnect must rewind the stamp stream to
    // what the client actually holds.
    let mut server = new_server(ServerConfig {
        credit_window: 1 << 16,
        stamps_per_frame: 4,
    });
    let (mut client, mut link, _spy) = connect(
        &mut server,
        ClientConfig::new(vec!["t".into()], vec!["o".into()], true),
    );
    server.service(link.conn, &mut link.far).unwrap();
    client.step(ZERO).unwrap();
    for _ in 0..30 {
        client.record(0, 0, OpKind::Op);
    }
    client.step(ZERO).unwrap();
    // The server ingests everything and queues stamp frames — which are
    // lost: severing the server half truncates the stamp bytes still
    // sitting in the server→client pipe before the client reads them.
    server.service(link.conn, &mut link.far).unwrap();
    link.far.sever_keeping(0);
    server.service(link.conn, &mut link.far).unwrap();
    let _ = client.step(ZERO).expect_err("link is dead");
    assert_eq!(client.stamps().len(), 0, "every stamp was lost in flight");

    let (near2, far2) = InProcTransport::pair();
    let conn2 = server.connect();
    client.reconnect(near2).expect("reconnect");
    let mut link2 = Link {
        conn: conn2,
        far: far2,
    };
    client.request_finish();
    drive(
        &mut server,
        std::slice::from_mut(&mut link2),
        &mut [&mut client],
    );
    let run = client.into_run().expect("finished");
    assert_eq!(run.stamps.len(), 30);
    for (i, stamp) in run.stamps.iter().enumerate() {
        assert_eq!(stamp.as_slice(), &[(i + 1) as u64]);
    }
}

#[test]
fn truncated_streams_pend_and_corrupted_padding_never_panics_the_server() {
    // Fuzz the server at every frame-type boundary: a valid session
    // prologue cut at every byte position is fed to a fresh server — each
    // prefix must either pend quietly or close with an error frame, never
    // panic, and the pipeline must stay usable.
    let mut stream = Vec::new();
    frame::write_stream_header(&mut stream);
    frame::write_frame(
        &mut stream,
        &Frame::Hello {
            token: 0,
            want_stamps: true,
            stamps_received: 0,
            threads: vec!["t".into()],
            objects: vec!["o".into()],
        },
    );
    frame::write_frame(
        &mut stream,
        &Frame::Events {
            events: vec![(0, 0, OpKind::Write), (0, 0, OpKind::Read)],
        },
    );
    frame::write_frame(&mut stream, &Frame::StampsAck { received: 0 });
    frame::write_frame(&mut stream, &Frame::Goodbye { events: 2 });

    for cut in 0..stream.len() {
        let mut server = new_server(ServerConfig::default());
        let conn = server.connect();
        server
            .feed(conn, &stream[..cut])
            .expect("no pipeline error");
        server.pump().expect("no pipeline error");
        // And with trailing garbage where the lost bytes would be.
        let mut server = new_server(ServerConfig::default());
        let conn = server.connect();
        let mut garbled = stream[..cut].to_vec();
        garbled.extend(std::iter::repeat_n(0xA5, stream.len() - cut));
        server.feed(conn, &garbled).expect("no pipeline error");
        server.pump().expect("no pipeline error");
        let run = server.finish().expect("pipeline intact");
        assert!(run.report.events <= 2);
    }
}
