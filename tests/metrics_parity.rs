//! Tier-1 metrics parity: the observability layer's counters must agree
//! with ground truth the rest of the workspace already measures.
//!
//! Three oracles:
//!
//! 1. An 8-thread contended `TraceSession` workload drained through the
//!    live pipeline into a `StatsSink`: the global registry's
//!    `pipeline.events_accepted` delta equals both the sink's own count
//!    and the drained computation length — and the sink's adopted
//!    `sink.stats.*` cells report the same figures in the snapshot.
//! 2. A deterministic two-client networked session over the in-process
//!    transport: at quiescence `net.frames_sent == net.frames_received`
//!    and `net.bytes_sent == net.bytes_received` (both roles live in this
//!    process, so every frame written is eventually parsed).
//! 3. A snapshot-merge property: values recorded into one histogram and
//!    one counter from many threads are never lost or double-counted —
//!    the merged snapshot equals the sequential totals.
//!
//! The first two oracles share the process-global registry, so they are
//! serialized behind one mutex and assert on snapshot *deltas* only.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

use mvc_clock::ComponentMap;
use mvc_core::{StatsSink, TimestampingEngine};
use mvc_net::{ClientConfig, InProcTransport, NetServer, ProducerClient, ServerConfig};
use mvc_runtime::TraceSession;
use mvc_trace::OpKind;
use proptest::prelude::*;

/// Serializes the tests that touch the process-global registry.
fn global_registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn live_pipeline_counters_match_sink_ground_truth() {
    let _guard = global_registry_lock();
    let registry = mvc_obs::global();
    let was_enabled = registry.enabled();
    registry.set_enabled(true);
    let before = registry.snapshot();

    const THREADS: usize = 8;
    const WRITES: usize = 100;
    let session = TraceSession::new();
    let a = session.shared_object("a", 0u64);
    let b = session.shared_object("b", 0u64);
    let mut handles = Vec::new();
    for i in 0..THREADS {
        let worker = session.register_thread(&format!("worker-{i}"));
        let a = a.clone();
        let b = b.clone();
        handles.push(thread::spawn(move || {
            // Every thread hammers both objects: maximal contention on the
            // session channel and on the registry's sharded cells.
            for n in 0..WRITES {
                if (n + i) % 2 == 0 {
                    a.write(&worker, |v| *v += 1);
                } else {
                    b.write(&worker, |v| *v += 1);
                }
            }
        }));
    }
    let map = ComponentMap::all_threads(THREADS);
    let sink = StatsSink::new();
    sink.bind_metrics(registry);
    let live = session.live_with_sink(TimestampingEngine::with_components(map), sink);
    for handle in handles {
        handle.join().unwrap();
    }
    let (sink, report) = live.finish_into_sink().expect("pipeline drains clean");

    let delta = registry.snapshot().delta(&before);
    registry.set_enabled(was_enabled);

    // Ground truth: what the sink itself counted, and what the engine
    // reported stamping.
    let expected = (THREADS * WRITES) as u64;
    assert_eq!(sink.stats().events as u64, expected);
    assert_eq!(report.events as u64, expected);

    // The pipeline counter agrees exactly: every event accepted by the sink
    // was counted once, across 8 contended producer threads.
    assert_eq!(delta.counter("pipeline.events_accepted"), Some(expected));
    // Nothing was refused or retried in a clean run.
    assert_eq!(delta.counter("pipeline.events_refused").unwrap_or(0), 0);
    assert_eq!(delta.counter("pipeline.backlog_retries").unwrap_or(0), 0);
    // The adopted sink cells surface the same figures through the registry
    // (fresh cells, so the absolute snapshot equals the delta).
    assert_eq!(delta.counter("sink.stats.events"), Some(expected));
    assert_eq!(delta.counter("sink.stats.writes"), Some(expected));
    // The merge and stamp stages saw every event too.
    assert_eq!(delta.counter("ingest.merge.emitted"), Some(expected));
    let stamp = delta.histogram("pipeline.stamp_ns").expect("stamp hist");
    assert!(stamp.count > 0, "stamp latency histogram recorded batches");
}

#[test]
fn net_frames_sent_equal_frames_received_at_quiescence() {
    let _guard = global_registry_lock();
    let registry = mvc_obs::global();
    let was_enabled = registry.enabled();
    registry.set_enabled(true);
    let before = registry.snapshot();

    let mut server = NetServer::new(
        TimestampingEngine::new(),
        Box::new(mvc_core::MemoryRecorder::new()),
        ServerConfig::default(),
    );
    let zero = Some(Duration::ZERO);
    let mut links = Vec::new();
    let mut clients = Vec::new();
    for c in 0..2 {
        let (near, far) = InProcTransport::pair();
        let conn = server.connect();
        let config = ClientConfig::new(vec![format!("t{c}")], vec!["x".into(), "y".into()], true);
        clients.push(ProducerClient::connect(near, config).expect("connect"));
        links.push((conn, far));
    }
    for i in 0..60u64 {
        for client in &mut clients {
            client.record(0, (i % 2) as usize, OpKind::Write);
        }
    }
    for client in &mut clients {
        client.request_finish();
    }
    for _ in 0..10_000 {
        for client in &mut clients {
            if !client.is_finished() {
                client.step(zero).expect("client step");
            }
        }
        for (conn, far) in &mut links {
            server.service(*conn, far).expect("service");
        }
        if clients.iter().all(|c| c.is_finished()) {
            break;
        }
    }
    assert!(
        clients.iter().all(|c| c.is_finished()),
        "protocol converged"
    );
    // Drain any trailing server->client frames (e.g. credit grants written
    // after the client already had all its stamps) so both directions are
    // fully parsed before comparing the wire counters.
    for client in &mut clients {
        let _ = client.step(zero);
    }
    for run in clients.into_iter().map(|c| c.into_run().expect("run")) {
        assert_eq!(run.stamps.len(), 60);
    }

    let delta = registry.snapshot().delta(&before);
    registry.set_enabled(was_enabled);

    let sent = delta.counter("net.frames_sent").expect("frames sent");
    let received = delta
        .counter("net.frames_received")
        .expect("frames received");
    assert!(sent > 0, "the session exchanged frames");
    assert_eq!(sent, received, "every frame written was parsed");
    assert_eq!(
        delta.counter("net.bytes_sent"),
        delta.counter("net.bytes_received"),
        "framed byte counts agree in both directions"
    );
    // The server-side ingest counter matches the 2 x 60 recorded events.
    assert_eq!(delta.counter("net.server.events_ingested"), Some(120));
    assert_eq!(delta.counter("net.server.sessions_opened"), Some(2));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merge-on-snapshot loses nothing: `threads` workers each record a
    /// disjoint slice of `values` into one shared histogram and bump one
    /// shared counter; the merged snapshot equals the sequential totals.
    #[test]
    fn snapshot_merge_equals_sequential_totals(
        values in proptest::collection::vec(0u64..1_000_000, 1..200),
        threads in 1usize..8,
    ) {
        // A private registry: fully isolated from the process-global one,
        // so this property runs in parallel with everything else.
        let registry = mvc_obs::Registry::new();
        let histogram = registry.histogram("parity.hist");
        let counter = registry.counter("parity.count");
        thread::scope(|scope| {
            for chunk in values.chunks(values.len().div_ceil(threads)) {
                let histogram = histogram.clone();
                let counter = counter.clone();
                scope.spawn(move || {
                    for &v in chunk {
                        histogram.record(v);
                        counter.add(v);
                    }
                });
            }
        });
        let snapshot = registry.snapshot();
        let total: u64 = values.iter().sum();
        prop_assert_eq!(snapshot.counter("parity.count"), Some(total));
        let merged = snapshot.histogram("parity.hist").expect("histogram");
        prop_assert_eq!(merged.count, values.len() as u64);
        prop_assert_eq!(merged.sum, total);
        // Bucket mass conservation: bucket counts sum to the record count.
        prop_assert_eq!(merged.buckets.iter().sum::<u64>(), values.len() as u64);
    }
}
