//! Integration tests spanning the runtime substrate and the clock stack:
//! real multithreaded executions are traced, analysed offline, and monitored
//! online.

use std::sync::Arc;
use std::thread;

use mixed_vector_clock::prelude::*;

#[test]
fn traced_execution_feeds_the_offline_optimizer() {
    let session = TraceSession::new();
    let queues: Vec<_> = (0..4)
        .map(|i| session.shared_object(&format!("queue-{i}"), Vec::<u64>::new()))
        .collect();

    let mut workers = Vec::new();
    // Producers each own one queue; consumers drain all queues.
    for (i, queue) in queues.iter().enumerate() {
        let handle = session.register_thread(&format!("producer-{i}"));
        let queue = queue.clone();
        workers.push(thread::spawn(move || {
            for item in 0..25u64 {
                queue.write(&handle, |q| q.push(item));
            }
        }));
    }
    for i in 0..2 {
        let handle = session.register_thread(&format!("consumer-{i}"));
        let queues: Vec<_> = queues.to_vec();
        workers.push(thread::spawn(move || {
            let mut drained = 0usize;
            for _ in 0..10 {
                for queue in &queues {
                    drained += queue.write(&handle, |q| q.drain(..).count());
                }
            }
            assert!(drained <= 100, "cannot drain more than was produced");
        }));
    }
    for worker in workers {
        worker.join().unwrap();
    }

    let computation = session.into_computation();
    assert_eq!(computation.thread_count(), 6);
    assert_eq!(computation.object_count(), 4);
    assert_eq!(computation.len(), 4 * 25 + 2 * 10 * 4);

    // The per-object chains in the trace reflect the real serialization
    // order, so the optimal mixed clock must be a valid vector clock.
    let plan = OfflineOptimizer::new().plan_for_computation(&computation);
    assert!(plan.clock_size() <= 4, "4 objects always form a cover here");
    let stamps = plan.assigner().assign(&computation);
    assert!(mvc_core::verify_assignment(&computation, &stamps));
}

#[test]
fn online_monitor_orders_cross_thread_handoffs() {
    let monitor = Arc::new(OnlineMonitor::new());
    let flag_object = ObjectId(0);

    // Thread 0 writes the flag, then thread 1 reads it: the monitor must see
    // the ordering through the shared object even across OS threads.
    let m0 = Arc::clone(&monitor);
    let writer = thread::spawn(move || m0.record(ThreadId(0), flag_object).unwrap());
    let write_stamp = writer.join().unwrap();

    let m1 = Arc::clone(&monitor);
    let reader = thread::spawn(move || m1.record(ThreadId(1), flag_object).unwrap());
    let read_stamp = reader.join().unwrap();

    assert!(monitor.happened_before(&write_stamp, &read_stamp));
    assert!(!monitor.happened_before(&read_stamp, &write_stamp));

    // An unrelated operation stays concurrent with the write.
    let other = monitor.record(ThreadId(2), ObjectId(9)).unwrap();
    assert!(monitor.concurrent(&write_stamp, &other));
}

#[test]
fn live_session_matches_post_hoc_batch_replay_on_the_same_interleaving() {
    // The acceptance bar for the unified API: a real multithreaded execution
    // timestamped *live* (events stamped as they drain from the channel) must
    // be indistinguishable from recording the computation and batch-replaying
    // it afterwards.
    let session = TraceSession::new();
    let queues: Vec<_> = (0..3)
        .map(|i| session.shared_object(&format!("queue-{i}"), Vec::<u64>::new()))
        .collect();
    let mut workers = Vec::new();
    for i in 0..4 {
        let handle = session.register_thread(&format!("worker-{i}"));
        let queues = queues.to_vec();
        workers.push(thread::spawn(move || {
            for item in 0..20u64 {
                queues[(i + item as usize) % 3].write(&handle, |q| q.push(item));
            }
        }));
    }

    let mechanism = MechanismRegistry::new().from_name("popularity").unwrap();
    let mut live = session.live(OnlineTimestamper::new(mechanism));
    // Pump concurrently with the workers; whatever is left is drained by
    // finish() after the joins.
    live.pump().unwrap();
    for worker in workers {
        worker.join().unwrap();
    }
    let run = live.finish().unwrap();
    assert_eq!(run.computation.len(), 80);
    assert_eq!(run.report.events, 80);

    // Post-hoc batch replay of the identical interleaving, with a fresh copy
    // of the same deterministic mechanism.
    let batch = OnlineTimestamper::new(Popularity::new())
        .run(&run.computation)
        .unwrap();
    assert_eq!(run.timestamps, batch.timestamps);

    // The live timestamps are a valid vector clock for the drained order.
    assert!(mvc_core::verify_assignment(
        &run.computation,
        &run.timestamps
    ));
}

#[test]
fn conflict_analyzer_finds_non_atomic_invariant_updates() {
    let session = TraceSession::new();
    let left = session.shared_object("left", 0i64);
    let right = session.shared_object("right", 0i64);

    let mut workers = Vec::new();
    for i in 0..3 {
        let handle = session.register_thread(&format!("mover-{i}"));
        let left = left.clone();
        let right = right.clone();
        workers.push(thread::spawn(move || {
            for _ in 0..10 {
                left.write(&handle, |v| *v -= 1);
                right.write(&handle, |v| *v += 1);
            }
        }));
    }
    for worker in workers {
        worker.join().unwrap();
    }

    let computation = session.into_computation();
    let analyzer = ConflictAnalyzer::with_groups([vec![ObjectId(0), ObjectId(1)]]);
    let conflicts = analyzer.analyze(&computation);
    assert!(
        !conflicts.is_empty(),
        "three movers interleaving over two objects must produce concurrent cross-object pairs"
    );
    // Every reported pair involves different threads and conflicting kinds.
    for pair in conflicts {
        let first = computation.event(pair.first);
        let second = computation.event(pair.second);
        assert_ne!(first.thread, second.thread);
        assert!(first.kind.conflicts_with(second.kind));
    }
}
