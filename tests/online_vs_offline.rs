//! Integration tests of the online mechanisms against the offline optimum,
//! mirroring the comparisons behind Figures 6 and 7.

use mixed_vector_clock::prelude::*;
use mvc_eval::{average_size, AlgorithmKind, SweepConfig};
use mvc_graph::GraphScenario;
use mvc_trace::generator::random_graph_computation;

#[test]
fn online_clocks_are_valid_and_never_beat_the_optimum() {
    for seed in 0..5u64 {
        let (_, computation) =
            random_graph_computation(20, 20, 0.1, GraphScenario::default_nonuniform(), seed);
        let optimal = OfflineOptimizer::new()
            .plan_for_computation(&computation)
            .clock_size();

        let mechanisms: Vec<(&str, usize, Vec<_>)> = vec![
            online_run(
                "naive",
                OnlineTimestamper::new(Naive::threads()),
                &computation,
            ),
            online_run(
                "random",
                OnlineTimestamper::new(Random::seeded(seed)),
                &computation,
            ),
            online_run(
                "popularity",
                OnlineTimestamper::new(Popularity::new()),
                &computation,
            ),
            online_run(
                "adaptive",
                OnlineTimestamper::new(Adaptive::with_paper_thresholds()),
                &computation,
            ),
        ];
        for (name, size, stamps) in mechanisms {
            assert!(
                size >= optimal,
                "{name} reported {size} < offline optimum {optimal} (seed {seed})"
            );
            assert!(
                mvc_core::verify_assignment(&computation, &stamps),
                "{name} produced an invalid clock (seed {seed})"
            );
        }
    }
}

fn online_run<M: OnlineMechanism>(
    name: &'static str,
    timestamper: OnlineTimestamper<M>,
    computation: &Computation,
) -> (&'static str, usize, Vec<VectorTimestamp>) {
    let run = timestamper
        .run(computation)
        .expect("paper mechanisms cover their own events");
    (name, run.stats.clock_size(), run.timestamps)
}

#[test]
fn figure6_shape_offline_below_popularity_below_naive_at_low_density() {
    // At density 0.05 with 50+50 nodes the paper reports offline ~35 < naive 50,
    // with popularity in between. Check the ordering (not the absolute values).
    let cfg = SweepConfig::fifty_by_fifty(0.05, GraphScenario::Uniform, 10);
    let offline = average_size(&cfg, &AlgorithmKind::OfflineOptimal, 0.05).mean_size;
    let popularity = average_size(&cfg, &AlgorithmKind::online("popularity"), 0.05).mean_size;
    let naive = average_size(&cfg, &AlgorithmKind::NaiveThreads, 0.05).mean_size;

    assert!(
        offline < naive,
        "offline {offline} should be below naive {naive}"
    );
    assert!(
        offline <= popularity,
        "offline {offline} should not exceed popularity {popularity}"
    );
    // The offline optimum is meaningfully below the naive baseline (the paper
    // reports roughly 35 vs 50 in this configuration).
    assert!(
        offline < 0.9 * naive,
        "expected a clear gap between offline {offline} and naive {naive}"
    );
}

#[test]
fn figure4_shape_crossover_with_density() {
    // Popularity beats Naive at low density and loses (or at best ties) at
    // very high density — the crossover described in Section V.
    let trials = 8;
    let low = SweepConfig::fifty_by_fifty(0.02, GraphScenario::Uniform, trials);
    let high = SweepConfig::fifty_by_fifty(0.9, GraphScenario::Uniform, trials);

    let pop_low = average_size(&low, &AlgorithmKind::online("popularity"), 0.02).mean_size;
    let naive_low = average_size(&low, &AlgorithmKind::NaiveThreads, 0.02).mean_size;
    assert!(
        pop_low < naive_low,
        "popularity {pop_low} vs naive {naive_low} at low density"
    );

    let pop_high = average_size(&high, &AlgorithmKind::online("popularity"), 0.9).mean_size;
    let naive_high = average_size(&high, &AlgorithmKind::NaiveThreads, 0.9).mean_size;
    assert!(
        naive_high <= pop_high,
        "naive {naive_high} should not be above popularity {pop_high} at density 0.9"
    );
}

#[test]
fn nonuniform_scenario_helps_popularity_more_than_uniform() {
    let trials = 8;
    let uniform = SweepConfig::fifty_by_fifty(0.05, GraphScenario::Uniform, trials);
    let skewed = SweepConfig::fifty_by_fifty(0.05, GraphScenario::default_nonuniform(), trials);

    let pop_uniform = average_size(&uniform, &AlgorithmKind::online("popularity"), 0.05).mean_size;
    let naive_uniform = average_size(&uniform, &AlgorithmKind::NaiveThreads, 0.05).mean_size;
    let pop_skewed = average_size(&skewed, &AlgorithmKind::online("popularity"), 0.05).mean_size;
    let naive_skewed = average_size(&skewed, &AlgorithmKind::NaiveThreads, 0.05).mean_size;

    let savings_uniform = naive_uniform - pop_uniform;
    let savings_skewed = naive_skewed - pop_skewed;
    assert!(
        savings_skewed > savings_uniform,
        "expected larger savings on the nonuniform scenario: {savings_skewed} vs {savings_uniform}"
    );
}
