//! Cross-crate property tests: invariants that only hold when the whole
//! pipeline (generation → graph → cover → clocks → online mechanisms) is
//! wired together correctly.

use mixed_vector_clock::prelude::*;
use mvc_graph::cover::minimum_vertex_cover_of;
use mvc_graph::GraphScenario;
use mvc_trace::generator::random_graph_computation;
use mvc_trace::{WorkloadBuilder, WorkloadKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cover computed from a computation's bipartite graph always covers
    /// every event of the computation, so the mixed clock can timestamp it.
    #[test]
    fn cover_from_graph_covers_every_event(
        threads in 1usize..12,
        objects in 1usize..12,
        ops in 1usize..150,
        seed in 0u64..200,
    ) {
        let computation = WorkloadBuilder::new(threads, objects)
            .operations(ops)
            .seed(seed)
            .build();
        let cover = minimum_vertex_cover_of(&computation.bipartite_graph());
        let components = ComponentMap::from_cover(&cover);
        for event in computation.events() {
            prop_assert!(components.covers_event(event));
        }
    }

    /// Theorem 3 (optimality, upper-bound direction): the optimal mixed clock
    /// never exceeds the number of active threads or active objects, on any
    /// workload family.
    #[test]
    fn optimal_clock_bounded_by_both_sides(
        threads in 1usize..10,
        objects in 1usize..10,
        ops in 0usize..120,
        seed in 0u64..100,
        kind_selector in 0usize..4,
    ) {
        let kind = match kind_selector {
            0 => WorkloadKind::Uniform,
            1 => WorkloadKind::Nonuniform { hot_fraction: 0.25, hot_boost: 5.0 },
            2 => WorkloadKind::ProducerConsumer { queues: 2 },
            _ => WorkloadKind::LockStriped { cross_stripe_prob: 0.2 },
        };
        let computation = WorkloadBuilder::new(threads, objects)
            .operations(ops)
            .kind(kind)
            .seed(seed)
            .build();
        let plan = OfflineOptimizer::new().plan_for_computation(&computation);
        prop_assert!(plan.clock_size() <= computation.thread_count());
        prop_assert!(plan.clock_size() <= computation.object_count()
            || computation.is_empty());
    }

    /// The streaming engine pre-loaded with the offline components produces a
    /// valid clock for any reveal order of a random graph.
    #[test]
    fn offline_components_work_for_any_reveal_order(
        nodes in 1usize..15,
        density in 0.0f64..0.5,
        seed in 0u64..100,
    ) {
        let (graph, computation) = random_graph_computation(
            nodes, nodes, density, GraphScenario::Uniform, seed,
        );
        let plan = OfflineOptimizer::new().plan_for_graph(graph);
        let mut engine = TimestampingEngine::with_components(plan.components().clone());
        let mut stamps = Vec::new();
        for event in computation.events() {
            stamps.push(engine.observe(event.thread, event.object).expect("covered"));
        }
        prop_assert!(mvc_core::verify_assignment(&computation, &stamps));
    }

    /// Online mechanisms never produce a smaller clock than the offline
    /// optimum (they cannot, since their component set is also a cover of the
    /// final graph), and their clocks are always valid.
    #[test]
    fn online_never_beats_offline(
        nodes in 2usize..12,
        density in 0.01f64..0.4,
        seed in 0u64..60,
    ) {
        let (graph, computation) = random_graph_computation(
            nodes, nodes, density, GraphScenario::default_nonuniform(), seed,
        );
        let optimal = OfflineOptimizer::new().plan_for_graph(graph).clock_size();
        let run = OnlineTimestamper::new(Popularity::new()).run(&computation).unwrap();
        prop_assert!(run.stats.clock_size() >= optimal);
        prop_assert!(mvc_core::verify_assignment(&computation, &run.timestamps));
    }
}
