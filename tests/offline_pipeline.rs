//! End-to-end integration tests of the offline pipeline: workload generation
//! → bipartite graph → matching → minimum cover → mixed clock → validity.

use mixed_vector_clock::prelude::*;
use mvc_clock::chain::ChainClockAssigner;
use mvc_clock::validate::satisfies_vector_clock_condition;
use mvc_clock::vector::{ObjectVectorClockAssigner, ThreadVectorClockAssigner};
use mvc_clock::TimestampAssigner;
use mvc_core::analysis::verify_all_clocks;
use mvc_trace::examples::paper_figure1;
use mvc_trace::{WorkloadBuilder, WorkloadKind};

#[test]
fn paper_running_example_end_to_end() {
    let computation = paper_figure1();
    let plan = OfflineOptimizer::new().plan_for_computation(&computation);

    // The paper's claims about Figures 1-3.
    assert_eq!(plan.clock_size(), 3);
    assert_eq!(plan.matching_size(), 3);
    assert!(plan.clock_size() < computation.thread_count());
    assert!(plan.clock_size() < computation.object_count());

    // Every clock implementation agrees that it is a valid vector clock.
    for (name, size, valid) in verify_all_clocks(&computation) {
        assert!(valid, "{name} invalid on the paper example");
        assert!(
            size >= plan.clock_size() || name == "mixed-vector-clock" || name == "chain-clock",
            "{name} reported size {size} below the optimum {}",
            plan.clock_size()
        );
    }
}

#[test]
fn all_clock_kinds_induce_the_same_order_on_random_workloads() {
    for seed in 0..5u64 {
        let computation = WorkloadBuilder::new(10, 10)
            .operations(150)
            .kind(WorkloadKind::Nonuniform {
                hot_fraction: 0.3,
                hot_boost: 4.0,
            })
            .seed(seed)
            .build();
        let plan = OfflineOptimizer::new().plan_for_computation(&computation);
        let thread = ThreadVectorClockAssigner::new().assign(&computation);
        let object = ObjectVectorClockAssigner::new().assign(&computation);
        let mixed = plan.assigner().assign(&computation);
        let chain = ChainClockAssigner::new().assign(&computation);

        for i in 0..computation.len() {
            for j in 0..computation.len() {
                if i == j {
                    continue;
                }
                let reference = thread[i].strictly_less_than(&thread[j]);
                assert_eq!(
                    reference,
                    object[i].strictly_less_than(&object[j]),
                    "object clock disagrees (seed {seed})"
                );
                assert_eq!(
                    reference,
                    mixed[i].strictly_less_than(&mixed[j]),
                    "mixed clock disagrees (seed {seed})"
                );
                assert_eq!(
                    reference,
                    chain[i].strictly_less_than(&chain[j]),
                    "chain clock disagrees (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn optimal_mixed_clock_is_never_larger_and_often_smaller() {
    let mut strictly_smaller = 0;
    for seed in 0..20u64 {
        let computation = WorkloadBuilder::new(30, 30)
            .operations(120)
            .kind(WorkloadKind::Nonuniform {
                hot_fraction: 0.15,
                hot_boost: 10.0,
            })
            .seed(seed)
            .build();
        let report = ClockSizeReport::analyze(&computation);
        assert!(report.optimal_mixed <= report.naive_best);
        if report.optimal_mixed < report.naive_best {
            strictly_smaller += 1;
        }
    }
    assert!(
        strictly_smaller >= 15,
        "expected most skewed sparse workloads to benefit, got {strictly_smaller}/20"
    );
}

#[test]
fn trace_codec_round_trip_preserves_the_optimal_plan() {
    let original = WorkloadBuilder::new(24, 40)
        .operations(2_000)
        .kind(WorkloadKind::LockStriped {
            cross_stripe_prob: 0.1,
        })
        .seed(3)
        .build();
    let bytes = mvc_trace::codec::encode(&original);
    let decoded = mvc_trace::codec::decode(&bytes).expect("decode");
    assert_eq!(original, decoded);

    let plan_a = OfflineOptimizer::new().plan_for_computation(&original);
    let plan_b = OfflineOptimizer::new().plan_for_computation(&decoded);
    assert_eq!(plan_a.clock_size(), plan_b.clock_size());
    assert_eq!(plan_a.cover(), plan_b.cover());
}

#[test]
fn degenerate_computations_are_handled() {
    // Single thread, many objects: the optimal clock is that one thread.
    let single_thread = WorkloadBuilder::new(1, 20).operations(100).seed(1).build();
    let plan = OfflineOptimizer::new().plan_for_computation(&single_thread);
    assert_eq!(plan.clock_size(), 1);
    let stamps = plan.assigner().assign(&single_thread);
    let oracle = single_thread.causality_oracle();
    assert!(satisfies_vector_clock_condition(
        &single_thread,
        &stamps,
        &oracle
    ));

    // Single object, many threads: the optimal clock is that one object.
    let single_object = WorkloadBuilder::new(20, 1).operations(100).seed(1).build();
    let plan = OfflineOptimizer::new().plan_for_computation(&single_object);
    assert_eq!(plan.clock_size(), 1);

    // Empty computation.
    let empty = Computation::new();
    let plan = OfflineOptimizer::new().plan_for_computation(&empty);
    assert_eq!(plan.clock_size(), 0);
    assert!(plan.assigner().assign(&empty).is_empty());
}
