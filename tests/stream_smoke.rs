//! End-to-end smoke test for incremental optimum tracking at evaluation
//! scale: a full 200×200, density-0.1 reveal stream (~4000 distinct edges)
//! driven through [`CompetitiveTracker`] — the workload the tracker could
//! not handle before the incremental rewrite without `O(E · E√V)` replans.
//!
//! Runs under the tier-1 suite (`cargo test`) in debug and is fast in
//! release, because a tracked reveal is now amortised `O(E)`.

use mvc_core::OfflineOptimizer;
use mvc_graph::{GraphScenario, RandomGraphBuilder};
use mvc_online::{CompetitiveTracker, Popularity};

#[test]
fn tracked_200x200_density_01_stream_end_to_end() {
    let (graph, stream) = RandomGraphBuilder::new(200, 200)
        .density(0.1)
        .scenario(GraphScenario::Uniform)
        .seed(42)
        .build_edge_stream();
    assert!(
        stream.len() > 3_000,
        "expected ~4000 edges at density 0.1, got {}",
        stream.len()
    );

    let report = CompetitiveTracker::new(Popularity::new()).run(&stream);
    assert_eq!(
        report.trajectory.len(),
        stream.len(),
        "one trajectory point per distinct revealed edge"
    );

    // The maintained optimum must be monotone (edges only ever arrive) and
    // dominated by the online size at every prefix.
    let mut previous = 0;
    for point in &report.trajectory {
        assert!(point.offline_optimum >= previous, "optimum shrank");
        assert!(point.online_size >= point.offline_optimum);
        previous = point.offline_optimum;
    }

    // The final maintained optimum agrees with one from-scratch solve of the
    // complete graph (single Hopcroft–Karp run, not per-edge).
    let final_point = report.final_point().expect("non-empty stream");
    assert_eq!(
        final_point.offline_optimum,
        OfflineOptimizer::new().solve(&graph).clock_size(),
        "incremental tracking diverged from the batch optimum"
    );
    assert!(report.final_ratio() >= 1.0);
    assert!(report.worst_ratio().is_finite());
}
