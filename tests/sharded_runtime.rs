//! Tier-1 smoke test: a real multi-threaded `TraceSession` stamped live by
//! the sharded engine, end to end.
//!
//! Four worker threads hammer shared objects; the drained interleaving is
//! stamped by a `ShardedEngine` through `LiveSession`'s batched pump path
//! (`observe_batch`), and the result is cross-checked against the
//! sequential engine replaying the identical interleaving — the whole
//! scale-out stack (session → channel drain → sharded batch pipeline →
//! order-preserving merge) in one test.

use std::thread;

use mvc_clock::validate::satisfies_vector_clock_condition;
use mvc_clock::ComponentMap;
use mvc_core::{replay, TimestampingEngine};
use mvc_runtime::TraceSession;
use mvc_shard::{ShardExecutor, ShardedEngine};

fn run_session(executor: ShardExecutor, shards: usize) {
    let session = TraceSession::new();
    let counter = session.shared_object("counter", 0u64);
    let flag = session.shared_object("flag", false);
    let mut handles = Vec::new();
    for i in 0..4 {
        let worker = session.register_thread(&format!("worker-{i}"));
        let counter = counter.clone();
        let flag = flag.clone();
        handles.push(thread::spawn(move || {
            for _ in 0..50 {
                counter.write(&worker, |v| *v += 1);
            }
            flag.write(&worker, |v| *v = true);
        }));
    }

    // All four threads are registered up front, so the thread-sided cover is
    // known before any event drains; objects appear as they are touched.
    let map = ComponentMap::all_threads(4);
    let live = session.live(ShardedEngine::with_executor(map.clone(), shards, executor));
    for handle in handles {
        handle.join().unwrap();
    }
    let run = live.finish().unwrap();

    assert_eq!(run.computation.len(), 204, "4 threads x (50 writes + flag)");
    assert_eq!(run.timestamps.len(), 204);
    assert_eq!(run.report.events, 204);
    assert_eq!(run.report.name, "sharded-engine");

    // The live sharded stamps equal a sequential replay of the identical
    // drained interleaving, bit for bit.
    let mut sequential = TimestampingEngine::with_components(map);
    let reference = replay(&mut sequential, &run.computation).unwrap();
    assert_eq!(run.timestamps, reference.timestamps);

    // And they really are a vector clock for that interleaving: comparison
    // order mirrors happened-before exactly.
    let oracle = run.computation.causality_oracle();
    assert!(satisfies_vector_clock_condition(
        &run.computation,
        &run.timestamps,
        &oracle
    ));
}

#[test]
fn multithreaded_live_session_through_inline_sharded_engine() {
    run_session(ShardExecutor::Inline, 4);
}

#[test]
fn multithreaded_live_session_through_threaded_sharded_engine() {
    run_session(ShardExecutor::Threads, 4);
}

#[test]
fn sharded_engine_recovers_live_after_component_addition() {
    // An engine whose cover misses an object: the pump fails without losing
    // the operation, the missing component is added, and the held-back
    // event drains on the next pump — the same recovery contract as the
    // sequential engine, through the batched drain path.
    let session = TraceSession::new();
    let t = session.register_thread("t");
    let o = session.shared_object("o", 0u8);
    let mut live = session.live(ShardedEngine::new(2));
    o.write(&t, |v| *v = 1);
    let err = live.pump().unwrap_err();
    assert!(matches!(
        err.as_timestamp_error(),
        Some(mvc_core::TimestampError::Uncovered { .. })
    ));
    assert_eq!(live.computation().len(), 0, "failed event is not recorded");

    live.timestamper_mut()
        .add_component(mvc_clock::Component::Object(mvc_trace::ObjectId(0)));
    assert_eq!(live.pump().unwrap(), 1, "held-back event is retried");
    let run = live.finish().unwrap();
    assert_eq!(run.computation.len(), 1);
    assert_eq!(run.timestamps.len(), 1);
}
