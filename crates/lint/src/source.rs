//! A lexed source file plus its inline suppressions.

use crate::diag::Diagnostic;
use crate::lexer::{lex, mark_test_code, Token, TokenKind};

/// An inline suppression comment: `// mvc-lint: allow(rule-id) — reason`.
///
/// A suppression covers the line it sits on; a standalone suppression comment
/// (nothing but the comment on its line) covers the next non-comment line
/// instead. A suppression without a written reason suppresses nothing and is
/// itself reported under the `suppression` rule.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub reason: String,
    /// The source line the suppression applies to.
    pub covers_line: u32,
    /// Where the comment itself lives (for the missing-reason diagnostic).
    pub at_line: u32,
    pub at_col: u32,
}

/// A file ready for linting: path, raw text, tokens with `in_test` marked,
/// and extracted suppressions.
pub struct SourceFile {
    pub path: String,
    pub text: String,
    pub tokens: Vec<Token>,
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let mut tokens = lex(text);
        mark_test_code(&mut tokens);
        let suppressions = extract_suppressions(&tokens);
        SourceFile {
            path: path.to_string(),
            text: text.to_string(),
            tokens,
            suppressions,
        }
    }

    /// Is `rule` suppressed (with a reason) on `line`?
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.covers_line == line && s.rule == rule && !s.reason.is_empty())
    }

    /// Diagnostics for malformed suppressions (missing reasons). Run once per
    /// file by the engine, not per rule.
    pub fn suppression_diagnostics(&self) -> Vec<Diagnostic> {
        self.suppressions
            .iter()
            .filter(|s| s.reason.is_empty())
            .map(|s| Diagnostic {
                path: self.path.clone(),
                line: s.at_line,
                col: s.at_col,
                rule: "suppression".to_string(),
                message: format!(
                    "mvc-lint: allow({}) has no reason; write `// mvc-lint: allow({}) — why`",
                    s.rule, s.rule
                ),
            })
            .collect()
    }
}

/// Pull `mvc-lint: allow(...)` markers out of comment tokens and resolve
/// which line each one covers.
fn extract_suppressions(tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Comment {
            continue;
        }
        let Some((rule, reason)) = parse_allow(&tok.text) else {
            continue;
        };
        // Standalone if no earlier token shares the comment's line.
        let standalone = tokens[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .count()
            == 0;
        let covers_line = if standalone {
            // Next non-comment token's line; fall back to own line at EOF.
            tokens[i + 1..]
                .iter()
                .find(|t| t.kind != TokenKind::Comment)
                .map(|t| t.line)
                .unwrap_or(tok.line)
        } else {
            tok.line
        };
        out.push(Suppression {
            rule,
            reason,
            covers_line,
            at_line: tok.line,
            at_col: tok.col,
        });
    }
    out
}

/// Parse `mvc-lint: allow(rule-id) — reason` out of a comment's text.
/// Accepts `—`, `–`, `-`, or `:` as the reason separator.
fn parse_allow(comment: &str) -> Option<(String, String)> {
    let idx = comment.find("mvc-lint:")?;
    let rest = comment[idx + "mvc-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let mut tail = rest[close + 1..].trim_start();
    for sep in ["—", "–", "-", ":"] {
        if let Some(stripped) = tail.strip_prefix(sep) {
            tail = stripped;
            break;
        }
    }
    let reason = tail.trim().trim_end_matches("*/").trim().to_string();
    Some((rule, reason))
}
