//! mvc-lint: the workspace's static-analysis gate.
//!
//! The correctness story of this codebase — the paper's
//! stamps-equal-batch-replay contract and the ROADMAP's oracles — rests on
//! invariants no type system checks: hot drain loops must not panic, nested
//! locks must follow one global order, atomics must state their ordering,
//! the offline planner must stay out of the streaming path. This crate
//! enforces them as a deny-by-default lint pass over the workspace source,
//! run in CI as `cargo run -p mvc-lint -- --deny`.
//!
//! Design constraints shape the implementation: the workspace builds offline
//! with shim crates, so the linter is dependency-free — a hand-rolled lexer
//! ([`lexer`]), a TOML-subset config parser ([`config`]), and purely
//! syntactic rules ([`rules`]). Findings print as
//! `path:line:col [rule-id] message` and are silenced per-line with
//! `// mvc-lint: allow(rule-id) — reason`; an allow without a reason is
//! itself a finding. See `docs/LINTS.md` for the rule catalogue.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod walk;

use std::path::Path;

pub use config::Config;
pub use diag::Diagnostic;
pub use source::SourceFile;
pub use walk::workspace_files;

/// Lint a set of workspace-relative files under `root` against `cfg`.
/// Returned diagnostics are sorted and already filtered through inline
/// suppressions.
pub fn lint_paths(
    root: &Path,
    paths: &[std::path::PathBuf],
    cfg: &Config,
) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let text = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        files.push(SourceFile::parse(&rel_str, &text));
    }
    Ok(lint_sources(&files, cfg))
}

/// Lint already-parsed sources. Split out from [`lint_paths`] so tests can
/// lint in-memory fixtures.
pub fn lint_sources(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    let mut edges = Vec::new();
    for file in files {
        raw.extend(rules::hot_path::check(file, cfg));
        raw.extend(rules::atomics::check(file, cfg));
        raw.extend(rules::unsafety::check(file, cfg));
        raw.extend(rules::debug_output::check(file, cfg));
        raw.extend(rules::forbidden::check(file, cfg));
        let (file_edges, lock_diags) = rules::lock_order::check_file(file);
        edges.extend(file_edges);
        raw.extend(lock_diags);
        // Malformed suppressions are reported unconditionally.
        raw.extend(file.suppression_diagnostics());
    }
    raw.extend(rules::lock_order::finish(&edges, cfg));

    // Apply inline suppressions (a suppression needs a reason to count).
    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            if d.rule == "suppression" {
                return true; // malformed allows are never self-silenced
            }
            let suppressed = files
                .iter()
                .find(|f| f.path == d.path)
                .is_some_and(|f| f.is_suppressed(&d.rule, d.line));
            !suppressed
        })
        .collect();
    diag::sort_diagnostics(&mut out);
    out
}
