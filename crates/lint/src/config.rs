//! `lint.toml` loading.
//!
//! The workspace ships no TOML crate (offline shim policy), so this module
//! parses the small subset the config actually uses: `[section]` tables,
//! `[[section]]` arrays of tables, and `key = value` where value is a string,
//! integer, boolean, or (possibly multiline) array of strings. `#` starts a
//! comment outside of strings. Anything beyond that subset is a hard error —
//! a config the linter half-understood would silently weaken the gate.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// One parsed value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    List(Vec<String>),
}

type Table = BTreeMap<String, Value>;

/// A `SeqCst` allowlist entry: the one file/symbol pair that may use it,
/// and why.
#[derive(Debug, Clone)]
pub struct SeqCstAllow {
    pub file: String,
    pub reason: String,
}

/// A declarative forbidden-pattern rule (the replacement for the old ad-hoc
/// `include_str!` source-scan tests).
#[derive(Debug, Clone)]
pub struct ForbiddenRule {
    /// Rule id diagnostics are reported under (and suppressed by).
    pub id: String,
    /// Workspace-relative file the rule applies to.
    pub file: String,
    /// Token-wise patterns that must appear at most `max_count` times in
    /// non-test code of `file`.
    pub patterns: Vec<String>,
    /// Maximum allowed occurrences per pattern (0 = forbidden outright).
    pub max_count: usize,
    /// The invariant being protected; echoed in diagnostics.
    pub reason: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Workspace-relative modules where panicking calls are banned.
    pub hot_path_modules: Vec<String>,
    /// Declared lock-acquisition chains, outermost first.
    pub lock_chains: Vec<Vec<String>>,
    /// Files allowed to use `Ordering::SeqCst`, with justification.
    pub seqcst_allow: Vec<SeqCstAllow>,
    /// Path prefixes exempt from the no-debug-output rule.
    pub debug_output_allow: Vec<String>,
    /// Require `#![forbid(unsafe_code)]` in every crate's `lib.rs`.
    pub require_forbid_unsafe: bool,
    /// Declarative forbidden-pattern rules.
    pub forbidden: Vec<ForbiddenRule>,
}

/// Config-file problem, reported with a line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Load and parse a config file.
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Config::parse(&text).map_err(|e| e.to_string())
    }

    /// Parse config text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let doc = parse_document(text)?;
        let mut cfg = Config {
            require_forbid_unsafe: true,
            ..Config::default()
        };

        for (section, line, table) in &doc {
            match section.as_str() {
                "hot_path" => {
                    cfg.hot_path_modules = take_list(table, "modules", *line)?;
                }
                "lock_order" => {
                    for chain in take_list(table, "chains", *line)? {
                        let locks: Vec<String> =
                            chain.split("->").map(|s| s.trim().to_string()).collect();
                        if locks.len() < 2 || locks.iter().any(String::is_empty) {
                            return Err(ConfigError {
                                line: *line,
                                message: format!(
                                    "lock chain `{chain}` must name two or more locks \
                                     separated by `->`"
                                ),
                            });
                        }
                        cfg.lock_chains.push(locks);
                    }
                }
                "atomic.allow_seqcst" => {
                    let entry = SeqCstAllow {
                        file: take_str(table, "file", *line)?,
                        reason: take_str(table, "reason", *line)?,
                    };
                    if entry.reason.trim().is_empty() {
                        return Err(ConfigError {
                            line: *line,
                            message: format!(
                                "allow_seqcst for `{}` needs a non-empty reason",
                                entry.file
                            ),
                        });
                    }
                    cfg.seqcst_allow.push(entry);
                }
                "debug_output" => {
                    cfg.debug_output_allow = take_list(table, "allow", *line)?;
                }
                "unsafe_code" => {
                    if let Some(v) = table.get("require_forbid") {
                        cfg.require_forbid_unsafe = as_bool(v, "require_forbid", *line)?;
                    }
                }
                "forbidden" => {
                    let rule = ForbiddenRule {
                        id: take_str(table, "id", *line)?,
                        file: take_str(table, "file", *line)?,
                        patterns: take_list(table, "patterns", *line)?,
                        max_count: match table.get("max_count") {
                            Some(Value::Int(n)) if *n >= 0 => *n as usize,
                            Some(_) => {
                                return Err(ConfigError {
                                    line: *line,
                                    message: "max_count must be a non-negative integer".into(),
                                })
                            }
                            None => 0,
                        },
                        reason: take_str(table, "reason", *line)?,
                    };
                    if rule.patterns.is_empty() {
                        return Err(ConfigError {
                            line: *line,
                            message: format!("forbidden rule `{}` has no patterns", rule.id),
                        });
                    }
                    cfg.forbidden.push(rule);
                }
                other => {
                    return Err(ConfigError {
                        line: *line,
                        message: format!("unknown section `[{other}]`"),
                    })
                }
            }
        }
        Ok(cfg)
    }
}

fn take_list(table: &Table, key: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    match table.get(key) {
        Some(Value::List(items)) => Ok(items.clone()),
        Some(_) => Err(ConfigError {
            line,
            message: format!("`{key}` must be an array of strings"),
        }),
        None => Err(ConfigError {
            line,
            message: format!("missing required key `{key}`"),
        }),
    }
}

fn take_str(table: &Table, key: &str, line: usize) -> Result<String, ConfigError> {
    match table.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(ConfigError {
            line,
            message: format!("`{key}` must be a string"),
        }),
        None => Err(ConfigError {
            line,
            message: format!("missing required key `{key}`"),
        }),
    }
}

fn as_bool(v: &Value, key: &str, line: usize) -> Result<bool, ConfigError> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(ConfigError {
            line,
            message: format!("`{key}` must be true or false"),
        }),
    }
}

/// Parse the raw document into `(section-path, header-line, table)` triples,
/// one per `[section]` / `[[section]]` occurrence, in file order.
fn parse_document(text: &str) -> Result<Vec<(String, usize, Table)>, ConfigError> {
    let mut out: Vec<(String, usize, Table)> = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let stripped = strip_comment(lines[i]);
        let trimmed = stripped.trim();
        if trimmed.is_empty() {
            i += 1;
            continue;
        }
        if let Some(header) = trimmed.strip_prefix("[[") {
            let name = header.strip_suffix("]]").ok_or_else(|| ConfigError {
                line: lineno,
                message: "malformed `[[section]]` header".into(),
            })?;
            out.push((name.trim().to_string(), lineno, Table::new()));
            i += 1;
        } else if let Some(header) = trimmed.strip_prefix('[') {
            let name = header.strip_suffix(']').ok_or_else(|| ConfigError {
                line: lineno,
                message: "malformed `[section]` header".into(),
            })?;
            out.push((name.trim().to_string(), lineno, Table::new()));
            i += 1;
        } else {
            let (key, mut value_text) = trimmed.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected `key = value`, got `{trimmed}`"),
            })?;
            let key = key.trim().to_string();
            let mut buf = value_text.trim().to_string();
            // Multiline arrays: keep consuming lines until brackets balance.
            while bracket_depth(&buf) > 0 {
                i += 1;
                if i >= lines.len() {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unterminated array for key `{key}`"),
                    });
                }
                buf.push(' ');
                buf.push_str(strip_comment(lines[i]).trim());
            }
            value_text = &buf;
            let value = parse_value(value_text.trim(), lineno)?;
            let Some((_, _, table)) = out.last_mut() else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("key `{key}` before any [section] header"),
                });
            };
            if table.insert(key.clone(), value).is_some() {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("duplicate key `{key}`"),
                });
            }
            i += 1;
        }
    }
    Ok(out)
}

/// Remove a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Net `[`/`]` nesting outside strings; positive means the array continues.
fn bracket_depth(s: &str) -> i32 {
    let mut depth = 0i32;
    let mut in_str = false;
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    depth
}

fn parse_value(text: &str, line: usize) -> Result<Value, ConfigError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or_else(|| ConfigError {
            line,
            message: "malformed array".into(),
        })?;
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, line)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(ConfigError {
                        line,
                        message: "arrays may contain only strings".into(),
                    })
                }
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body.strip_suffix('"').ok_or_else(|| ConfigError {
            line,
            message: "unterminated string".into(),
        })?;
        return Ok(Value::Str(unescape(body)));
    }
    if let Ok(n) = text.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(ConfigError {
        line,
        message: format!("cannot parse value `{text}`"),
    })
}

/// Split an array body on commas that sit outside strings.
fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_str => {
                current.push(c);
                if let Some(next) = chars.next() {
                    current.push(next);
                }
            }
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}
