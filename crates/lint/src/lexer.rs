//! A small hand-rolled Rust lexer.
//!
//! The linter never needs a full parse of Rust: every rule in this crate is a
//! statement about token sequences ("`.unwrap` followed by `(`", "`unsafe`
//! then `{`", "`.lock()` while another guard is live"). What it *does* need is
//! to be precise about the places where naive substring scans lie — string
//! literals, comments (including nested block comments and raw strings), and
//! `#[cfg(test)]` items. This lexer produces a flat token stream with
//! line/column positions and, after [`mark_test_code`], a per-token `in_test`
//! flag, which is all the rule engine consumes.

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `unwrap`, `r#type`, ...).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Integer or float literal, including suffixes (`1_000u64`, `2.5`).
    Number,
    /// String, raw-string, byte-string, or char literal, quotes included.
    Str,
    /// Line or block comment, markers included (`// ...`, `/* ... */`).
    Comment,
    /// A single punctuation character (`.`, `(`, `{`, `!`, `;`, ...).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// The token text, exactly as it appears in the source.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// True once [`mark_test_code`] decides this token is inside
    /// `#[cfg(test)]` / `#[test]` code. Rules skip such tokens.
    pub in_test: bool,
}

impl Token {
    /// Exact kind-and-text match.
    pub fn is(&self, kind: TokenKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }

    /// Is this the punctuation `text`?
    pub fn is_punct(&self, text: &str) -> bool {
        self.is(TokenKind::Punct, text)
    }

    /// Is this the identifier `text`?
    pub fn is_ident(&self, text: &str) -> bool {
        self.is(TokenKind::Ident, text)
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    /// Advance one byte, maintaining line/col. Multi-byte UTF-8 continuation
    /// bytes do not advance the column so positions stay character-based.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        Some(b)
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek() {
            if !pred(b) {
                break;
            }
            self.bump();
        }
    }

    fn slice(&self, from: usize) -> String {
        String::from_utf8_lossy(&self.src[from..self.pos]).into_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex a whole source file into tokens. Whitespace is dropped; comments are
/// kept (suppressions and `// SAFETY:` live in them). The lexer never fails:
/// an unexpected byte becomes a one-byte `Punct` token.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer::new(src);
    let mut tokens = Vec::new();
    while let Some(b) = lx.peek() {
        let (line, col, start) = (lx.line, lx.col, lx.pos);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.bump();
                continue;
            }
            b'/' if lx.peek_at(1) == Some(b'/') => {
                lx.take_while(|c| c != b'\n');
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    text: lx.slice(start),
                    line,
                    col,
                    in_test: false,
                });
            }
            b'/' if lx.peek_at(1) == Some(b'*') => {
                lx.bump();
                lx.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match lx.peek() {
                        Some(b'/') if lx.peek_at(1) == Some(b'*') => {
                            lx.bump();
                            lx.bump();
                            depth += 1;
                        }
                        Some(b'*') if lx.peek_at(1) == Some(b'/') => {
                            lx.bump();
                            lx.bump();
                            depth -= 1;
                        }
                        Some(_) => {
                            lx.bump();
                        }
                        None => break,
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    text: lx.slice(start),
                    line,
                    col,
                    in_test: false,
                });
            }
            b'"' => {
                lex_string(&mut lx);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: lx.slice(start),
                    line,
                    col,
                    in_test: false,
                });
            }
            b'b' if lx.peek_at(1) == Some(b'"') => {
                lx.bump();
                lex_string(&mut lx);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: lx.slice(start),
                    line,
                    col,
                    in_test: false,
                });
            }
            b'r' | b'b' if is_raw_string_start(lx.src, lx.pos) => {
                lex_raw_string(&mut lx);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: lx.slice(start),
                    line,
                    col,
                    in_test: false,
                });
            }
            b'r' if lx.peek_at(1) == Some(b'#') && lx.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#type`: strip the prefix so rules compare
                // against the plain name.
                lx.bump();
                lx.bump();
                let ident_start = lx.pos;
                lx.take_while(is_ident_continue);
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: lx.slice(ident_start),
                    line,
                    col,
                    in_test: false,
                });
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident not
                // closed by another `'` (so `'a'` is a char, `'a` a lifetime).
                if lx.peek_at(1).is_some_and(is_ident_start) && !is_char_literal(lx.src, lx.pos) {
                    lx.bump();
                    lx.take_while(is_ident_continue);
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: lx.slice(start),
                        line,
                        col,
                        in_test: false,
                    });
                } else {
                    lx.bump();
                    loop {
                        match lx.peek() {
                            Some(b'\\') => {
                                lx.bump();
                                lx.bump();
                            }
                            Some(b'\'') => {
                                lx.bump();
                                break;
                            }
                            Some(_) => {
                                lx.bump();
                            }
                            None => break,
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        text: lx.slice(start),
                        line,
                        col,
                        in_test: false,
                    });
                }
            }
            b if b.is_ascii_digit() => {
                lx.take_while(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'.');
                // A trailing `.` belongs to a following method call or range
                // (`0.lock()`, `0..n`), not to the number.
                while lx.pos > start && lx.src[lx.pos - 1] == b'.' {
                    lx.pos -= 1;
                    lx.col -= 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: lx.slice(start),
                    line,
                    col,
                    in_test: false,
                });
            }
            b if is_ident_start(b) => {
                lx.take_while(is_ident_continue);
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: lx.slice(start),
                    line,
                    col,
                    in_test: false,
                });
            }
            _ => {
                lx.bump();
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: lx.slice(start),
                    line,
                    col,
                    in_test: false,
                });
            }
        }
    }
    tokens
}

/// Consume a `"..."` string starting at the opening quote.
fn lex_string(lx: &mut Lexer<'_>) {
    lx.bump(); // opening quote
    loop {
        match lx.peek() {
            Some(b'\\') => {
                lx.bump();
                lx.bump();
            }
            Some(b'"') => {
                lx.bump();
                break;
            }
            Some(_) => {
                lx.bump();
            }
            None => break,
        }
    }
}

/// Is `src[pos..]` the start of a raw (byte) string: `r"`, `r#"`, `br"`, ...?
fn is_raw_string_start(src: &[u8], pos: usize) -> bool {
    let mut i = pos;
    if src.get(i) == Some(&b'b') {
        i += 1;
    }
    if src.get(i) != Some(&b'r') {
        return false;
    }
    i += 1;
    while src.get(i) == Some(&b'#') {
        i += 1;
    }
    src.get(i) == Some(&b'"')
}

/// Consume `r#"..."#`-style raw strings (any number of `#`, optional `b`).
fn lex_raw_string(lx: &mut Lexer<'_>) {
    if lx.peek() == Some(b'b') {
        lx.bump();
    }
    lx.bump(); // `r`
    let mut hashes = 0usize;
    while lx.peek() == Some(b'#') {
        lx.bump();
        hashes += 1;
    }
    lx.bump(); // opening quote
    loop {
        match lx.peek() {
            Some(b'"') => {
                lx.bump();
                let mut matched = 0usize;
                while matched < hashes && lx.peek() == Some(b'#') {
                    lx.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
            Some(_) => {
                lx.bump();
            }
            None => break,
        }
    }
}

/// `'a'` (possibly `'\n'`) is a char literal; `'a` in `<'a>` is a lifetime.
/// Called with `pos` at the opening `'` when the next byte starts an ident.
fn is_char_literal(src: &[u8], pos: usize) -> bool {
    let mut i = pos + 1;
    while i < src.len() && is_ident_continue(src[i]) {
        i += 1;
    }
    src.get(i) == Some(&b'\'')
}

/// Mark every token that lives inside test-only code: items annotated
/// `#[cfg(test)]` or `#[test]`, and whole files carrying `#![cfg(test)]`.
///
/// The extent of an annotated item is the matching `}` of its first `{` (or
/// the first `;` at the same depth, for `#[cfg(test)] use ...;`). Attributes
/// stack: `#[cfg(test)] #[derive(..)] struct X { .. }` marks the struct.
pub fn mark_test_code(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_len) = test_attr_len(tokens, i) {
            let is_inner = tokens[i + 1].is_punct("!");
            if is_inner {
                // `#![cfg(test)]`: the rest of the file is test code.
                for t in tokens[i..].iter_mut() {
                    t.in_test = true;
                }
                return;
            }
            // Skip any further outer attributes between this one and the item.
            let mut j = i + attr_len;
            while j < tokens.len() && tokens[j].is_punct("#") {
                j += skip_attr(tokens, j);
            }
            let end = item_extent(tokens, j);
            for t in tokens[i..end].iter_mut() {
                t.in_test = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
}

/// If `tokens[i..]` starts a `#[cfg(test)]`, `#![cfg(test)]`, or `#[test]`
/// attribute, return its token length; else `None`.
fn test_attr_len(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct("#") {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j)?.is_punct("!") {
        j += 1;
    }
    if !tokens.get(j)?.is_punct("[") {
        return None;
    }
    let body = j + 1;
    let is_test = match tokens.get(body) {
        Some(t) if t.is_ident("test") => tokens.get(body + 1).is_some_and(|t| t.is_punct("]")),
        Some(t) if t.is_ident("cfg") => {
            tokens.get(body + 1).is_some_and(|t| t.is_punct("("))
                && tokens.get(body + 2).is_some_and(|t| t.is_ident("test"))
                && tokens.get(body + 3).is_some_and(|t| t.is_punct(")"))
        }
        _ => false,
    };
    if !is_test {
        return None;
    }
    Some(skip_attr(tokens, i))
}

/// Token length of the attribute starting at `tokens[i]` (`#` or `#![`).
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1; // past `#`
    if tokens.get(j).is_some_and(|t| t.is_punct("!")) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("[")) {
        return 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1 - i;
            }
        }
        j += 1;
    }
    tokens.len() - i
}

/// End index (exclusive) of the item starting at `tokens[start]`: the first
/// `;` at brace depth 0, or the `}` matching the first `{` encountered.
fn item_extent(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                ";" if depth == 0 => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    tokens.len()
}
