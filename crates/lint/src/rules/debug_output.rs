//! `no-debug-output`: no `println!`, `dbg!`, or `todo!` in library code.
//!
//! The pipeline reports through `EventSink`s and returned errors, never
//! stdout; a stray `println!` in a drain loop is both a perf hazard (stdout
//! takes a process-global lock) and an observability lie. `todo!` is a panic
//! wearing a disguise. Binaries (`main.rs`, `src/bin/`) and allowlisted
//! paths (the criterion shim prints as its API) are exempt.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub const RULE: &str = "no-debug-output";

const BANNED: &[&str] = &["println", "dbg", "todo"];

pub fn check(file: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    if is_binary(&file.path)
        || cfg
            .debug_output_allow
            .iter()
            .any(|p| file.path.starts_with(p))
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.in_test || tok.kind != TokenKind::Ident || !BANNED.contains(&tok.text.as_str()) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct("!")) {
            continue;
        }
        // `macro_rules! println` or a path like `std::println` used in a
        // re-export would be odd but legal; the `name!` form is the usage.
        out.push(Diagnostic {
            path: file.path.clone(),
            line: tok.line,
            col: tok.col,
            rule: RULE.to_string(),
            message: format!(
                "`{}!` in library code; report through sinks or errors",
                tok.text
            ),
        });
    }
    out
}

/// Binaries may print: that's their interface.
fn is_binary(path: &str) -> bool {
    path.ends_with("/main.rs") || path.contains("/bin/")
}
