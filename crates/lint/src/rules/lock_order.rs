//! `lock-order`: nested lock acquisitions must follow the order declared in
//! `lint.toml`, and the workspace-wide acquisition graph must be acyclic.
//!
//! The net server's thread-per-connection loop and the runtime's session
//! registry together take twenty-odd `.lock()`s; a deadlock needs only two
//! of them nested in opposite orders on two threads. This rule extracts
//! every *syntactic* nesting — an acquisition made while another guard is
//! still live in the same function — as a directed edge `held -> acquired`,
//! then checks each edge against the declared chains and the union graph
//! for cycles. Deny-by-default: an edge no chain declares is an error, so
//! new nestings must be written down (and thought about) to compile the CI
//! gate green.
//!
//! Scope tracking is syntactic, not borrow-checked: a guard from `let g =
//! x.lock();` lives until its block closes or `drop(g)`; a temporary like
//! `x.lock().push(..)` dies at the statement's `;`. Rust's real temporary
//! lifetimes (match scrutinees, tail expressions) are a superset, so the
//! analysis can miss exotic nestings but never invents one.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

pub const RULE: &str = "lock-order";

/// Methods that acquire a guard when called with no arguments.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One observed nesting: `held` was live when `acquired` was taken.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub held: String,
    pub acquired: String,
}

#[derive(Debug)]
struct Guard {
    /// Lock name: the final identifier of the receiver chain.
    name: String,
    /// Variable the guard is bound to, if `let`-bound.
    var: Option<String>,
    /// Brace depth at the acquisition site.
    depth: i32,
    /// Temporaries die at the next `;`; let-bound guards at block close.
    temporary: bool,
}

/// Scan one file; returns observed edges plus immediate diagnostics
/// (self-reacquisition, which no declared order can make safe).
pub fn check_file(file: &SourceFile) -> (Vec<LockEdge>, Vec<Diagnostic>) {
    let toks: Vec<&Token> = file
        .tokens
        .iter()
        .filter(|t| !t.in_test && t.kind != TokenKind::Comment)
        .collect();
    let mut edges = Vec::new();
    let mut diags = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut paren_depth = 0i32;

    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => {
                    // Entering a block ends the temporaries of the statement
                    // head (`if x.lock().ready() {` drops before the body).
                    guards.retain(|g| !g.temporary);
                    depth += 1;
                }
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                ";" => {
                    guards.retain(|g| !(g.temporary && g.depth >= depth));
                }
                "(" | "[" => paren_depth += 1,
                ")" | "]" => paren_depth -= 1,
                // A comma outside any parens/brackets separates match arms
                // or struct-literal fields: arm temporaries end there.
                "," if paren_depth == 0 => {
                    guards.retain(|g| !(g.temporary && g.depth >= depth));
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        // `drop(var)` releases the named guard early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
        {
            if let Some(var) = toks.get(i + 2).filter(|t| t.kind == TokenKind::Ident) {
                guards.retain(|g| g.var.as_deref() != Some(var.text.as_str()));
            }
        }

        // Acquisition: `recv.lock()` / `recv.read()` / `recv.write()`,
        // zero-argument, with `recv`'s final path segment as the lock name.
        if let Some(site) = match_acquisition(&toks, i) {
            for g in &guards {
                if g.name == site.name {
                    diags.push(Diagnostic {
                        path: file.path.clone(),
                        line: site.line,
                        col: site.col,
                        rule: RULE.to_string(),
                        message: format!(
                            "lock `{}` acquired while a guard on it is still live \
                             (self-deadlock)",
                            site.name
                        ),
                    });
                } else {
                    edges.push(LockEdge {
                        path: file.path.clone(),
                        line: site.line,
                        col: site.col,
                        held: g.name.clone(),
                        acquired: site.name.clone(),
                    });
                }
            }
            guards.push(Guard {
                name: site.name,
                var: site.var,
                depth,
                temporary: site.var_is_none,
            });
        }
        i += 1;
    }
    (edges, diags)
}

struct Acquisition {
    name: String,
    line: u32,
    col: u32,
    var: Option<String>,
    var_is_none: bool,
}

/// If `toks[i]` is the receiver's final segment of a zero-arg acquire call,
/// return the site. `i` points at the ident before `.lock()`.
fn match_acquisition(toks: &[&Token], i: usize) -> Option<Acquisition> {
    let recv = toks[i];
    if recv.kind != TokenKind::Ident && recv.kind != TokenKind::Number {
        return None;
    }
    if !toks.get(i + 1)?.is_punct(".") {
        return None;
    }
    let method = toks.get(i + 2)?;
    if method.kind != TokenKind::Ident || !ACQUIRE_METHODS.contains(&method.text.as_str()) {
        return None;
    }
    if !toks.get(i + 3)?.is_punct("(") || !toks.get(i + 4)?.is_punct(")") {
        return None;
    }
    // Name the lock after the final identifier: for `self.0.lock()` walk
    // back past numeric tuple indices to `self`.
    let mut name = recv.text.clone();
    if recv.kind == TokenKind::Number {
        let mut k = i;
        while k >= 2 && toks[k].kind == TokenKind::Number && toks[k - 1].is_punct(".") {
            k -= 2;
        }
        if toks[k].kind == TokenKind::Ident {
            name = toks[k].text.clone();
        }
    }
    let var = if binds_guard(toks, i + 4) {
        let_binding(toks, i)
    } else {
        None
    };
    Some(Acquisition {
        name,
        line: method.line,
        col: method.col,
        var_is_none: var.is_none(),
        var,
    })
}

/// Does the expression keep the guard, or consume it?
///
/// `let g = m.lock();` binds the guard; `let n = m.lock().len();` binds a
/// value and drops the guard at the `;`. Starting from the `)` of the
/// acquire call at `close`, skip over Result-unwrapping adapters (`.unwrap()`
/// / `.expect(..)` / `.unwrap_or_else(..)` — std mutexes in the shims return
/// `LockResult`) and report whether the chain then ends the statement.
fn binds_guard(toks: &[&Token], mut close: usize) -> bool {
    const ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];
    loop {
        let Some(next) = toks.get(close + 1) else {
            return false;
        };
        if next.is_punct(";") {
            return true;
        }
        if !next.is_punct(".") {
            return false;
        }
        let Some(m) = toks.get(close + 2) else {
            return false;
        };
        if m.kind != TokenKind::Ident || !ADAPTERS.contains(&m.text.as_str()) {
            return false;
        }
        if !toks.get(close + 3).is_some_and(|t| t.is_punct("(")) {
            return false;
        }
        // Find the matching `)` of the adapter call.
        let mut depth = 0i32;
        let mut j = close + 3;
        loop {
            let Some(t) = toks.get(j) else { return false };
            if t.is_punct("(") {
                depth += 1;
            } else if t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        close = j;
    }
}

/// Walk back from the receiver to the start of the statement; if the
/// statement is `let [mut] NAME ... = ...`, return NAME.
fn let_binding(toks: &[&Token], recv: usize) -> Option<String> {
    let mut k = recv;
    while k > 0 {
        let t = toks[k - 1];
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        k -= 1;
    }
    if !toks.get(k)?.is_ident("let") {
        return None;
    }
    let mut n = k + 1;
    if toks.get(n)?.is_ident("mut") {
        n += 1;
    }
    let name_tok = toks.get(n)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    // Require a `=` between the binding and the receiver, i.e. the lock call
    // is the initializer of this very `let`.
    if n + 1 > recv {
        return None;
    }
    let has_eq = toks[n + 1..recv].iter().any(|t| t.is_punct("="));
    has_eq.then(|| name_tok.text.clone())
}

/// Workspace-level verdicts once every file's edges are collected: each edge
/// must be sanctioned by a declared chain, and the union of observed edges
/// and declared orderings must stay acyclic.
pub fn finish(edges: &[LockEdge], cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for e in edges {
        if chain_position(cfg, &e.held, &e.acquired) == ChainVerdict::Contradicted {
            out.push(Diagnostic {
                path: e.path.clone(),
                line: e.line,
                col: e.col,
                rule: RULE.to_string(),
                message: format!(
                    "acquiring `{}` while holding `{}` contradicts the declared lock \
                     order in lint.toml",
                    e.acquired, e.held
                ),
            });
        } else if chain_position(cfg, &e.held, &e.acquired) == ChainVerdict::Undeclared {
            out.push(Diagnostic {
                path: e.path.clone(),
                line: e.line,
                col: e.col,
                rule: RULE.to_string(),
                message: format!(
                    "undeclared lock nesting: `{}` held while acquiring `{}`; add a \
                     chain to lint.toml [lock_order] or restructure",
                    e.held, e.acquired
                ),
            });
        }
    }

    if let Some(cycle) = find_cycle(edges, cfg) {
        let at = edges
            .iter()
            .find(|e| cycle.contains(&e.held) && cycle.contains(&e.acquired));
        let (path, line, col) = at
            .map(|e| (e.path.clone(), e.line, e.col))
            .unwrap_or_else(|| ("lint.toml".to_string(), 1, 1));
        out.push(Diagnostic {
            path,
            line,
            col,
            rule: RULE.to_string(),
            message: format!("lock acquisition graph has a cycle: {}", cycle.join(" -> ")),
        });
    }
    out
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum ChainVerdict {
    Declared,
    Contradicted,
    Undeclared,
}

fn chain_position(cfg: &Config, held: &str, acquired: &str) -> ChainVerdict {
    let mut verdict = ChainVerdict::Undeclared;
    for chain in &cfg.lock_chains {
        let h = chain.iter().position(|l| l == held);
        let a = chain.iter().position(|l| l == acquired);
        match (h, a) {
            (Some(h), Some(a)) if h < a => return ChainVerdict::Declared,
            (Some(_), Some(_)) => verdict = ChainVerdict::Contradicted,
            _ => {}
        }
    }
    verdict
}

/// Cycle detection over observed edges plus declared-chain orderings.
/// Returns the node sequence of one cycle if any exists.
fn find_cycle(edges: &[LockEdge], cfg: &Config) -> Option<Vec<String>> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        graph.entry(&e.held).or_default().insert(&e.acquired);
    }
    for chain in &cfg.lock_chains {
        for pair in chain.windows(2) {
            graph.entry(&pair[0]).or_default().insert(&pair[1]);
        }
    }

    // Iterative DFS with colors; on a back-edge, read the cycle off the stack.
    let nodes: Vec<&str> = graph.keys().copied().collect();
    let mut state: BTreeMap<&str, u8> = BTreeMap::new(); // 0 new, 1 on-stack, 2 done
    for &root in &nodes {
        if state.get(root).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(
            root,
            graph
                .get(root)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default(),
        )];
        state.insert(root, 1);
        while let Some((node, succs)) = stack.last_mut() {
            if let Some(next) = succs.pop() {
                match state.get(next).copied().unwrap_or(0) {
                    0 => {
                        state.insert(next, 1);
                        let next_succs = graph
                            .get(next)
                            .map(|s| s.iter().copied().collect())
                            .unwrap_or_default();
                        stack.push((next, next_succs));
                    }
                    1 => {
                        let mut cycle: Vec<String> =
                            stack.iter().map(|(n, _)| n.to_string()).collect();
                        if let Some(pos) = cycle.iter().position(|n| n == next) {
                            cycle.drain(..pos);
                        }
                        cycle.push(next.to_string());
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                state.insert(node, 2);
                stack.pop();
            }
        }
    }
    None
}
