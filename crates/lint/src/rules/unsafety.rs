//! `unsafe-safety`: every `unsafe` block, function, or impl must sit under a
//! `// SAFETY:` comment, and every crate root must carry
//! `#![forbid(unsafe_code)]`.
//!
//! The workspace is unsafe-free today (every `lib.rs` forbids it) and the
//! paper's correctness argument never needs raw-pointer tricks. This rule
//! keeps that provable: the forbid attribute cannot silently disappear, and
//! if unsafe ever does arrive behind a config change, it arrives documented.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub const RULE: &str = "unsafe-safety";

pub fn check(file: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.tokens;

    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident || tok.text != "unsafe" {
            continue;
        }
        // A `// SAFETY: ...` comment must appear directly above (within two
        // lines) or on the same line, as the nearest preceding comment.
        let documented = toks[..i]
            .iter()
            .rev()
            .take_while(|t| t.line + 2 >= tok.line)
            .any(|t| t.kind == TokenKind::Comment && t.text.contains("SAFETY"));
        if !documented {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: tok.line,
                col: tok.col,
                rule: RULE.to_string(),
                message: "`unsafe` without a `// SAFETY:` comment explaining the invariant"
                    .to_string(),
            });
        }
    }

    // Crate roots must forbid unsafe code outright.
    if cfg.require_forbid_unsafe && file.path.ends_with("src/lib.rs") && !has_forbid_unsafe(file) {
        out.push(Diagnostic {
            path: file.path.clone(),
            line: 1,
            col: 1,
            rule: RULE.to_string(),
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    out
}

/// Look for the token sequence `# ! [ forbid ( unsafe_code ) ]`.
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let toks: Vec<_> = file
        .tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    toks.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
            && w[7].is_punct("]")
    })
}
