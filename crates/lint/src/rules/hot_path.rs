//! `hot-path-panic`: no `.unwrap()`, `.expect(..)`, or `panic!` in modules
//! the config declares hot.
//!
//! The drain loop's contract (ROADMAP oracle 6: stamps equal batch replay)
//! only holds if the pipeline keeps running; a panic mid-drain poisons
//! nothing visible but silently truncates the stamp stream. Hot-path code
//! must propagate the existing error types instead, or carry a justified
//! `mvc-lint: allow(hot-path-panic)` for panics that are provably
//! unreachable.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub const RULE: &str = "hot-path-panic";

pub fn check(file: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    if !cfg.hot_path_modules.iter().any(|m| m == &file.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        let finding = match tok.text.as_str() {
            "unwrap" | "expect" => {
                let after_dot = i > 0 && toks[i - 1].is_punct(".");
                let called = toks.get(i + 1).is_some_and(|t| t.is_punct("("));
                (after_dot && called).then(|| format!(".{}(..) in hot-path module", tok.text))
            }
            "panic" => toks
                .get(i + 1)
                .is_some_and(|t| t.is_punct("!"))
                .then(|| "panic! in hot-path module".to_string()),
            _ => None,
        };
        if let Some(message) = finding {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: tok.line,
                col: tok.col,
                rule: RULE.to_string(),
                message: format!("{message}; propagate an error or justify with an allow"),
            });
        }
    }
    out
}
