//! The rule set. Each module implements one rule over a lexed
//! [`crate::source::SourceFile`]; the engine in `lib.rs` runs them and
//! filters suppressed findings.

pub mod atomics;
pub mod debug_output;
pub mod forbidden;
pub mod hot_path;
pub mod lock_order;
pub mod unsafety;
