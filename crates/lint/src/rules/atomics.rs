//! `atomic-ordering`: atomic operations must spell out their `Ordering`, and
//! `SeqCst` is banned unless the file is allowlisted with a justification.
//!
//! The pipeline's cross-thread handshakes (serialization tickets, shard
//! replies, server shutdown flags) are all expressed through acquire/release
//! pairs; an ordering-free call hides the synchronization contract from the
//! reader, and a stray `SeqCst` hides the *absence* of a reasoned contract
//! behind the strongest (and slowest) fence.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub const RULE: &str = "atomic-ordering";

/// Atomic methods that take an `Ordering` argument. `swap` is deliberately
/// absent: `slice::swap(i, j)` is common and indistinguishable syntactically.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

pub fn check(file: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let seqcst_allowed = cfg.seqcst_allow.iter().any(|a| a.file == file.path);
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        // Any SeqCst mention outside the allowlist is a finding, wherever it
        // appears — argument position, constant, or re-export.
        if tok.text == "SeqCst" && !seqcst_allowed {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: tok.line,
                col: tok.col,
                rule: RULE.to_string(),
                message: "Ordering::SeqCst is banned; use an acquire/release pair or \
                          allowlist this file in lint.toml [[atomic.allow_seqcst]] with a reason"
                    .to_string(),
            });
            continue;
        }
        // `.method(` where method is atomic: the argument list must name an
        // ordering (or pass a variable named `ordering`/`order`).
        if !ATOMIC_METHODS.contains(&tok.text.as_str()) {
            continue;
        }
        if i == 0 || !toks[i - 1].is_punct(".") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let mut depth = 0i32;
        let mut has_ordering = false;
        let mut j = i + 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            } else if t.kind == TokenKind::Ident
                && (ORDERINGS.contains(&t.text.as_str())
                    || t.text == "Ordering"
                    || t.text == "ordering"
                    || t.text == "order")
            {
                has_ordering = true;
            }
            j += 1;
        }
        // Zero-argument calls (`rx.load()`) cannot be atomics misusing a
        // default; only flag calls that take arguments yet name no ordering —
        // except `load`/`store`, which always take one when atomic. For
        // non-atomic receivers sharing a method name (`fetch_update` is rare,
        // `load`/`store` rarer), the heuristic is: flag iff no ordering-like
        // ident anywhere in the argument list AND the call has the arity an
        // atomic would have (load: 1 arg, store: 2+, fetch_*: 2+).
        if !has_ordering && call_has_args(toks, i + 1) {
            out.push(Diagnostic {
                path: file.path.clone(),
                line: tok.line,
                col: tok.col,
                rule: RULE.to_string(),
                message: format!(
                    "`.{}(..)` does not name an explicit memory Ordering",
                    tok.text
                ),
            });
        }
    }
    out
}

/// Does the parenthesized list starting at `toks[open]` contain any tokens?
fn call_has_args(toks: &[crate::lexer::Token], open: usize) -> bool {
    toks.get(open + 1).is_some_and(|t| !t.is_punct(")"))
}
