//! Declarative forbidden-pattern rules from `lint.toml [[forbidden]]`.
//!
//! These absorb the old ad-hoc `include_str!` source-scan tests: each rule
//! names a file, a set of token patterns, and a maximum occurrence count
//! (default zero). Patterns are lexed with the same lexer as the source and
//! matched token-wise over non-test code, so a mention inside a string,
//! comment, or `#[cfg(test)]` block never fires — the exact false positives
//! the old `str::matches` scans were vulnerable to.

use crate::config::{Config, ForbiddenRule};
use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use crate::source::SourceFile;

pub fn check(file: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in cfg.forbidden.iter().filter(|r| r.file == file.path) {
        check_rule(file, rule, &mut out);
    }
    out
}

fn check_rule(file: &SourceFile, rule: &ForbiddenRule, out: &mut Vec<Diagnostic>) {
    // Code tokens only: comments out, strings stay as single opaque tokens a
    // multi-token pattern can never match into.
    let code: Vec<&Token> = file
        .tokens
        .iter()
        .filter(|t| !t.in_test && t.kind != TokenKind::Comment)
        .collect();
    for pattern in &rule.patterns {
        let needle = lex(pattern);
        if needle.is_empty() {
            continue;
        }
        let mut hits: Vec<(u32, u32)> = Vec::new();
        let mut i = 0usize;
        while i + needle.len() <= code.len() {
            let matched = needle
                .iter()
                .zip(&code[i..])
                .all(|(n, c)| n.kind == c.kind && n.text == c.text);
            if matched {
                hits.push((code[i].line, code[i].col));
                i += needle.len();
            } else {
                i += 1;
            }
        }
        for &(line, col) in hits.iter().skip(rule.max_count) {
            out.push(Diagnostic {
                path: file.path.clone(),
                line,
                col,
                rule: rule.id.clone(),
                message: if rule.max_count == 0 {
                    format!("forbidden pattern `{pattern}`: {}", rule.reason)
                } else {
                    format!(
                        "pattern `{pattern}` appears more than {} time(s): {}",
                        rule.max_count, rule.reason
                    )
                },
            });
        }
    }
}
