//! Workspace file discovery, dependency-free.
//!
//! The lintable surface is every `.rs` file under a `src/` directory of the
//! root package, `crates/*`, and `shims/*` — library and binary code, not
//! `tests/`, `benches/`, or `examples/` (integration tests may unwrap at
//! will). The linter's own test fixtures are skipped: they exist to trip
//! rules on purpose.

use std::path::{Path, PathBuf};

/// Collect workspace-relative paths of every lintable source file under
/// `root`, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for base in ["src", "crates", "shims"] {
        let base_path = root.join(base);
        if !base_path.is_dir() {
            continue;
        }
        if base == "src" {
            collect_rs(&base_path, &mut out)?;
        } else {
            for entry in std::fs::read_dir(&base_path)? {
                let src = entry?.path().join("src");
                if src.is_dir() {
                    collect_rs(&src, &mut out)?;
                }
            }
        }
    }
    let mut rel: Vec<PathBuf> = out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
