//! Diagnostics: what a rule reports and how it prints.

use std::fmt;

/// One finding, printed as `path:line:col [rule-id] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: String,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Sort key: path, then position, then rule — stable output for golden tests.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.col,
            b.rule.as_str(),
        ))
    });
}
