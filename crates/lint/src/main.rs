//! The `mvc-lint` binary: lint the workspace, print findings, gate CI.
//!
//! Usage:
//!   mvc-lint [--deny] [--config PATH] [--root PATH] [FILES...]
//!
//! With no FILES, lints every source file the workspace walker finds.
//! `--deny` exits 1 when there are findings (the CI mode); without it the
//! exit code is always 0 so the tool can be used exploratorily.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut config_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--config" => match argv.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => return usage("--config needs a path"),
            },
            "--root" => match argv.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "mvc-lint: static-analysis gate for the mixed-vector-clock workspace\n\n\
                     usage: mvc-lint [--deny] [--config lint.toml] [--root DIR] [FILES...]\n\n\
                     --deny     exit 1 on any finding (CI mode)\n\
                     --config   config file (default: ROOT/lint.toml)\n\
                     --root     workspace root (default: nearest dir with lint.toml)\n\
                     FILES      workspace-relative files to lint (default: whole workspace)"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("mvc-lint: no lint.toml found here or in any parent directory");
            return ExitCode::FAILURE;
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let cfg = match mvc_lint::Config::load(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("mvc-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let paths = if files.is_empty() {
        match mvc_lint::workspace_files(&root) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("mvc-lint: walking {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        files
    };

    let diags = match mvc_lint::lint_paths(&root, &paths, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mvc-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("mvc-lint: clean — {} file(s), 0 findings", paths.len());
    } else {
        eprintln!(
            "mvc-lint: {} finding(s) across {} file(s)",
            diags.len(),
            paths.len()
        );
    }

    if deny && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("mvc-lint: {msg} (see --help)");
    ExitCode::FAILURE
}

/// Walk upward from the current directory to the nearest `lint.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
