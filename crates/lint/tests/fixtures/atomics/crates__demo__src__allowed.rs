//! Allowlisted in config.toml: SeqCst is tolerated here (with the reason
//! recorded in the config, not inline).

use std::sync::atomic::{AtomicBool, Ordering};

pub fn allowlisted_seqcst(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}
