//! Atomic-ordering fixture (not allowlisted for SeqCst).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub fn explicit_orderings_ok(flag: &AtomicBool, n: &AtomicUsize) {
    flag.store(true, Ordering::Release);
    let _ = flag.load(Ordering::Acquire);
    let _ = n.fetch_add(1, Ordering::Relaxed);
}

pub fn positive_seqcst(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}

pub fn suppressed_seqcst(flag: &AtomicBool) {
    // mvc-lint: allow(atomic-ordering) — fixture: migration stepping stone
    flag.store(true, Ordering::SeqCst);
}

pub struct Store {
    items: Vec<u32>,
}

impl Store {
    /// Positive: a `store`-named call with arguments but no ordering. The
    /// rule is name-based on purpose — if a non-atomic type grows a method
    /// from the atomic vocabulary, passing the ordering spelled out (or
    /// renaming the method) keeps the call unambiguous to readers.
    pub fn positive_missing_ordering(&mut self, value: u32, flag: &AtomicBool) {
        flag.store(value != 0);
        self.items.push(value);
    }
}

pub fn false_positives_do_not_fire() {
    // Ordering::SeqCst in a comment must not fire.
    let _s = "Ordering::SeqCst in a string must not fire";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_seqcst(flag: &AtomicBool) {
        flag.store(true, Ordering::SeqCst);
    }
}
