//! Allowlisted path: printing is this shim's API.

#![forbid(unsafe_code)]

pub fn report(line: &str) {
    println!("{line}");
}
