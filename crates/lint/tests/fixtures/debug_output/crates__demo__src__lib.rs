//! no-debug-output fixture: library code must not print.

#![forbid(unsafe_code)]

pub fn positive_println(x: u32) {
    println!("x = {x}");
}

pub fn positive_dbg(x: u32) -> u32 {
    dbg!(x)
}

pub fn positive_todo() {
    todo!()
}

pub fn suppressed() {
    // mvc-lint: allow(no-debug-output) — fixture: startup banner demanded by the CLI contract
    println!("banner");
}

pub fn false_positives_do_not_fire() {
    // println! in a comment must not fire
    let _s = "println!(\"in a string\") must not fire";
    let _f = "a bare println ident without a bang";
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("test diagnostics are fine");
    }
}
