//! Binaries print as their interface: exempt.

fn main() {
    println!("hello from a binary");
}
