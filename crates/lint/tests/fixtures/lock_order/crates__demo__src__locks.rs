//! Lock-order fixture. Declared chain: first -> second.

use std::sync::Mutex;

pub struct S {
    first: Mutex<u32>,
    second: Mutex<u32>,
    third: Mutex<u32>,
}

impl S {
    /// Negative: nesting in the declared order is fine.
    pub fn declared_order_ok(&self) {
        let a = self.first.lock();
        let _b = self.second.lock();
        drop(a);
    }

    /// Positive: the reverse nesting contradicts the chain (and, combined
    /// with `declared_order_ok`, closes a cycle).
    pub fn contradicts_declared_order(&self) {
        let b = self.second.lock();
        let _a = self.first.lock();
        drop(b);
    }

    /// Positive: nesting nobody declared.
    pub fn undeclared_nesting(&self) {
        let a = self.first.lock();
        let _c = self.third.lock();
        drop(a);
    }

    /// Positive: re-acquiring a lock while its guard is live.
    pub fn self_deadlock(&self) {
        let a = self.first.lock();
        let _again = self.first.lock();
        drop(a);
    }

    /// Negative: `drop` releases the guard before the next acquisition.
    pub fn sequential_after_drop(&self) {
        let b = self.second.lock();
        drop(b);
        let _a = self.first.lock();
    }

    /// Negative: a scoped guard is released at its block's end.
    pub fn scoped_guard(&self) {
        {
            let _b = self.second.lock();
        }
        let _a = self.first.lock();
    }

    /// Negative: statement temporaries die at the semicolon.
    pub fn temporaries_do_not_nest(&self) {
        let _x = *self.second.lock() + 1;
        let _y = *self.first.lock() + 1;
    }

    /// Suppressed: an undeclared nesting with a reasoned allow.
    pub fn suppressed_nesting(&self) {
        let c = self.third.lock();
        // mvc-lint: allow(lock-order) — fixture: justified one-off nesting
        let _a = self.first.lock();
        drop(c);
    }
}
