//! Forbidden-pattern fixture: mentions of OfflinePlanner in comments,
//! strings, and tests must NOT fire; real code occurrences must.

pub struct OfflinePlanner;

pub fn positive_clone(v: &Vec<u32>) -> Vec<u32> {
    v.clone()
}

pub fn suppressed_use() {
    // mvc-lint: allow(demo-no-planner) — fixture: cold-start fallback, not the hot path
    let _p = OfflinePlanner;
}

pub fn false_positives_do_not_fire() {
    // OfflinePlanner in a comment is fine, as is .clone() here
    let _s = "OfflinePlanner and .clone() in a string are fine";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_use_the_planner() {
        let _p = OfflinePlanner;
        let _v = vec![1u32].clone();
    }
}
