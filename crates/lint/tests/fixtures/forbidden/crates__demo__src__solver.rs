//! max_count fixture: the first `solve_once(` is within budget, the second
//! is a finding.

use planner::solve_once;

pub fn first_call_is_budgeted(input: &[u32]) -> u32 {
    solve_once(input)
}

pub fn second_call_fires(input: &[u32]) -> u32 {
    solve_once(input)
}
