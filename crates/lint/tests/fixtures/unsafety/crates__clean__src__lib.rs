//! Crate root WITH the forbid attribute: nothing to report.

#![forbid(unsafe_code)]

pub fn fine() {}
