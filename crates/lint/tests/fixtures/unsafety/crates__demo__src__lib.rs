//! Crate root WITHOUT `#![forbid(unsafe_code)]`: flagged at 1:1.

pub fn positive_undocumented_unsafe(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn documented_unsafe_ok(p: *const u32) -> u32 {
    // SAFETY: caller guarantees `p` is valid and aligned for reads.
    unsafe { *p }
}

pub fn suppressed_unsafe(p: *const u32) -> u32 {
    // mvc-lint: allow(unsafe-safety) — fixture: documented in the module header instead
    unsafe { *p }
}

pub fn mentions_in_prose_do_not_fire() {
    // the word unsafe in a comment must not fire
    let _s = "unsafe in a string must not fire";
}
