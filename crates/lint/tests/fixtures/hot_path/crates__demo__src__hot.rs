//! Hot-path fixture: panicking calls must be flagged, except in tests,
//! strings, comments, and under a reasoned allow.

pub fn positive_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn positive_expect(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn positive_panic() {
    panic!("boom");
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // mvc-lint: allow(hot-path-panic) — fixture: provably Some by construction
    x.unwrap()
}

// mvc-lint: allow(hot-path-panic)
pub fn suppression_without_reason_still_fires(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn not_a_call() {
    // a comment mentioning .unwrap() must not fire
    let _s = "strings with .unwrap() and panic! must not fire";
    let _r = r#"raw panic!("x") too"#;
}

pub fn unwrap_or_is_fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        Some(1u32).unwrap();
        panic!("fine in tests");
    }
}
