//! Not on the hot-path module list: panicking calls are allowed here.

pub fn cold_code_may_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}
