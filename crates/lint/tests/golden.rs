//! Golden-diagnostic tests over the fixture corpus.
//!
//! Each directory under `tests/fixtures/` is one scenario: a `config.toml`,
//! one or more `.rs` inputs whose filenames encode virtual workspace paths
//! (`__` stands for `/`, so `crates__demo__src__hot.rs` is linted as
//! `crates/demo/src/hot.rs`), and an `expected.txt` holding the exact
//! diagnostics, sorted, one per line (empty file = lints clean).
//!
//! Regenerate expectations after an intentional rule change with
//! `UPDATE_EXPECT=1 cargo test -p mvc-lint`.

use std::path::Path;

use mvc_lint::{lint_sources, Config, SourceFile};

fn run_fixture(dir: &Path) -> (String, String) {
    let cfg_text = std::fs::read_to_string(dir.join("config.toml"))
        .unwrap_or_else(|e| panic!("{}: reading config.toml: {e}", dir.display()));
    let cfg = Config::parse(&cfg_text)
        .unwrap_or_else(|e| panic!("{}: parsing config.toml: {e}", dir.display()));

    let mut inputs: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    inputs.sort();
    assert!(
        !inputs.is_empty(),
        "{}: fixture has no .rs inputs",
        dir.display()
    );

    let files: Vec<SourceFile> = inputs
        .iter()
        .map(|p| {
            let virtual_path = p.file_name().unwrap().to_string_lossy().replace("__", "/");
            let text = std::fs::read_to_string(p).unwrap();
            SourceFile::parse(&virtual_path, &text)
        })
        .collect();

    let actual = lint_sources(&files, &cfg)
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n");

    let expected_path = dir.join("expected.txt");
    if std::env::var_os("UPDATE_EXPECT").is_some() {
        let mut content = actual.clone();
        if !content.is_empty() {
            content.push('\n');
        }
        std::fs::write(&expected_path, content).unwrap();
    }
    let expected = std::fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("{}: reading expected.txt: {e}", dir.display()));
    (actual, expected.trim_end().to_string())
}

fn check(name: &str) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let (actual, expected) = run_fixture(&dir);
    assert_eq!(
        actual, expected,
        "\nfixture `{name}` diverged.\n--- actual ---\n{actual}\n--- expected ---\n{expected}\n\
         (UPDATE_EXPECT=1 cargo test -p mvc-lint to regenerate)"
    );
}

#[test]
fn hot_path_fixture() {
    check("hot_path");
}

#[test]
fn lock_order_fixture() {
    check("lock_order");
}

#[test]
fn atomics_fixture() {
    check("atomics");
}

#[test]
fn unsafety_fixture() {
    check("unsafety");
}

#[test]
fn forbidden_fixture() {
    check("forbidden");
}

#[test]
fn debug_output_fixture() {
    check("debug_output");
}

/// Every fixture directory on disk must be claimed by a named test above —
/// a new rule's fixture can't silently go unasserted.
#[test]
fn all_fixture_dirs_are_covered() {
    let known = [
        "hot_path",
        "lock_order",
        "atomics",
        "unsafety",
        "forbidden",
        "debug_output",
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for entry in std::fs::read_dir(&root).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            known.contains(&name.as_str()),
            "fixture dir `{name}` has no corresponding #[test]"
        );
    }
}
