//! Side-by-side clock size accounting and validity checking.
//!
//! The evaluation sections of the paper compare the *size* (number of
//! components) of competing clocks for the same computation; this module
//! centralises that accounting so that the examples, the evaluation harness
//! and the integration tests all report the same numbers.

use std::fmt;

use serde::{Deserialize, Serialize};

use mvc_clock::chain::ChainClockAssigner;
use mvc_clock::validate;
use mvc_clock::vector::{ObjectVectorClockAssigner, ThreadVectorClockAssigner};
use mvc_clock::{TimestampAssigner, VectorTimestamp};
use mvc_trace::Computation;

use crate::offline::OfflineOptimizer;

/// Clock sizes of the standard algorithms on one computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockSizeReport {
    /// Number of distinct threads in the computation.
    pub threads: usize,
    /// Number of distinct objects in the computation.
    pub objects: usize,
    /// Number of events.
    pub events: usize,
    /// Size of the thread-based vector clock (`n`, counting active threads).
    pub thread_clock: usize,
    /// Size of the object-based vector clock (`m`, counting active objects).
    pub object_clock: usize,
    /// `min(n, m)` — the best either traditional clock can do.
    pub naive_best: usize,
    /// Size of the optimal mixed vector clock (minimum vertex cover).
    pub optimal_mixed: usize,
    /// Number of chains used by the greedy dynamic chain clock baseline.
    pub chain_clock: usize,
}

impl ClockSizeReport {
    /// Computes the report for a computation.
    pub fn analyze(computation: &Computation) -> Self {
        let plan = OfflineOptimizer::new().plan_for_computation(computation);
        let chain = ChainClockAssigner::new().decompose(computation);
        let threads = computation.thread_count();
        let objects = computation.object_count();
        ClockSizeReport {
            threads,
            objects,
            events: computation.len(),
            thread_clock: threads,
            object_clock: objects,
            naive_best: threads.min(objects),
            optimal_mixed: plan.clock_size(),
            chain_clock: chain.chains,
        }
    }

    /// Components saved by the optimal mixed clock relative to the best
    /// traditional clock.
    pub fn savings(&self) -> usize {
        self.naive_best.saturating_sub(self.optimal_mixed)
    }

    /// Relative size of the optimal mixed clock vs. the best traditional
    /// clock (1.0 = no savings, 0.5 = half the components). Returns 1.0 for
    /// an empty computation.
    pub fn reduction_ratio(&self) -> f64 {
        if self.naive_best == 0 {
            1.0
        } else {
            self.optimal_mixed as f64 / self.naive_best as f64
        }
    }
}

impl fmt::Display for ClockSizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "events={} threads={} objects={} | thread-clock={} object-clock={} optimal-mixed={} chain={} (saves {} vs best naive)",
            self.events,
            self.threads,
            self.objects,
            self.thread_clock,
            self.object_clock,
            self.optimal_mixed,
            self.chain_clock,
            self.savings(),
        )
    }
}

/// Verifies a timestamp assignment against the exact happened-before oracle.
///
/// Thin convenience wrapper over [`mvc_clock::validate`]; returns `true` iff
/// the assignment satisfies `s → t ⇔ s.v < t.v`.
pub fn verify_assignment(computation: &Computation, timestamps: &[VectorTimestamp]) -> bool {
    let oracle = computation.causality_oracle();
    validate::satisfies_vector_clock_condition(computation, timestamps, &oracle)
}

/// Runs all standard assigners (thread, object, optimal mixed, chain) on a
/// computation and verifies each of them, returning `(name, size, valid)`
/// triples.  Used by the examples and by integration tests to demonstrate
/// that every clock in the repository agrees on the happened-before relation.
pub fn verify_all_clocks(computation: &Computation) -> Vec<(&'static str, usize, bool)> {
    let oracle = computation.causality_oracle();
    let plan = OfflineOptimizer::new().plan_for_computation(computation);
    let mixed = plan.assigner();
    let assigners: Vec<(&'static str, Box<dyn TimestampAssigner>)> = vec![
        (
            "thread-vector-clock",
            Box::new(ThreadVectorClockAssigner::new()),
        ),
        (
            "object-vector-clock",
            Box::new(ObjectVectorClockAssigner::new()),
        ),
        ("mixed-vector-clock", Box::new(mixed)),
        ("chain-clock", Box::new(ChainClockAssigner::new())),
    ];
    assigners
        .into_iter()
        .map(|(name, a)| {
            let stamps = a.assign(computation);
            let valid = validate::satisfies_vector_clock_condition(computation, &stamps, &oracle);
            (name, a.clock_size(computation), valid)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_clock::vector::ThreadVectorClockAssigner;
    use mvc_trace::examples::paper_figure1;
    use mvc_trace::{ObjectId, ThreadId, WorkloadBuilder};

    #[test]
    fn report_on_empty_computation() {
        let r = ClockSizeReport::analyze(&Computation::new());
        assert_eq!(r.events, 0);
        assert_eq!(r.optimal_mixed, 0);
        assert_eq!(r.savings(), 0);
        assert_eq!(r.reduction_ratio(), 1.0);
    }

    #[test]
    fn report_on_figure1() {
        let r = ClockSizeReport::analyze(&paper_figure1());
        assert_eq!(r.threads, 4);
        assert_eq!(r.objects, 4);
        assert_eq!(r.naive_best, 4);
        assert_eq!(r.optimal_mixed, 3);
        assert_eq!(r.savings(), 1);
        assert!((r.reduction_ratio() - 0.75).abs() < 1e-12);
        let display = r.to_string();
        assert!(display.contains("optimal-mixed=3"));
        assert!(display.contains("saves 1"));
    }

    #[test]
    fn optimal_never_exceeds_naive_best() {
        for seed in 0..10 {
            let c = WorkloadBuilder::new(15, 10)
                .operations(150)
                .seed(seed)
                .build();
            let r = ClockSizeReport::analyze(&c);
            assert!(r.optimal_mixed <= r.naive_best);
            assert!(r.reduction_ratio() <= 1.0);
        }
    }

    #[test]
    fn verify_assignment_accepts_valid_and_rejects_invalid() {
        let c = paper_figure1();
        let good = ThreadVectorClockAssigner::new().assign(&c);
        assert!(verify_assignment(&c, &good));
        let bad = vec![mvc_clock::VectorTimestamp::zeros(4); c.len()];
        assert!(!verify_assignment(&c, &bad));
    }

    #[test]
    fn verify_all_clocks_on_figure1() {
        let results = verify_all_clocks(&paper_figure1());
        assert_eq!(results.len(), 4);
        for (name, size, valid) in &results {
            assert!(valid, "{name} reported an invalid clock");
            assert!(*size >= 1);
        }
        let mixed = results
            .iter()
            .find(|(n, _, _)| *n == "mixed-vector-clock")
            .unwrap();
        assert_eq!(mixed.1, 3);
    }

    #[test]
    fn verify_all_clocks_on_single_pair() {
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        for (_, size, valid) in verify_all_clocks(&c) {
            assert!(valid);
            assert_eq!(size, 1);
        }
    }
}
