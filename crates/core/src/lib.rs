//! Optimal mixed vector clocks for multithreaded systems.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Zheng & Garg, *An Optimal Vector Clock Algorithm for Multithreaded
//! Systems*, ICDCS 2019): timestamping the events of a thread–object
//! computation with a **mixed vector clock** whose components are a minimum
//! vertex cover of the thread–object bipartite graph, which is provably the
//! smallest component set that can characterise happened-before.
//!
//! The crate ties together the substrates:
//!
//! * [`offline`] — [`OfflineOptimizer`]: Algorithm 1 (maximum matching via
//!   Hopcroft–Karp, then the Kőnig–Egerváry construction) producing an
//!   [`OfflinePlan`] with the optimal component set.
//! * [`engine`] — [`TimestampingEngine`]: an incremental engine that
//!   maintains per-thread and per-object mixed vectors and timestamps events
//!   as they are observed; supports growing the component set online, which
//!   is what the `mvc-online` mechanisms need.
//! * [`analysis`] — side-by-side clock size accounting and validity checking
//!   across thread / object / mixed / chain clocks.
//! * [`timestamper`] — [`Timestamper`]: the unified streaming interface over
//!   the batch replay path ([`BatchReplay`]), the incremental engine, and the
//!   online timestampers of `mvc-online`, plus [`replay`] to drive a whole
//!   computation through any of them.
//! * [`sink`] — [`EventSink`]: pluggable egress for stamped events (memory
//!   recorder, streaming codec writer, stats counters, tee fan-out), the
//!   third stage of the runtime's ingest → stamp → sink pipeline.
//!
//! # Quickstart
//!
//! ```
//! use mvc_core::prelude::*;
//! use mvc_trace::examples::paper_figure1;
//!
//! let computation = paper_figure1();
//!
//! // Run the offline optimal algorithm (Algorithm 1 of the paper).
//! let plan = OfflineOptimizer::new().plan_for_computation(&computation);
//! assert_eq!(plan.clock_size(), 3); // T2, O2/T1, O3 — fewer than 4 threads or 4 objects
//!
//! // Timestamp every event with the optimal mixed clock and validate it.
//! let stamps = plan.assigner().assign(&computation);
//! let oracle = computation.causality_oracle();
//! assert!(mvc_clock::validate::satisfies_vector_clock_condition(
//!     &computation, &stamps, &oracle
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod engine;
pub mod offline;
pub mod sink;
pub mod timestamper;

pub use analysis::{verify_assignment, ClockSizeReport};
pub use engine::{EngineError, StampFormat, TimestampingEngine};
pub use offline::{OfflineOptimizer, OfflinePlan, OfflineSolution};
pub use sink::{
    CodecSink, EventSink, MemoryRecorder, SinkError, SinkStats, StampedEvent, StatsSink, TeeSink,
};
pub use timestamper::{
    replay, BatchReplay, TimestampError, TimestampReport, TimestampedRun, Timestamper,
};

/// Convenient re-exports of the types most applications need.
pub mod prelude {
    pub use crate::analysis::ClockSizeReport;
    pub use crate::engine::{StampFormat, TimestampingEngine};
    pub use crate::offline::{OfflineOptimizer, OfflinePlan, OfflineSolution};
    pub use crate::sink::{
        CodecSink, EventSink, MemoryRecorder, SinkError, StampedEvent, StatsSink, TeeSink,
    };
    pub use crate::timestamper::{
        replay, BatchReplay, TimestampError, TimestampReport, TimestampedRun, Timestamper,
    };
    pub use mvc_clock::{
        ClockOrd, Component, ComponentMap, MixedVectorClockAssigner, TimestampAssigner,
        VectorTimestamp,
    };
    pub use mvc_graph::{BipartiteGraph, GraphScenario, RandomGraphBuilder, Vertex, VertexCover};
    pub use mvc_trace::{Computation, EventId, ObjectId, OpKind, ThreadId};
}
