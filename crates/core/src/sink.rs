//! Event sinks: pluggable egress backends for stamped events.
//!
//! The ingest side of the runtime pipeline produces a faithful interleaving
//! and the [`Timestamper`](crate::Timestamper) stamps it; an [`EventSink`]
//! decides what happens to the stamped stream.  The four backends cover the
//! deployment spectrum:
//!
//! * [`MemoryRecorder`] — keeps the interleaving as a
//!   [`Computation`] plus the per-event timestamps (the classic
//!   post-run-analysis mode, and the backend `LiveSession::finish` uses to
//!   build its `LiveRun`).
//! * [`CodecSink`] — feeds a [`StreamEncoder`] so the trace persists in the
//!   `mvc_trace::codec` binary format *without materialising a
//!   [`Computation`]* — memory is the encoded bytes, not the chains.
//! * [`StatsSink`] — O(1)-ish counters only: event totals per kind, id
//!   bounds, clock-width high-water.  For long-running services that want
//!   monitoring, not storage.
//! * [`TeeSink`] — fans every batch out to any number of boxed child sinks,
//!   so recording, persistence and monitoring compose.
//!
//! Sinks accept events in **batches** (one call per drained merge batch, not
//! one per event); a sink that stores the batch takes it by value through
//! [`EventSink::accept_owned`], so the hot path moves timestamps instead of
//! cloning them.

use std::fmt;

use mvc_clock::VectorTimestamp;
use mvc_trace::codec::StreamEncoder;
use mvc_trace::{Computation, ObjectId, OpKind, ThreadId};

/// One event as it leaves the timestamping stage: the operation plus its
/// assigned timestamp (at the clock width current when it was stamped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StampedEvent {
    /// The thread that performed the operation.
    pub thread: ThreadId,
    /// The object operated on.
    pub object: ObjectId,
    /// The kind of operation.
    pub kind: OpKind,
    /// The mixed-clock timestamp assigned to the operation.
    pub timestamp: VectorTimestamp,
}

/// Errors reported by sink operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkError {
    /// An underlying writer failed (message carries the source error).
    Io(String),
}

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkError::Io(msg) => write!(f, "sink I/O failure: {msg}"),
        }
    }
}

impl std::error::Error for SinkError {}

/// A destination for stamped events.
///
/// The trait is dyn-compatible so sinks can be selected at runtime and
/// composed through [`TeeSink`].  Contract: a batch is either accepted
/// completely or the sink returns an error having (observably) stored
/// nothing of the batch, and a caller that receives an error must re-offer
/// the **identical batch** before sending any new events — the pipeline
/// driver guarantees this by holding failed batches back and retrying them
/// first.  The retry clause is what lets a combinator like [`TeeSink`]
/// resume a partially fanned-out batch without duplicating events into
/// children that already stored it.
///
/// Sinks are `Send` so a type-erased `Box<dyn EventSink>` can cross thread
/// boundaries — the networked service (`mvc-net`) drains one shared sink
/// from many connection-handler threads behind a mutex.
pub trait EventSink: Send {
    /// A short, stable name for reports and CLI selection.
    fn name(&self) -> &str;

    /// Accepts one batch of stamped events, in stamping order.
    ///
    /// # Errors
    ///
    /// Returns a [`SinkError`] if the batch could not be stored; the batch
    /// is then considered *not* accepted, and the caller must re-offer the
    /// identical batch before any new events (see the trait docs).
    fn accept_batch(&mut self, batch: &[StampedEvent]) -> Result<(), SinkError>;

    /// Accepts a batch by value, draining `batch` on success.
    ///
    /// The default forwards to [`accept_batch`](Self::accept_batch) and
    /// clears the vector; sinks that store the events (the
    /// [`MemoryRecorder`]) override it to move timestamps instead of
    /// cloning them.  On error the batch is left untouched for retry.
    ///
    /// # Errors
    ///
    /// Same contract as [`accept_batch`](Self::accept_batch).
    fn accept_owned(&mut self, batch: &mut Vec<StampedEvent>) -> Result<(), SinkError> {
        self.accept_batch(batch)?;
        batch.clear();
        Ok(())
    }

    /// Accepts a batch in column layout — the pipeline driver's native
    /// shape: one `(thread, object, kind)` tuple per event plus the
    /// parallel vector of timestamps.  On success the stamps are consumed
    /// (`stamps` is left empty); on error nothing is consumed and the same
    /// retry contract as [`accept_batch`](Self::accept_batch) applies.
    ///
    /// The default zips the columns into [`StampedEvent`]s and forwards to
    /// [`accept_owned`](Self::accept_owned); storage backends override it
    /// to consume the columns directly, which keeps the hot path free of
    /// per-event struct shuffling.
    ///
    /// # Errors
    ///
    /// Same contract as [`accept_batch`](Self::accept_batch).
    fn accept_columns(
        &mut self,
        events: &[(ThreadId, ObjectId, OpKind)],
        stamps: &mut Vec<VectorTimestamp>,
    ) -> Result<(), SinkError> {
        debug_assert_eq!(events.len(), stamps.len());
        let mut batch: Vec<StampedEvent> = events
            .iter()
            .zip(stamps.drain(..))
            .map(|(&(thread, object, kind), timestamp)| StampedEvent {
                thread,
                object,
                kind,
                timestamp,
            })
            .collect();
        if let Err(e) = self.accept_owned(&mut batch) {
            // Restore the stamps so the caller can re-offer the identical
            // columns.
            stamps.extend(batch.into_iter().map(|ev| ev.timestamp));
            return Err(e);
        }
        Ok(())
    }

    /// Pushes buffered state towards the sink's destination.
    ///
    /// # Errors
    ///
    /// Returns a [`SinkError`] if the underlying writer fails.
    fn flush(&mut self) -> Result<(), SinkError> {
        Ok(())
    }

    /// Events accepted so far.
    fn events_accepted(&self) -> usize;

    /// The sink as [`Any`](std::any::Any), so callers holding a
    /// type-erased sink — a [`TeeSink`] child, a CLI-selected
    /// `Box<dyn EventSink>` — can downcast back to the concrete backend and
    /// recover its product.
    fn as_any(&self) -> &dyn std::any::Any;
}

impl<S: EventSink + ?Sized> EventSink for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn accept_batch(&mut self, batch: &[StampedEvent]) -> Result<(), SinkError> {
        (**self).accept_batch(batch)
    }

    fn accept_owned(&mut self, batch: &mut Vec<StampedEvent>) -> Result<(), SinkError> {
        (**self).accept_owned(batch)
    }

    fn accept_columns(
        &mut self,
        events: &[(ThreadId, ObjectId, OpKind)],
        stamps: &mut Vec<VectorTimestamp>,
    ) -> Result<(), SinkError> {
        (**self).accept_columns(events, stamps)
    }

    fn flush(&mut self) -> Result<(), SinkError> {
        (**self).flush()
    }

    fn events_accepted(&self) -> usize {
        (**self).events_accepted()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        (**self).as_any()
    }
}

/// The in-memory backend: records the interleaving as a [`Computation`] and
/// keeps every timestamp (at its raw stamping width).
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    computation: Computation,
    timestamps: Vec<VectorTimestamp>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The interleaving recorded so far.
    pub fn computation(&self) -> &Computation {
        &self.computation
    }

    /// The timestamps recorded so far, in stamping order, each at the raw
    /// width it was assigned at.
    pub fn timestamps(&self) -> &[VectorTimestamp] {
        &self.timestamps
    }

    /// Consumes the recorder, returning the interleaving and the raw-width
    /// timestamps.
    pub fn into_parts(self) -> (Computation, Vec<VectorTimestamp>) {
        (self.computation, self.timestamps)
    }
}

impl EventSink for MemoryRecorder {
    fn name(&self) -> &str {
        "mem"
    }

    fn accept_batch(&mut self, batch: &[StampedEvent]) -> Result<(), SinkError> {
        self.computation
            .record_ops(batch.iter().map(|e| (e.thread, e.object, e.kind)));
        self.timestamps
            .extend(batch.iter().map(|e| e.timestamp.clone()));
        Ok(())
    }

    fn accept_owned(&mut self, batch: &mut Vec<StampedEvent>) -> Result<(), SinkError> {
        self.computation
            .record_ops(batch.iter().map(|e| (e.thread, e.object, e.kind)));
        self.timestamps.extend(batch.drain(..).map(|e| e.timestamp));
        Ok(())
    }

    fn accept_columns(
        &mut self,
        events: &[(ThreadId, ObjectId, OpKind)],
        stamps: &mut Vec<VectorTimestamp>,
    ) -> Result<(), SinkError> {
        debug_assert_eq!(events.len(), stamps.len());
        self.computation.record_ops(events.iter().copied());
        self.timestamps.append(stamps);
        Ok(())
    }

    fn events_accepted(&self) -> usize {
        self.timestamps.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The persistence backend: streams the interleaving into the
/// `mvc_trace::codec` binary format via a [`StreamEncoder`].
///
/// Timestamps are *not* persisted — the format stores the computation, from
/// which any timestamper can reproduce them deterministically (that is the
/// point of the conformance oracles).  Memory is the encoded bytes.
#[derive(Debug, Clone, Default)]
pub struct CodecSink {
    encoder: StreamEncoder,
}

impl CodecSink {
    /// Creates an empty codec sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encoded body size so far, in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encoder.body_len()
    }

    /// Seals the encoding (magic + count + records); the result decodes with
    /// `mvc_trace::codec::decode` and is byte-identical to encoding the
    /// recorded interleaving in one batch.
    pub fn into_bytes(self) -> bytes::Bytes {
        self.encoder.finish()
    }
}

impl EventSink for CodecSink {
    fn name(&self) -> &str {
        "codec"
    }

    fn accept_batch(&mut self, batch: &[StampedEvent]) -> Result<(), SinkError> {
        for e in batch {
            self.encoder.push(e.thread, e.object, e.kind);
        }
        Ok(())
    }

    fn accept_columns(
        &mut self,
        events: &[(ThreadId, ObjectId, OpKind)],
        stamps: &mut Vec<VectorTimestamp>,
    ) -> Result<(), SinkError> {
        debug_assert_eq!(events.len(), stamps.len());
        for &(thread, object, kind) in events {
            self.encoder.push(thread, object, kind);
        }
        stamps.clear();
        Ok(())
    }

    fn events_accepted(&self) -> usize {
        self.encoder.event_count() as usize
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Aggregate statistics kept by a [`StatsSink`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Total events accepted.
    pub events: usize,
    /// Events per operation kind, indexed `[read, write, acquire, release,
    /// op]`.
    pub per_kind: [usize; 5],
    /// `1 + max thread index` seen (0 if none).
    pub thread_index_bound: usize,
    /// `1 + max object index` seen (0 if none).
    pub object_index_bound: usize,
    /// Widest timestamp seen — the clock-size high-water mark.
    pub max_clock_width: usize,
}

/// The monitoring backend: constant-memory counters over the stamped
/// stream, for services that want visibility without storage.
///
/// The counts live in [`mvc_obs`] counter cells — *detached* ones, so each
/// sink's figures stay exact per instance and keep counting whether or not
/// process-wide metrics are enabled. Call
/// [`bind_metrics`](StatsSink::bind_metrics) to publish the cells into a
/// registry, after which its snapshots report this sink's figures under
/// the `sink.stats.*` names instead of a parallel hand-rolled count.
///
/// Cloning shares the counter cells (clones are views of one sink's
/// counts, matching `mvc_obs` handle semantics); the index bounds and the
/// clock-width high-water mark are plain per-instance fields.
#[derive(Debug, Clone)]
pub struct StatsSink {
    events: mvc_obs::Counter,
    /// Indexed like [`SinkStats::per_kind`]: `[read, write, acquire,
    /// release, op]`.
    per_kind: [mvc_obs::Counter; 5],
    thread_index_bound: usize,
    object_index_bound: usize,
    max_clock_width: usize,
}

/// Registry names for [`StatsSink::bind_metrics`], index-aligned with
/// [`SinkStats::per_kind`] after the leading `events` entry.
const STATS_METRIC_NAMES: [&str; 6] = [
    "sink.stats.events",
    "sink.stats.reads",
    "sink.stats.writes",
    "sink.stats.acquires",
    "sink.stats.releases",
    "sink.stats.ops",
];

impl Default for StatsSink {
    fn default() -> Self {
        Self {
            events: mvc_obs::Counter::detached(),
            per_kind: std::array::from_fn(|_| mvc_obs::Counter::detached()),
            thread_index_bound: 0,
            object_index_bound: 0,
            max_clock_width: 0,
        }
    }
}

fn kind_slot(kind: OpKind) -> usize {
    match kind {
        OpKind::Read => 0,
        OpKind::Write => 1,
        OpKind::Acquire => 2,
        OpKind::Release => 3,
        OpKind::Op => 4,
    }
}

impl StatsSink {
    /// Creates a sink with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters accumulated so far, read out of the shared cells.
    pub fn stats(&self) -> SinkStats {
        SinkStats {
            events: self.events.value() as usize,
            per_kind: std::array::from_fn(|i| self.per_kind[i].value() as usize),
            thread_index_bound: self.thread_index_bound,
            object_index_bound: self.object_index_bound,
            max_clock_width: self.max_clock_width,
        }
    }

    /// Publishes this sink's counter cells into `registry` under the
    /// `sink.stats.*` names (`events`, `reads`, `writes`, `acquires`,
    /// `releases`, `ops`), so registry snapshots report the sink's figures
    /// directly. Re-binding (another sink, same registry) replaces the
    /// previous cells.
    pub fn bind_metrics(&self, registry: &mvc_obs::Registry) {
        registry.adopt_counter(STATS_METRIC_NAMES[0], &self.events);
        for (name, counter) in STATS_METRIC_NAMES[1..].iter().zip(self.per_kind.iter()) {
            registry.adopt_counter(name, counter);
        }
    }
}

impl EventSink for StatsSink {
    fn name(&self) -> &str {
        "stats"
    }

    fn accept_batch(&mut self, batch: &[StampedEvent]) -> Result<(), SinkError> {
        // Tally into locals, hit the shared cells once per batch.
        let mut kinds = [0u64; 5];
        for e in batch {
            kinds[kind_slot(e.kind)] += 1;
            self.thread_index_bound = self.thread_index_bound.max(e.thread.index() + 1);
            self.object_index_bound = self.object_index_bound.max(e.object.index() + 1);
            self.max_clock_width = self.max_clock_width.max(e.timestamp.len());
        }
        self.events.add(batch.len() as u64);
        for (slot, n) in kinds.into_iter().enumerate() {
            if n > 0 {
                self.per_kind[slot].add(n);
            }
        }
        Ok(())
    }

    fn accept_columns(
        &mut self,
        events: &[(ThreadId, ObjectId, OpKind)],
        stamps: &mut Vec<VectorTimestamp>,
    ) -> Result<(), SinkError> {
        debug_assert_eq!(events.len(), stamps.len());
        let mut kinds = [0u64; 5];
        for &(thread, object, kind) in events {
            kinds[kind_slot(kind)] += 1;
            self.thread_index_bound = self.thread_index_bound.max(thread.index() + 1);
            self.object_index_bound = self.object_index_bound.max(object.index() + 1);
        }
        for stamp in stamps.iter() {
            self.max_clock_width = self.max_clock_width.max(stamp.len());
        }
        self.events.add(events.len() as u64);
        for (slot, n) in kinds.into_iter().enumerate() {
            if n > 0 {
                self.per_kind[slot].add(n);
            }
        }
        stamps.clear();
        Ok(())
    }

    fn events_accepted(&self) -> usize {
        self.events.value() as usize
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The fan-out combinator: forwards every batch to each child sink in
/// order.
///
/// A child failure aborts the batch with that child's error.  Children
/// earlier in the list have already accepted it, so the tee remembers how
/// far it got: when the caller re-offers the batch (the retry contract —
/// see [`EventSink::accept_batch`]), delivery resumes at the child that
/// failed instead of duplicating events into the children that already
/// stored them.
pub struct TeeSink {
    children: Vec<Box<dyn EventSink>>,
    events: usize,
    /// Children that accepted the in-flight batch before a later child
    /// refused it; skipped when the identical batch is re-offered.
    accepted_children: usize,
}

impl TeeSink {
    /// Creates a tee over the given children.
    pub fn new(children: Vec<Box<dyn EventSink>>) -> Self {
        Self {
            children,
            events: 0,
            accepted_children: 0,
        }
    }

    /// The child sinks, in fan-out order.
    pub fn children(&self) -> &[Box<dyn EventSink>] {
        &self.children
    }

    /// Consumes the tee, returning the children (to recover per-child
    /// results after a run).
    pub fn into_children(self) -> Vec<Box<dyn EventSink>> {
        self.children
    }
}

impl fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TeeSink")
            .field("children", &self.children.len())
            .field("events", &self.events)
            .finish()
    }
}

impl EventSink for TeeSink {
    fn name(&self) -> &str {
        "tee"
    }

    fn accept_batch(&mut self, batch: &[StampedEvent]) -> Result<(), SinkError> {
        while self.accepted_children < self.children.len() {
            self.children[self.accepted_children].accept_batch(batch)?;
            self.accepted_children += 1;
        }
        self.accepted_children = 0;
        self.events += batch.len();
        Ok(())
    }

    fn flush(&mut self) -> Result<(), SinkError> {
        for child in &mut self.children {
            child.flush()?;
        }
        Ok(())
    }

    fn events_accepted(&self) -> usize {
        self.events
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_trace::codec;

    fn stamped(thread: usize, object: usize, kind: OpKind, stamp: &[u64]) -> StampedEvent {
        StampedEvent {
            thread: ThreadId(thread),
            object: ObjectId(object),
            kind,
            timestamp: VectorTimestamp::from_components(stamp.to_vec()),
        }
    }

    fn sample_batch() -> Vec<StampedEvent> {
        vec![
            stamped(0, 0, OpKind::Write, &[1]),
            stamped(1, 0, OpKind::Read, &[1, 1]),
            stamped(0, 2, OpKind::Acquire, &[2, 1]),
        ]
    }

    #[test]
    fn memory_recorder_keeps_interleaving_and_stamps() {
        let mut sink = MemoryRecorder::new();
        let mut batch = sample_batch();
        let expected: Vec<_> = batch.iter().map(|e| e.timestamp.clone()).collect();
        sink.accept_owned(&mut batch).unwrap();
        assert!(batch.is_empty(), "owned batch is drained");
        assert_eq!(sink.events_accepted(), 3);
        assert_eq!(sink.computation().len(), 3);
        assert_eq!(sink.timestamps(), &expected[..]);
        let (c, ts) = sink.into_parts();
        assert_eq!(c.object_chain(ObjectId(0)).len(), 2);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn memory_recorder_borrowed_and_owned_paths_agree() {
        let batch = sample_batch();
        let mut borrowed = MemoryRecorder::new();
        borrowed.accept_batch(&batch).unwrap();
        let mut owned = MemoryRecorder::new();
        owned.accept_owned(&mut batch.clone()).unwrap();
        assert_eq!(borrowed.computation(), owned.computation());
        assert_eq!(borrowed.timestamps(), owned.timestamps());
    }

    #[test]
    fn codec_sink_output_decodes_to_the_interleaving() {
        let mut sink = CodecSink::new();
        let batch = sample_batch();
        sink.accept_batch(&batch).unwrap();
        sink.accept_batch(&batch).unwrap();
        assert_eq!(sink.events_accepted(), 6);
        assert!(sink.encoded_len() > 0);
        let decoded = codec::decode(&sink.into_bytes()).unwrap();
        assert_eq!(decoded.len(), 6);
        let mut reference = Computation::new();
        for e in batch.iter().chain(batch.iter()) {
            reference.record_op(e.thread, e.object, e.kind);
        }
        assert_eq!(decoded, reference);
    }

    #[test]
    fn stats_sink_counts_without_storing() {
        let mut sink = StatsSink::new();
        sink.accept_batch(&sample_batch()).unwrap();
        let stats = sink.stats();
        assert_eq!(stats.events, 3);
        assert_eq!(stats.per_kind, [1, 1, 1, 0, 0]);
        assert_eq!(stats.thread_index_bound, 2);
        assert_eq!(stats.object_index_bound, 3);
        assert_eq!(stats.max_clock_width, 2);
        assert_eq!(sink.events_accepted(), 3);
        assert_eq!(sink.name(), "stats");
    }

    #[test]
    fn tee_fans_out_to_every_child() {
        let mut tee = TeeSink::new(vec![
            Box::new(MemoryRecorder::new()),
            Box::new(StatsSink::new()),
            Box::new(CodecSink::new()),
        ]);
        let mut batch = sample_batch();
        tee.accept_owned(&mut batch).unwrap();
        assert!(batch.is_empty());
        tee.flush().unwrap();
        assert_eq!(tee.events_accepted(), 3);
        assert_eq!(tee.name(), "tee");
        for child in tee.children() {
            assert_eq!(child.events_accepted(), 3, "{}", child.name());
        }
        assert!(format!("{tee:?}").contains("children"));
    }

    /// A sink that refuses its first `failures` batches, then accepts.
    struct FlakySink {
        failures: usize,
        accepted: usize,
    }

    impl EventSink for FlakySink {
        fn name(&self) -> &str {
            "flaky"
        }

        fn accept_batch(&mut self, batch: &[StampedEvent]) -> Result<(), SinkError> {
            if self.failures > 0 {
                self.failures -= 1;
                return Err(SinkError::Io("transient".into()));
            }
            self.accepted += batch.len();
            Ok(())
        }

        fn events_accepted(&self) -> usize {
            self.accepted
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    #[test]
    fn tee_retry_does_not_duplicate_into_children_that_already_accepted() {
        // Child 0 (mem) accepts, child 1 fails twice, child 2 (stats) is
        // never reached until the retry succeeds.  Re-offering the same
        // batch must deliver it exactly once to every child.
        let mut tee = TeeSink::new(vec![
            Box::new(MemoryRecorder::new()),
            Box::new(FlakySink {
                failures: 2,
                accepted: 0,
            }),
            Box::new(StatsSink::new()),
        ]);
        let mut batch = sample_batch();
        assert!(tee.accept_owned(&mut batch).is_err());
        assert_eq!(batch.len(), 3, "failed batch is left for retry");
        assert!(tee.accept_owned(&mut batch).is_err(), "still flaky");
        tee.accept_owned(&mut batch).unwrap();
        assert!(batch.is_empty());
        assert_eq!(tee.events_accepted(), 3);
        for child in tee.children() {
            assert_eq!(
                child.events_accepted(),
                3,
                "{}: exactly once, no duplication",
                child.name()
            );
        }

        // And the next (new) batch goes to every child again.
        let mut next = sample_batch();
        tee.accept_owned(&mut next).unwrap();
        for child in tee.children() {
            assert_eq!(child.events_accepted(), 6, "{}", child.name());
        }
    }

    #[test]
    fn boxed_sinks_forward_through_the_blanket_impl() {
        let mut sink: Box<dyn EventSink> = Box::new(MemoryRecorder::new());
        let mut batch = sample_batch();
        sink.accept_owned(&mut batch).unwrap();
        sink.flush().unwrap();
        assert_eq!(sink.events_accepted(), 3);
        assert_eq!(sink.name(), "mem");
    }

    #[test]
    fn sink_error_displays_the_source() {
        let err = SinkError::Io("disk full".into());
        assert!(err.to_string().contains("disk full"));
    }
}
