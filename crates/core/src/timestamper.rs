//! The unified timestamping interface.
//!
//! The paper answers one question three ways — *which vector timestamp does
//! this operation get?* — with an offline-optimal batch replay, an
//! incremental engine over a fixed component set, and online mechanisms that
//! grow the component set as the computation reveals itself.  [`Timestamper`]
//! is the streaming-first interface all three share, so harnesses, sessions
//! and benchmarks can drive any of them interchangeably:
//!
//! * [`BatchReplay`] — the paper's batch protocol (Section III-C) replayed
//!   event by event over a component map fixed up front, typically one
//!   computed by the [`OfflineOptimizer`](crate::OfflineOptimizer).  The
//!   clock width never changes; observing an uncovered event is an error.
//! * [`TimestampingEngine`](crate::TimestampingEngine) — the same protocol,
//!   but the component set may be widened between observations; uncovered
//!   events are an error *until* someone adds a component.
//! * `OnlineTimestamper` (in `mvc-online`) — couples the engine with an
//!   online component-selection mechanism, so uncovered events trigger a
//!   mechanism decision instead of an error.
//!
//! **Choosing between them, in the paper's terms:** if the whole computation
//! is known in advance, run the offline optimizer and replay with
//! [`BatchReplay`] — the clock is provably minimal (Theorem 3).  If the
//! component set is known but events arrive one at a time (a replay of a
//! recorded trace, or a deployment whose interaction graph is stable), use
//! the engine.  If nothing is known in advance, an online mechanism must
//! grow the clock as events reveal the thread–object graph, paying the
//! competitive gap of Section IV in exchange for never needing the future.
//!
//! [`replay`] drives a whole [`Computation`] through any timestamper and
//! pads every timestamp to the final clock width so they are mutually
//! comparable — the one loop that previously existed as three private
//! copies.

use std::fmt;

use mvc_clock::{Component, ComponentMap, VectorTimestamp};
use mvc_trace::{Computation, ObjectId, ThreadId};

use crate::engine::EngineError;

/// Errors reported by [`Timestamper::observe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimestampError {
    /// Neither the operation's thread nor its object carries a clock
    /// component, and the timestamper has no way to add one.
    Uncovered {
        /// The thread performing the operation.
        thread: ThreadId,
        /// The object operated on.
        object: ObjectId,
    },
    /// An online mechanism, asked to cover the operation, returned a
    /// component that covers neither endpoint — the operation is still not
    /// timestampable.
    RogueComponent {
        /// The thread performing the operation.
        thread: ThreadId,
        /// The object operated on.
        object: ObjectId,
        /// The unrelated component the mechanism chose.
        component: Component,
    },
}

impl fmt::Display for TimestampError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimestampError::Uncovered { thread, object } => write!(
                f,
                "operation of {thread} on {object} is not covered by any clock component"
            ),
            TimestampError::RogueComponent {
                thread,
                object,
                component,
            } => write!(
                f,
                "mechanism chose {component}, which covers neither {thread} nor {object}"
            ),
        }
    }
}

impl std::error::Error for TimestampError {}

impl From<EngineError> for TimestampError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::UncoveredOperation { thread, object } => {
                TimestampError::Uncovered { thread, object }
            }
        }
    }
}

/// Summary of a timestamping run: how many events were observed and which
/// components the final clock uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimestampReport {
    /// The timestamper's [`name`](Timestamper::name).
    pub name: String,
    /// Number of events successfully observed.
    pub events: usize,
    /// The final component layout of the clock.
    pub components: ComponentMap,
}

impl TimestampReport {
    /// Final clock width (number of components).
    pub fn width(&self) -> usize {
        self.components.len()
    }

    /// Alias for [`width`](Self::width) matching the paper's terminology.
    pub fn clock_size(&self) -> usize {
        self.components.len()
    }

    /// Number of thread components in the final clock.
    pub fn thread_components(&self) -> usize {
        self.components
            .components()
            .iter()
            .filter(|c| matches!(c, Component::Thread(_)))
            .count()
    }

    /// Number of object components in the final clock.
    pub fn object_components(&self) -> usize {
        self.components
            .components()
            .iter()
            .filter(|c| matches!(c, Component::Object(_)))
            .count()
    }
}

/// A streaming timestamping strategy: observes thread–object operations one
/// at a time and assigns each a [`VectorTimestamp`].
///
/// The trait is dyn-compatible, so harnesses can hold a
/// `Box<dyn Timestamper>` chosen at runtime.  Timestamps produced early in a
/// run may be narrower than later ones if the implementation grows its clock;
/// padding a narrow timestamp with zeros (see
/// [`VectorTimestamp::padded_to`]) makes it comparable with wide ones,
/// because a missing component is exactly a counter that was still zero when
/// the timestamp was taken.  [`replay`] does this for a whole computation.
pub trait Timestamper {
    /// A short, stable name for reports.
    fn name(&self) -> &str;

    /// Observes one operation and returns its timestamp.
    ///
    /// # Errors
    ///
    /// Returns a [`TimestampError`] when the operation cannot be covered by
    /// the clock's components.  A failed observation must not count the
    /// event, grow the clock, or advance any vector, so the caller may
    /// recover (e.g. add a component) and retry the same operation.
    fn observe(
        &mut self,
        thread: ThreadId,
        object: ObjectId,
    ) -> Result<VectorTimestamp, TimestampError>;

    /// Observes a batch of operations, appending one timestamp per event to
    /// `out` in event order.
    ///
    /// The default implementation simply loops over [`observe`]; streaming
    /// implementations with a cheaper bulk path (notably the sharded engine,
    /// which fans a batch out across shards) override it.  Drivers that
    /// already hold many events — [`replay`], a batched channel drain — call
    /// this instead of observing one event at a time, so any override is
    /// picked up with zero call-site changes.
    ///
    /// # Errors
    ///
    /// Stops at the first event that cannot be timestamped and returns its
    /// [`TimestampError`].  On error, `out` has grown by exactly the number
    /// of events that were successfully observed (the batch's longest
    /// stampable prefix, all of which count as observed); the failing event
    /// is `events[appended]` and, like a failed [`observe`], has consumed no
    /// state — the caller may recover and resubmit the unprocessed suffix.
    ///
    /// [`observe`]: Timestamper::observe
    fn observe_batch(
        &mut self,
        events: &[(ThreadId, ObjectId)],
        out: &mut Vec<VectorTimestamp>,
    ) -> Result<(), TimestampError> {
        for &(thread, object) in events {
            out.push(self.observe(thread, object)?);
        }
        Ok(())
    }

    /// Current clock width (number of components).
    fn width(&self) -> usize;

    /// Summarises the run so far: events observed and the component layout.
    fn finish(&self) -> TimestampReport;
}

/// Boxed timestampers are timestampers, so pipeline drivers generic over
/// `T: Timestamper` also accept a `Box<dyn Timestamper>` selected at
/// runtime.
impl<T: Timestamper + ?Sized> Timestamper for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn observe(
        &mut self,
        thread: ThreadId,
        object: ObjectId,
    ) -> Result<VectorTimestamp, TimestampError> {
        (**self).observe(thread, object)
    }

    fn observe_batch(
        &mut self,
        events: &[(ThreadId, ObjectId)],
        out: &mut Vec<VectorTimestamp>,
    ) -> Result<(), TimestampError> {
        (**self).observe_batch(events, out)
    }

    fn width(&self) -> usize {
        (**self).width()
    }

    fn finish(&self) -> TimestampReport {
        (**self).finish()
    }
}

/// A whole computation timestamped by one [`Timestamper`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimestampedRun {
    /// Per-event timestamps in append order, all padded to the final clock
    /// width so they are mutually comparable.
    pub timestamps: Vec<VectorTimestamp>,
    /// The timestamper's final report.
    pub report: TimestampReport,
}

/// Replays a whole computation through a timestamper.
///
/// The events are handed to [`Timestamper::observe_batch`] as one batch, so
/// implementations with a bulk fast path (the sharded engine fans the batch
/// out across its shards) are driven at full speed while everything else
/// falls back to per-event observation.  Implementations that grow their
/// clock mid-run hand out raw timestamps of increasing width; the returned
/// timestamps are all padded to the final width (missing components are
/// zero, exactly the value those counters held at the time), so any two of
/// them can be compared directly.
///
/// # Errors
///
/// Propagates the first [`TimestampError`] an observation reports.
pub fn replay<T: Timestamper + ?Sized>(
    timestamper: &mut T,
    computation: &Computation,
) -> Result<TimestampedRun, TimestampError> {
    // Batches big enough to feed any bulk fast path at full speed, small
    // enough that the staging buffer stays O(window) instead of duplicating
    // the whole computation as tuples.
    const WINDOW: usize = 4096;
    let mut raw = Vec::with_capacity(computation.len());
    let mut window = Vec::with_capacity(WINDOW.min(computation.len()));
    let mut events = computation.events().peekable();
    while events.peek().is_some() {
        window.clear();
        window.extend(events.by_ref().take(WINDOW).map(|e| (e.thread, e.object)));
        timestamper.observe_batch(&window, &mut raw)?;
    }
    let width = timestamper.width();
    let timestamps = raw.into_iter().map(|t| t.into_padded_to(width)).collect();
    Ok(TimestampedRun {
        timestamps,
        report: timestamper.finish(),
    })
}

/// The batch replay path as a [`Timestamper`].
///
/// Runs the paper's Section III-C protocol over a component map fixed at
/// construction (typically the minimum vertex cover computed by the
/// [`OfflineOptimizer`](crate::OfflineOptimizer)), one event at a time.  The
/// stream of timestamps is bit-identical to
/// [`MixedVectorClockAssigner::assign`](mvc_clock::MixedVectorClockAssigner)
/// over the same computation — this is the same protocol, decomposed into
/// observations — but uncovered events surface as a [`TimestampError`]
/// instead of a panic, and the width never changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReplay {
    components: ComponentMap,
    thread_clock: Vec<VectorTimestamp>,
    object_clock: Vec<VectorTimestamp>,
    events: usize,
}

impl BatchReplay {
    /// Creates the replay over a fixed component map.
    pub fn new(components: ComponentMap) -> Self {
        Self {
            components,
            thread_clock: Vec::new(),
            object_clock: Vec::new(),
            events: 0,
        }
    }

    /// The component map driving the replay.
    pub fn components(&self) -> &ComponentMap {
        &self.components
    }

    /// Number of events observed so far.
    pub fn events_observed(&self) -> usize {
        self.events
    }
}

fn clock_at(clocks: &mut Vec<VectorTimestamp>, index: usize, width: usize) -> &VectorTimestamp {
    if index >= clocks.len() {
        clocks.resize_with(index + 1, || VectorTimestamp::zeros(width));
    }
    &clocks[index]
}

impl Timestamper for BatchReplay {
    fn name(&self) -> &str {
        "batch-replay"
    }

    fn observe(
        &mut self,
        thread: ThreadId,
        object: ObjectId,
    ) -> Result<VectorTimestamp, TimestampError> {
        let component = self
            .components
            .object_component(object)
            .or_else(|| self.components.thread_component(thread))
            .ok_or(TimestampError::Uncovered { thread, object })?;
        let width = self.components.len();
        let mut v = clock_at(&mut self.thread_clock, thread.index(), width).clone();
        v.merge_max(clock_at(&mut self.object_clock, object.index(), width));
        v.increment(component);
        self.thread_clock[thread.index()] = v.clone();
        self.object_clock[object.index()] = v.clone();
        self.events += 1;
        Ok(v)
    }

    fn width(&self) -> usize {
        self.components.len()
    }

    fn finish(&self) -> TimestampReport {
        TimestampReport {
            name: self.name().to_owned(),
            events: self.events,
            components: self.components.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_clock::TimestampAssigner;
    use mvc_trace::WorkloadBuilder;

    use crate::offline::OfflineOptimizer;

    #[test]
    fn batch_replay_matches_batch_assigner() {
        let c = WorkloadBuilder::new(6, 6).operations(150).seed(21).build();
        let plan = OfflineOptimizer::new().plan_for_computation(&c);
        let batch = plan.assigner().assign(&c);
        let mut replayer = BatchReplay::new(plan.components().clone());
        let run = replay(&mut replayer, &c).unwrap();
        assert_eq!(run.timestamps, batch);
        assert_eq!(run.report.events, c.len());
        assert_eq!(run.report.width(), plan.clock_size());
        assert_eq!(run.report.name, "batch-replay");
    }

    #[test]
    fn batch_replay_rejects_uncovered_event_without_state_change() {
        let mut map = ComponentMap::new();
        map.push(Component::Thread(ThreadId(0)));
        let mut replayer = BatchReplay::new(map);
        replayer.observe(ThreadId(0), ObjectId(0)).unwrap();
        let before = replayer.clone();
        let err = replayer.observe(ThreadId(1), ObjectId(1)).unwrap_err();
        assert!(matches!(err, TimestampError::Uncovered { .. }));
        assert!(err.to_string().contains("T1"));
        assert_eq!(replayer, before, "failed observation must not change state");
        assert_eq!(replayer.events_observed(), 1);
        assert_eq!(replayer.components().len(), 1);
    }

    #[test]
    fn report_counts_component_kinds() {
        let mut map = ComponentMap::new();
        map.push(Component::Thread(ThreadId(0)));
        map.push(Component::Object(ObjectId(4)));
        map.push(Component::Object(ObjectId(5)));
        let report = BatchReplay::new(map).finish();
        assert_eq!(report.width(), 3);
        assert_eq!(report.clock_size(), 3);
        assert_eq!(report.thread_components(), 1);
        assert_eq!(report.object_components(), 2);
        assert_eq!(report.events, 0);
    }

    #[test]
    fn engine_error_converts() {
        let e = EngineError::UncoveredOperation {
            thread: ThreadId(2),
            object: ObjectId(3),
        };
        let t = TimestampError::from(e);
        assert_eq!(
            t,
            TimestampError::Uncovered {
                thread: ThreadId(2),
                object: ObjectId(3),
            }
        );
    }

    #[test]
    fn rogue_component_error_displays_all_parties() {
        let err = TimestampError::RogueComponent {
            thread: ThreadId(1),
            object: ObjectId(2),
            component: Component::Thread(ThreadId(9)),
        };
        let s = err.to_string();
        assert!(s.contains("T9") && s.contains("T1") && s.contains("O2"));
    }

    #[test]
    fn default_observe_batch_appends_prefix_then_stops_at_the_failure() {
        let mut map = ComponentMap::new();
        map.push(Component::Thread(ThreadId(0)));
        let mut replayer = BatchReplay::new(map);
        let events = [
            (ThreadId(0), ObjectId(0)),
            (ThreadId(0), ObjectId(1)),
            (ThreadId(1), ObjectId(2)), // uncovered
            (ThreadId(0), ObjectId(3)),
        ];
        let mut out = Vec::new();
        let err = replayer.observe_batch(&events, &mut out).unwrap_err();
        assert_eq!(
            err,
            TimestampError::Uncovered {
                thread: ThreadId(1),
                object: ObjectId(2),
            }
        );
        assert_eq!(out.len(), 2, "the stampable prefix was appended");
        assert_eq!(replayer.events_observed(), 2, "the suffix consumed nothing");
        assert!(out[0].strictly_less_than(&out[1]));

        // The batch path is bit-identical to observing one event at a time.
        let mut map = ComponentMap::new();
        map.push(Component::Thread(ThreadId(0)));
        let mut single = BatchReplay::new(map);
        let looped: Vec<_> = events[..2]
            .iter()
            .map(|&(t, o)| single.observe(t, o).unwrap())
            .collect();
        assert_eq!(out, looped);
    }

    #[test]
    fn replay_through_dyn_timestamper_works() {
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        c.record(ThreadId(1), ObjectId(0));
        let mut map = ComponentMap::new();
        map.push(Component::Object(ObjectId(0)));
        let mut boxed: Box<dyn Timestamper> = Box::new(BatchReplay::new(map));
        let run = replay(boxed.as_mut(), &c).unwrap();
        assert_eq!(run.timestamps.len(), 2);
        assert!(run.timestamps[0].strictly_less_than(&run.timestamps[1]));
        assert_eq!(boxed.width(), 1);
        assert_eq!(boxed.name(), "batch-replay");
    }
}
