//! The offline optimal algorithm (Algorithm 1 of the paper).
//!
//! Given the full computation (or just its thread–object bipartite graph):
//!
//! 1. compute a maximum matching `M*` with Hopcroft–Karp;
//! 2. convert `M*` into a minimum vertex cover `C*` using the constructive
//!    Kőnig–Egerváry argument (`C* = (T − Z) ∪ (O ∩ Z)` where `Z` is the set
//!    of vertices reachable from unmatched threads via alternating paths);
//! 3. use the threads and objects of `C*` as the components of the mixed
//!    vector clock.
//!
//! The resulting clock is a valid vector clock (Theorem 2) and no valid
//! vector clock built from thread/object components can be smaller
//! (Theorem 3), because any such component set must cover every edge of the
//! bipartite graph.

use serde::{Deserialize, Serialize};

use mvc_clock::{ComponentMap, MixedVectorClockAssigner};
use mvc_graph::{
    cover::minimum_vertex_cover, matching::hopcroft_karp, matching::simple_augmenting,
    BipartiteGraph, GraphStats, VertexCover,
};
use mvc_trace::Computation;

/// Which maximum-matching algorithm the optimizer runs.
///
/// Both produce maximum matchings (and therefore identical cover sizes); the
/// option exists so the benchmarks can compare their running times, mirroring
/// the paper's reference to Hopcroft–Karp as "one simple and efficient"
/// choice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchingAlgorithm {
    /// Hopcroft–Karp, `O(E √V)` — the paper's choice and the default.
    #[default]
    HopcroftKarp,
    /// Single augmenting path per left vertex, `O(V · E)`.
    SimpleAugmenting,
}

/// The algorithmic output of Algorithm 1 on a *borrowed* graph: matching
/// size, minimum cover, and the component layout of the mixed vector clock.
///
/// This is the allocation-light sibling of [`OfflinePlan`]: it does not take
/// ownership of (or clone) the analysed graph, so per-prefix or per-trial
/// sweeps that only need sizes can call [`OfflineOptimizer::solve`] in a loop
/// without copying the graph every time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfflineSolution {
    matching_size: usize,
    cover: VertexCover,
    components: ComponentMap,
}

impl OfflineSolution {
    /// Size of the maximum matching (equals the cover size by
    /// Kőnig–Egerváry).
    pub fn matching_size(&self) -> usize {
        self.matching_size
    }

    /// The minimum vertex cover: the chosen threads and objects.
    pub fn cover(&self) -> &VertexCover {
        &self.cover
    }

    /// The component layout of the mixed vector clock.
    pub fn components(&self) -> &ComponentMap {
        &self.components
    }

    /// Number of components of the optimal mixed vector clock.
    pub fn clock_size(&self) -> usize {
        self.components.len()
    }

    /// Attaches the analysed graph, upgrading to a full [`OfflinePlan`].
    pub fn into_plan(self, graph: BipartiteGraph) -> OfflinePlan {
        OfflinePlan {
            graph,
            matching_size: self.matching_size,
            cover: self.cover,
            components: self.components,
        }
    }
}

/// The output of the offline optimizer: the graph it analysed, the optimal
/// cover, and the component layout of the resulting mixed vector clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfflinePlan {
    graph: BipartiteGraph,
    matching_size: usize,
    cover: VertexCover,
    components: ComponentMap,
}

impl OfflinePlan {
    /// The thread–object bipartite graph the plan was computed from.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Size of the maximum matching (equals the cover size by
    /// Kőnig–Egerváry).
    pub fn matching_size(&self) -> usize {
        self.matching_size
    }

    /// The minimum vertex cover: the chosen threads and objects.
    pub fn cover(&self) -> &VertexCover {
        &self.cover
    }

    /// The component layout of the mixed vector clock.
    pub fn components(&self) -> &ComponentMap {
        &self.components
    }

    /// Number of components of the optimal mixed vector clock.
    pub fn clock_size(&self) -> usize {
        self.components.len()
    }

    /// Size of the best traditional (single-sided) clock for this graph:
    /// `min(active threads, active objects)`.
    pub fn naive_clock_size(&self) -> usize {
        GraphStats::of(&self.graph).naive_clock_size()
    }

    /// How many components the optimal mixed clock saves over the best
    /// traditional clock.
    pub fn savings(&self) -> usize {
        self.naive_clock_size().saturating_sub(self.clock_size())
    }

    /// Builds the timestamp assigner for this plan.
    pub fn assigner(&self) -> MixedVectorClockAssigner {
        MixedVectorClockAssigner::new(self.components.clone())
    }

    /// Builds the streaming [`Timestamper`](crate::Timestamper) replaying the
    /// batch protocol over this plan's components.
    pub fn timestamper(&self) -> crate::BatchReplay {
        crate::BatchReplay::new(self.components.clone())
    }
}

/// The offline optimizer: computes an [`OfflinePlan`] for a computation or a
/// pre-built thread–object graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OfflineOptimizer {
    algorithm: MatchingAlgorithm,
}

impl OfflineOptimizer {
    /// Creates an optimizer using Hopcroft–Karp matching.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an optimizer using the given matching algorithm.
    pub fn with_algorithm(algorithm: MatchingAlgorithm) -> Self {
        Self { algorithm }
    }

    /// The matching algorithm this optimizer runs.
    pub fn algorithm(&self) -> MatchingAlgorithm {
        self.algorithm
    }

    /// Runs Algorithm 1 on the thread–object graph of a computation.
    pub fn plan_for_computation(&self, computation: &Computation) -> OfflinePlan {
        self.plan_for_graph(computation.bipartite_graph())
    }

    /// Runs Algorithm 1 on a pre-built thread–object graph, taking ownership
    /// of the graph so the plan can report graph-derived statistics.
    ///
    /// Callers that only need the sizes/cover of a graph they keep should
    /// use the borrowing [`solve`](Self::solve) instead of cloning.
    pub fn plan_for_graph(&self, graph: BipartiteGraph) -> OfflinePlan {
        self.solve(&graph).into_plan(graph)
    }

    /// Runs Algorithm 1 on a *borrowed* graph: the borrow path for callers
    /// that keep (or immediately discard) the graph and must not pay a
    /// clone per call — per-trial sweeps, benchmarks, prefix recomputes.
    pub fn solve(&self, graph: &BipartiteGraph) -> OfflineSolution {
        let matching = match self.algorithm {
            MatchingAlgorithm::HopcroftKarp => hopcroft_karp(graph),
            MatchingAlgorithm::SimpleAugmenting => simple_augmenting(graph),
        };
        let cover = minimum_vertex_cover(graph, &matching);
        let components = ComponentMap::from_cover(&cover);
        OfflineSolution {
            matching_size: matching.size(),
            cover,
            components,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_clock::validate::satisfies_vector_clock_condition;
    use mvc_clock::TimestampAssigner;
    use mvc_graph::{GraphScenario, RandomGraphBuilder};
    use mvc_trace::examples::paper_figure1;
    use mvc_trace::{ObjectId, ThreadId, WorkloadBuilder, WorkloadKind};
    use proptest::prelude::*;

    #[test]
    fn empty_computation_plan() {
        let plan = OfflineOptimizer::new().plan_for_computation(&Computation::new());
        assert_eq!(plan.clock_size(), 0);
        assert_eq!(plan.matching_size(), 0);
        assert_eq!(plan.naive_clock_size(), 0);
        assert_eq!(plan.savings(), 0);
        assert!(plan.cover().is_empty());
    }

    #[test]
    fn figure1_plan_matches_paper() {
        let plan = OfflineOptimizer::new().plan_for_computation(&paper_figure1());
        assert_eq!(plan.clock_size(), 3);
        assert_eq!(plan.matching_size(), 3);
        assert_eq!(
            plan.naive_clock_size(),
            4,
            "4 threads and 4 objects are active"
        );
        assert_eq!(plan.savings(), 1);
        // T2 (thread index 1) and O3 (object index 2) are in every minimum cover.
        assert!(plan.cover().contains_left(1));
        assert!(plan.cover().contains_right(2));
    }

    #[test]
    fn both_matching_algorithms_give_same_cover_size() {
        for seed in 0..10 {
            let g = RandomGraphBuilder::new(40, 40)
                .density(0.08)
                .scenario(GraphScenario::default_nonuniform())
                .seed(seed)
                .build();
            let hk = OfflineOptimizer::with_algorithm(MatchingAlgorithm::HopcroftKarp)
                .plan_for_graph(g.clone());
            let simple = OfflineOptimizer::with_algorithm(MatchingAlgorithm::SimpleAugmenting)
                .plan_for_graph(g);
            assert_eq!(hk.clock_size(), simple.clock_size());
            assert_eq!(
                OfflineOptimizer::new().algorithm(),
                MatchingAlgorithm::HopcroftKarp
            );
        }
    }

    #[test]
    fn plan_clock_size_never_exceeds_naive() {
        for seed in 0..20 {
            let c = WorkloadBuilder::new(12, 20)
                .operations(200)
                .kind(WorkloadKind::Nonuniform {
                    hot_fraction: 0.2,
                    hot_boost: 6.0,
                })
                .seed(seed)
                .build();
            let plan = OfflineOptimizer::new().plan_for_computation(&c);
            assert!(plan.clock_size() <= plan.naive_clock_size());
            assert_eq!(plan.savings(), plan.naive_clock_size() - plan.clock_size());
        }
    }

    #[test]
    fn skewed_sparse_graphs_save_significantly() {
        // The headline of the evaluation: on sparse, skewed computations the
        // optimal cover is well below min(n, m), because a few popular threads
        // and objects cover most interactions.
        let c = WorkloadBuilder::new(50, 50)
            .operations(200)
            .kind(WorkloadKind::Nonuniform {
                hot_fraction: 0.1,
                hot_boost: 12.0,
            })
            .seed(7)
            .build();
        let plan = OfflineOptimizer::new().plan_for_computation(&c);
        assert!(
            plan.clock_size() < plan.naive_clock_size(),
            "expected savings on a sparse skewed computation: {} vs {}",
            plan.clock_size(),
            plan.naive_clock_size()
        );
    }

    #[test]
    fn solve_borrow_path_agrees_with_plan() {
        for seed in 0..5 {
            let g = RandomGraphBuilder::new(30, 30)
                .density(0.1)
                .scenario(GraphScenario::default_nonuniform())
                .seed(seed)
                .build();
            let solution = OfflineOptimizer::new().solve(&g);
            let plan = OfflineOptimizer::new().plan_for_graph(g.clone());
            assert_eq!(solution.clock_size(), plan.clock_size());
            assert_eq!(solution.matching_size(), plan.matching_size());
            assert_eq!(solution.cover(), plan.cover());
            assert_eq!(solution.components(), plan.components());
            assert_eq!(solution.into_plan(g), plan, "into_plan upgrades losslessly");
        }
    }

    #[test]
    fn single_pair_plan() {
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        let plan = OfflineOptimizer::new().plan_for_computation(&c);
        assert_eq!(plan.clock_size(), 1);
        let stamps = plan.assigner().assign(&c);
        assert_eq!(stamps[0].as_slice(), &[1]);
    }

    proptest! {
        /// End-to-end Theorem 2: the plan's mixed clock is always a valid vector
        /// clock on random workloads.
        #[test]
        fn prop_plan_produces_valid_clock(
            threads in 1usize..8,
            objects in 1usize..8,
            ops in 1usize..100,
            seed in 0u64..200,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let plan = OfflineOptimizer::new().plan_for_computation(&c);
            let stamps = plan.assigner().assign(&c);
            let oracle = c.causality_oracle();
            prop_assert!(satisfies_vector_clock_condition(&c, &stamps, &oracle));
        }

        /// Kőnig–Egerváry inside the plan: cover size always equals matching size
        /// and never exceeds the naive clock size.
        #[test]
        fn prop_plan_sizes(
            n_left in 1usize..40,
            n_right in 1usize..40,
            density in 0.0f64..0.5,
            seed in 0u64..300,
        ) {
            let g = RandomGraphBuilder::new(n_left, n_right).density(density).seed(seed).build();
            let plan = OfflineOptimizer::new().plan_for_graph(g);
            prop_assert_eq!(plan.clock_size(), plan.matching_size());
            prop_assert!(plan.clock_size() <= plan.naive_clock_size());
        }
    }
}
