//! The incremental timestamping engine.
//!
//! [`TimestampingEngine`] maintains the per-thread and per-object mixed
//! vectors of the paper's protocol and timestamps operations *as they are
//! observed*, one at a time.  Unlike the batch
//! [`MixedVectorClockAssigner`](mvc_clock::MixedVectorClockAssigner) it
//! supports **growing the component set while the computation is running**,
//! which is exactly what the online mechanisms of `mvc-online` need: when a
//! new event is not covered by the current components, the mechanism picks a
//! new component (the event's thread or object) and the engine widens every
//! vector transparently (new components start at zero, which is always safe
//! because no past event incremented them).

use std::fmt;

use mvc_clock::{Component, ComponentMap, VectorTimestamp};
use mvc_trace::{ObjectId, ThreadId};

/// Errors reported by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An operation's thread and object both lack a component, so the event
    /// cannot be timestamped without first adding a component.
    UncoveredOperation {
        /// The thread performing the operation.
        thread: ThreadId,
        /// The object operated on.
        object: ObjectId,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UncoveredOperation { thread, object } => write!(
                f,
                "operation of {thread} on {object} is not covered by any clock component"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Incremental mixed-vector-clock engine.
///
/// ```
/// use mvc_core::TimestampingEngine;
/// use mvc_clock::Component;
/// use mvc_trace::{ThreadId, ObjectId};
///
/// let mut engine = TimestampingEngine::new();
/// engine.add_component(Component::Thread(ThreadId(0)));
/// let a = engine.observe(ThreadId(0), ObjectId(7)).unwrap();
/// let b = engine.observe(ThreadId(0), ObjectId(8)).unwrap();
/// assert!(a.strictly_less_than(&b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimestampingEngine {
    components: ComponentMap,
    thread_clock: Vec<Vec<u64>>,
    object_clock: Vec<Vec<u64>>,
    events_observed: usize,
}

impl TimestampingEngine {
    /// Creates an engine with no components (every observation will fail
    /// until components are added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine pre-loaded with a component map (e.g. one computed
    /// by the offline optimizer for a replay).
    pub fn with_components(components: ComponentMap) -> Self {
        Self {
            components,
            ..Self::default()
        }
    }

    /// The current component map.
    pub fn components(&self) -> &ComponentMap {
        &self.components
    }

    /// Current clock width (number of components).
    pub fn width(&self) -> usize {
        self.components.len()
    }

    /// Number of operations observed so far.
    pub fn events_observed(&self) -> usize {
        self.events_observed
    }

    /// Adds a component (if not already present), returning its index.
    ///
    /// Existing per-thread / per-object vectors are logically padded with a
    /// zero for the new component; padding is materialised lazily.
    pub fn add_component(&mut self, component: Component) -> usize {
        self.components.push(component)
    }

    /// Returns `true` if an operation of `thread` on `object` could be
    /// timestamped right now (at least one endpoint has a component).
    pub fn covers(&self, thread: ThreadId, object: ObjectId) -> bool {
        self.components.contains_thread(thread) || self.components.contains_object(object)
    }

    /// Observes one operation and returns its timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UncoveredOperation`] when neither the thread
    /// nor the object carries a component.  The engine state is left
    /// unchanged in that case, so the caller may add a component and retry
    /// the same operation.
    pub fn observe(
        &mut self,
        thread: ThreadId,
        object: ObjectId,
    ) -> Result<VectorTimestamp, EngineError> {
        let component = self
            .components
            .object_component(object)
            .or_else(|| self.components.thread_component(thread))
            .ok_or(EngineError::UncoveredOperation { thread, object })?;

        let width = self.components.len();
        grow(&mut self.thread_clock, thread.index());
        grow(&mut self.object_clock, object.index());

        let mut v = merged(
            &self.thread_clock[thread.index()],
            &self.object_clock[object.index()],
            width,
        );
        v[component] += 1;

        self.thread_clock[thread.index()] = v.clone();
        self.object_clock[object.index()] = v.clone();
        self.events_observed += 1;
        Ok(VectorTimestamp::from_components(v))
    }

    /// The current clock of a thread, padded to the current width.
    pub fn thread_clock(&self, thread: ThreadId) -> VectorTimestamp {
        padded(self.thread_clock.get(thread.index()), self.width())
    }

    /// The current clock of an object, padded to the current width.
    pub fn object_clock(&self, object: ObjectId) -> VectorTimestamp {
        padded(self.object_clock.get(object.index()), self.width())
    }
}

impl crate::timestamper::Timestamper for TimestampingEngine {
    fn name(&self) -> &str {
        "timestamping-engine"
    }

    /// Observes one operation, like [`TimestampingEngine::observe`], but with
    /// the error mapped into the unified
    /// [`TimestampError`](crate::timestamper::TimestampError).
    fn observe(
        &mut self,
        thread: ThreadId,
        object: ObjectId,
    ) -> Result<VectorTimestamp, crate::timestamper::TimestampError> {
        TimestampingEngine::observe(self, thread, object).map_err(Into::into)
    }

    fn width(&self) -> usize {
        TimestampingEngine::width(self)
    }

    fn finish(&self) -> crate::timestamper::TimestampReport {
        crate::timestamper::TimestampReport {
            name: "timestamping-engine".to_owned(),
            events: self.events_observed,
            components: self.components.clone(),
        }
    }
}

fn grow(clocks: &mut Vec<Vec<u64>>, index: usize) {
    if index >= clocks.len() {
        clocks.resize_with(index + 1, Vec::new);
    }
}

fn merged(a: &[u64], b: &[u64], width: usize) -> Vec<u64> {
    (0..width)
        .map(|i| {
            a.get(i)
                .copied()
                .unwrap_or(0)
                .max(b.get(i).copied().unwrap_or(0))
        })
        .collect()
}

fn padded(v: Option<&Vec<u64>>, width: usize) -> VectorTimestamp {
    VectorTimestamp::from_components(v.cloned().unwrap_or_default()).padded_to(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_clock::validate::satisfies_vector_clock_condition;
    use mvc_clock::TimestampAssigner;
    use mvc_trace::{Computation, WorkloadBuilder};
    use proptest::prelude::*;

    use crate::offline::OfflineOptimizer;

    #[test]
    fn empty_engine_rejects_everything() {
        let mut e = TimestampingEngine::new();
        assert_eq!(e.width(), 0);
        assert!(!e.covers(ThreadId(0), ObjectId(0)));
        let err = e.observe(ThreadId(0), ObjectId(0)).unwrap_err();
        assert!(matches!(err, EngineError::UncoveredOperation { .. }));
        assert!(err.to_string().contains("T0"));
        assert_eq!(e.events_observed(), 0, "failed observation must not count");
    }

    #[test]
    fn single_thread_component_counts_its_operations() {
        let mut e = TimestampingEngine::new();
        e.add_component(Component::Thread(ThreadId(0)));
        let a = e.observe(ThreadId(0), ObjectId(5)).unwrap();
        let b = e.observe(ThreadId(0), ObjectId(9)).unwrap();
        assert_eq!(a.as_slice(), &[1]);
        assert_eq!(b.as_slice(), &[2]);
        assert_eq!(e.events_observed(), 2);
        assert_eq!(e.thread_clock(ThreadId(0)).as_slice(), &[2]);
        assert_eq!(e.object_clock(ObjectId(9)).as_slice(), &[2]);
        assert_eq!(e.object_clock(ObjectId(42)).as_slice(), &[0]);
    }

    #[test]
    fn adding_component_widens_existing_clocks() {
        let mut e = TimestampingEngine::new();
        e.add_component(Component::Thread(ThreadId(0)));
        e.observe(ThreadId(0), ObjectId(0)).unwrap();
        // New component appears mid-stream.
        e.add_component(Component::Object(ObjectId(1)));
        assert_eq!(e.width(), 2);
        let t = e.observe(ThreadId(2), ObjectId(1)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.as_slice(), &[0, 1]);
        // The older thread's clock reads back padded to the new width.
        assert_eq!(e.thread_clock(ThreadId(0)).as_slice(), &[1, 0]);
    }

    #[test]
    fn adding_duplicate_component_is_idempotent() {
        let mut e = TimestampingEngine::new();
        let a = e.add_component(Component::Object(ObjectId(3)));
        let b = e.add_component(Component::Object(ObjectId(3)));
        assert_eq!(a, b);
        assert_eq!(e.width(), 1);
    }

    #[test]
    fn object_component_preferred_like_batch_assigner() {
        // Replaying a computation through the engine with a fixed component map
        // must give exactly the same stamps as the batch assigner.
        let c = WorkloadBuilder::new(6, 6).operations(120).seed(42).build();
        let plan = OfflineOptimizer::new().plan_for_computation(&c);
        let batch = plan.assigner().assign(&c);
        let mut engine = TimestampingEngine::with_components(plan.components().clone());
        let streamed: Vec<_> = c
            .events()
            .map(|e| engine.observe(e.thread, e.object).unwrap())
            .collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn failed_observation_leaves_state_unchanged() {
        let mut e = TimestampingEngine::new();
        e.add_component(Component::Thread(ThreadId(0)));
        e.observe(ThreadId(0), ObjectId(0)).unwrap();
        let before = e.clone();
        assert!(e.observe(ThreadId(1), ObjectId(1)).is_err());
        assert_eq!(e, before);
    }

    #[test]
    fn covers_reflects_components() {
        let mut e = TimestampingEngine::new();
        e.add_component(Component::Object(ObjectId(2)));
        assert!(e.covers(ThreadId(9), ObjectId(2)));
        assert!(!e.covers(ThreadId(9), ObjectId(3)));
    }

    proptest! {
        /// Streaming through the engine with components chosen by the offline
        /// optimizer yields a valid vector clock, identical to the batch path.
        #[test]
        fn prop_engine_matches_batch_and_is_valid(
            threads in 1usize..7,
            objects in 1usize..7,
            ops in 1usize..80,
            seed in 0u64..150,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let plan = OfflineOptimizer::new().plan_for_computation(&c);
            let mut engine = TimestampingEngine::with_components(plan.components().clone());
            let streamed: Vec<_> = c
                .events()
                .map(|e| engine.observe(e.thread, e.object).unwrap())
                .collect();
            prop_assert_eq!(&streamed, &plan.assigner().assign(&c));
            let oracle = c.causality_oracle();
            prop_assert!(satisfies_vector_clock_condition(&c, &streamed, &oracle));
            prop_assert_eq!(engine.events_observed(), c.len());
            let _ = Computation::new();
        }
    }
}
