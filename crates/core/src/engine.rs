//! The incremental timestamping engine.
//!
//! [`TimestampingEngine`] maintains the per-thread and per-object mixed
//! vectors of the paper's protocol and timestamps operations *as they are
//! observed*, one at a time.  Unlike the batch
//! [`MixedVectorClockAssigner`](mvc_clock::MixedVectorClockAssigner) it
//! supports **growing the component set while the computation is running**,
//! which is exactly what the online mechanisms of `mvc-online` need: when a
//! new event is not covered by the current components, the mechanism picks a
//! new component (the event's thread or object) and the engine widens every
//! vector transparently (new components start at zero, which is always safe
//! because no past event incremented them).

//! The engine's working format is *chunked* by default (see
//! [`mvc_clock::chunked`]): per-thread / per-object rows are stored in fixed
//! 64-entry chunks with a nonzero-chunk bitmap, the protocol step mutates
//! both rows in place (write-back, no full-width clone), and only the
//! emitted stamp is dense.  [`StampFormat::Dense`] keeps plain `Vec<u64>`
//! rows — same write-back discipline, but every merge walks the full width —
//! and exists as the measured baseline for the wide-clock bench and the
//! chunked-equals-dense conformance oracle.

use std::fmt;

use mvc_clock::chunked::{self, ChunkedRow};
use mvc_clock::{Component, ComponentMap, VectorTimestamp};
use mvc_trace::{ObjectId, ThreadId};

/// Errors reported by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An operation's thread and object both lack a component, so the event
    /// cannot be timestamped without first adding a component.
    UncoveredOperation {
        /// The thread performing the operation.
        thread: ThreadId,
        /// The object operated on.
        object: ObjectId,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UncoveredOperation { thread, object } => write!(
                f,
                "operation of {thread} on {object} is not covered by any clock component"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Incremental mixed-vector-clock engine.
///
/// ```
/// use mvc_core::TimestampingEngine;
/// use mvc_clock::Component;
/// use mvc_trace::{ThreadId, ObjectId};
///
/// let mut engine = TimestampingEngine::new();
/// engine.add_component(Component::Thread(ThreadId(0)));
/// let a = engine.observe(ThreadId(0), ObjectId(7)).unwrap();
/// let b = engine.observe(ThreadId(0), ObjectId(8)).unwrap();
/// assert!(a.strictly_less_than(&b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimestampingEngine {
    components: ComponentMap,
    rows: RowStore,
    events_observed: usize,
}

/// How a [`TimestampingEngine`] stores its per-thread / per-object rows.
///
/// The stamps are bit-for-bit identical either way (conformance oracle 10);
/// only per-event cost differs.  The format is part of the engine's
/// identity: engines with different formats never compare equal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StampFormat {
    /// Plain `Vec<u64>` rows; every merge and write-back walks the full
    /// clock width.  The measured baseline for the wide-clock bench.
    Dense,
    /// Chunked rows ([`mvc_clock::ChunkedRow`]): merges, increments, and
    /// write-backs skip all-zero 64-entry chunks, so per-event cost tracks
    /// the number of *touched* chunks, not the clock width.
    #[default]
    Chunked,
}

/// The format-selected row tables.  Both variants use write-back updates:
/// the protocol step mutates the two rows in place and emits one owned
/// dense stamp — no per-event full-width row clone.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RowStore {
    Dense {
        threads: Vec<Vec<u64>>,
        objects: Vec<Vec<u64>>,
    },
    Chunked {
        threads: Vec<ChunkedRow>,
        objects: Vec<ChunkedRow>,
    },
}

impl Default for RowStore {
    fn default() -> Self {
        RowStore::new(StampFormat::default())
    }
}

impl RowStore {
    fn new(format: StampFormat) -> Self {
        match format {
            StampFormat::Dense => RowStore::Dense {
                threads: Vec::new(),
                objects: Vec::new(),
            },
            StampFormat::Chunked => RowStore::Chunked {
                threads: Vec::new(),
                objects: Vec::new(),
            },
        }
    }

    fn format(&self) -> StampFormat {
        match self {
            RowStore::Dense { .. } => StampFormat::Dense,
            RowStore::Chunked { .. } => StampFormat::Chunked,
        }
    }
}

impl TimestampingEngine {
    /// Creates an engine with no components (every observation will fail
    /// until components are added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine pre-loaded with a component map (e.g. one computed
    /// by the offline optimizer for a replay).
    pub fn with_components(components: ComponentMap) -> Self {
        Self {
            components,
            ..Self::default()
        }
    }

    /// Creates an engine with an explicit row [`StampFormat`].
    ///
    /// The default ([`StampFormat::Chunked`]) is right for every workload;
    /// [`StampFormat::Dense`] exists as the wide-clock bench baseline and
    /// for the chunked-equals-dense conformance oracle.
    pub fn with_format(components: ComponentMap, format: StampFormat) -> Self {
        Self {
            components,
            rows: RowStore::new(format),
            events_observed: 0,
        }
    }

    /// The row format this engine stores its clocks in.
    pub fn format(&self) -> StampFormat {
        self.rows.format()
    }

    /// Mean fraction of nonzero 64-entry chunks across every materialised
    /// row — the measured sparsity the wide-clock bench reports.  `None`
    /// for a [`StampFormat::Dense`] engine (which has no chunk bitmap),
    /// `Some(0.0)` before any row is touched.
    pub fn chunk_occupancy(&self) -> Option<f64> {
        match &self.rows {
            RowStore::Dense { .. } => None,
            RowStore::Chunked { threads, objects } => {
                let rows = threads
                    .iter()
                    .chain(objects)
                    .filter(|r| r.chunk_count() > 0);
                let (mut sum, mut n) = (0.0, 0usize);
                for row in rows {
                    sum += row.occupancy();
                    n += 1;
                }
                Some(if n == 0 { 0.0 } else { sum / n as f64 })
            }
        }
    }

    /// The current component map.
    pub fn components(&self) -> &ComponentMap {
        &self.components
    }

    /// Current clock width (number of components).
    pub fn width(&self) -> usize {
        self.components.len()
    }

    /// Number of operations observed so far.
    pub fn events_observed(&self) -> usize {
        self.events_observed
    }

    /// Adds a component (if not already present), returning its index.
    ///
    /// Existing per-thread / per-object vectors are logically padded with a
    /// zero for the new component; padding is materialised lazily.
    pub fn add_component(&mut self, component: Component) -> usize {
        self.components.push(component)
    }

    /// Returns `true` if an operation of `thread` on `object` could be
    /// timestamped right now (at least one endpoint has a component).
    pub fn covers(&self, thread: ThreadId, object: ObjectId) -> bool {
        self.components.contains_thread(thread) || self.components.contains_object(object)
    }

    /// Observes one operation and returns its timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UncoveredOperation`] when neither the thread
    /// nor the object carries a component.  The engine state is left
    /// unchanged in that case, so the caller may add a component and retry
    /// the same operation.
    pub fn observe(
        &mut self,
        thread: ThreadId,
        object: ObjectId,
    ) -> Result<VectorTimestamp, EngineError> {
        let component = self
            .components
            .object_component(object)
            .or_else(|| self.components.thread_component(thread))
            .ok_or(EngineError::UncoveredOperation { thread, object })?;

        let width = self.components.len();
        let (t, o) = (thread.index(), object.index());
        // Write-back step, either format: mutate both rows in place, emit
        // one owned dense stamp.  (The thread and object tables are
        // distinct, so the two row borrows never alias.)
        let v = match &mut self.rows {
            RowStore::Dense { threads, objects } => {
                grow_dense(threads, t, width);
                grow_dense(objects, o, width);
                let (trow, orow) = (&mut threads[t], &mut objects[o]);
                for (tk, &ok) in trow.iter_mut().zip(orow.iter()) {
                    if ok > *tk {
                        *tk = ok;
                    }
                }
                trow[component] += 1;
                orow.copy_from_slice(trow);
                trow.clone()
            }
            RowStore::Chunked { threads, objects } => {
                grow_rows(threads, t);
                grow_rows(objects, o);
                chunked::step(&mut threads[t], &mut objects[o], component, width)
            }
        };
        self.events_observed += 1;
        Ok(VectorTimestamp::from_components(v))
    }

    /// The current clock of a thread, padded to the current width.
    pub fn thread_clock(&self, thread: ThreadId) -> VectorTimestamp {
        let width = self.width();
        match &self.rows {
            RowStore::Dense { threads, .. } => padded(threads.get(thread.index()), width),
            RowStore::Chunked { threads, .. } => chunk_padded(threads.get(thread.index()), width),
        }
    }

    /// The current clock of an object, padded to the current width.
    pub fn object_clock(&self, object: ObjectId) -> VectorTimestamp {
        let width = self.width();
        match &self.rows {
            RowStore::Dense { objects, .. } => padded(objects.get(object.index()), width),
            RowStore::Chunked { objects, .. } => chunk_padded(objects.get(object.index()), width),
        }
    }
}

impl crate::timestamper::Timestamper for TimestampingEngine {
    fn name(&self) -> &str {
        "timestamping-engine"
    }

    /// Observes one operation, like [`TimestampingEngine::observe`], but with
    /// the error mapped into the unified
    /// [`TimestampError`](crate::timestamper::TimestampError).
    fn observe(
        &mut self,
        thread: ThreadId,
        object: ObjectId,
    ) -> Result<VectorTimestamp, crate::timestamper::TimestampError> {
        TimestampingEngine::observe(self, thread, object).map_err(Into::into)
    }

    fn width(&self) -> usize {
        TimestampingEngine::width(self)
    }

    fn finish(&self) -> crate::timestamper::TimestampReport {
        crate::timestamper::TimestampReport {
            name: "timestamping-engine".to_owned(),
            events: self.events_observed,
            components: self.components.clone(),
        }
    }
}

/// Ensures `clocks[index]` exists and holds `width` counters (new entries
/// are zero: a component no past event incremented).
fn grow_dense(clocks: &mut Vec<Vec<u64>>, index: usize, width: usize) {
    if index >= clocks.len() {
        clocks.resize_with(index + 1, Vec::new);
    }
    let row = &mut clocks[index];
    if row.len() < width {
        row.resize(width, 0);
    }
}

fn grow_rows(clocks: &mut Vec<ChunkedRow>, index: usize) {
    if index >= clocks.len() {
        clocks.resize_with(index + 1, ChunkedRow::new);
    }
}

fn padded(v: Option<&Vec<u64>>, width: usize) -> VectorTimestamp {
    VectorTimestamp::from_components(v.cloned().unwrap_or_default()).padded_to(width)
}

fn chunk_padded(row: Option<&ChunkedRow>, width: usize) -> VectorTimestamp {
    match row {
        Some(row) => VectorTimestamp::from_components(row.to_dense(width)),
        None => VectorTimestamp::zeros(width),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_clock::validate::satisfies_vector_clock_condition;
    use mvc_clock::TimestampAssigner;
    use mvc_trace::{Computation, WorkloadBuilder};
    use proptest::prelude::*;

    use crate::offline::OfflineOptimizer;

    #[test]
    fn empty_engine_rejects_everything() {
        let mut e = TimestampingEngine::new();
        assert_eq!(e.width(), 0);
        assert!(!e.covers(ThreadId(0), ObjectId(0)));
        let err = e.observe(ThreadId(0), ObjectId(0)).unwrap_err();
        assert!(matches!(err, EngineError::UncoveredOperation { .. }));
        assert!(err.to_string().contains("T0"));
        assert_eq!(e.events_observed(), 0, "failed observation must not count");
    }

    #[test]
    fn single_thread_component_counts_its_operations() {
        let mut e = TimestampingEngine::new();
        e.add_component(Component::Thread(ThreadId(0)));
        let a = e.observe(ThreadId(0), ObjectId(5)).unwrap();
        let b = e.observe(ThreadId(0), ObjectId(9)).unwrap();
        assert_eq!(a.as_slice(), &[1]);
        assert_eq!(b.as_slice(), &[2]);
        assert_eq!(e.events_observed(), 2);
        assert_eq!(e.thread_clock(ThreadId(0)).as_slice(), &[2]);
        assert_eq!(e.object_clock(ObjectId(9)).as_slice(), &[2]);
        assert_eq!(e.object_clock(ObjectId(42)).as_slice(), &[0]);
    }

    #[test]
    fn adding_component_widens_existing_clocks() {
        let mut e = TimestampingEngine::new();
        e.add_component(Component::Thread(ThreadId(0)));
        e.observe(ThreadId(0), ObjectId(0)).unwrap();
        // New component appears mid-stream.
        e.add_component(Component::Object(ObjectId(1)));
        assert_eq!(e.width(), 2);
        let t = e.observe(ThreadId(2), ObjectId(1)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.as_slice(), &[0, 1]);
        // The older thread's clock reads back padded to the new width.
        assert_eq!(e.thread_clock(ThreadId(0)).as_slice(), &[1, 0]);
    }

    #[test]
    fn adding_duplicate_component_is_idempotent() {
        let mut e = TimestampingEngine::new();
        let a = e.add_component(Component::Object(ObjectId(3)));
        let b = e.add_component(Component::Object(ObjectId(3)));
        assert_eq!(a, b);
        assert_eq!(e.width(), 1);
    }

    #[test]
    fn object_component_preferred_like_batch_assigner() {
        // Replaying a computation through the engine with a fixed component map
        // must give exactly the same stamps as the batch assigner.
        let c = WorkloadBuilder::new(6, 6).operations(120).seed(42).build();
        let plan = OfflineOptimizer::new().plan_for_computation(&c);
        let batch = plan.assigner().assign(&c);
        let mut engine = TimestampingEngine::with_components(plan.components().clone());
        let streamed: Vec<_> = c
            .events()
            .map(|e| engine.observe(e.thread, e.object).unwrap())
            .collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn failed_observation_leaves_state_unchanged() {
        let mut e = TimestampingEngine::new();
        e.add_component(Component::Thread(ThreadId(0)));
        e.observe(ThreadId(0), ObjectId(0)).unwrap();
        let before = e.clone();
        assert!(e.observe(ThreadId(1), ObjectId(1)).is_err());
        assert_eq!(e, before);
    }

    #[test]
    fn default_format_is_chunked_and_dense_is_available() {
        let e = TimestampingEngine::new();
        assert_eq!(e.format(), StampFormat::Chunked);
        assert_eq!(e.chunk_occupancy(), Some(0.0), "no rows touched yet");
        let d = TimestampingEngine::with_format(ComponentMap::new(), StampFormat::Dense);
        assert_eq!(d.format(), StampFormat::Dense);
        assert_eq!(d.chunk_occupancy(), None, "dense rows have no bitmap");
    }

    #[test]
    fn chunk_occupancy_tracks_touched_chunks() {
        // 128 components, but every event touches only component 0: each
        // touched row has exactly 1 of its 2 chunks nonzero.
        let mut map = ComponentMap::all_threads(1);
        for o in 0..127 {
            map.push(Component::Object(ObjectId(o)));
        }
        let mut e = TimestampingEngine::with_components(map);
        e.observe(ThreadId(0), ObjectId(999)).unwrap();
        assert_eq!(e.width(), 128);
        assert_eq!(e.chunk_occupancy(), Some(0.5));
    }

    #[test]
    fn covers_reflects_components() {
        let mut e = TimestampingEngine::new();
        e.add_component(Component::Object(ObjectId(2)));
        assert!(e.covers(ThreadId(9), ObjectId(2)));
        assert!(!e.covers(ThreadId(9), ObjectId(3)));
    }

    proptest! {
        /// Streaming through the engine with components chosen by the offline
        /// optimizer yields a valid vector clock, identical to the batch path.
        #[test]
        fn prop_engine_matches_batch_and_is_valid(
            threads in 1usize..7,
            objects in 1usize..7,
            ops in 1usize..80,
            seed in 0u64..150,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let plan = OfflineOptimizer::new().plan_for_computation(&c);
            let mut engine = TimestampingEngine::with_components(plan.components().clone());
            let streamed: Vec<_> = c
                .events()
                .map(|e| engine.observe(e.thread, e.object).unwrap())
                .collect();
            prop_assert_eq!(&streamed, &plan.assigner().assign(&c));
            let oracle = c.causality_oracle();
            prop_assert!(satisfies_vector_clock_condition(&c, &streamed, &oracle));
            prop_assert_eq!(engine.events_observed(), c.len());
            let _ = Computation::new();
        }

        /// The two row formats are the same engine bit-for-bit: stamps,
        /// readback clocks, and mid-run component growth all agree.
        #[test]
        fn prop_dense_and_chunked_formats_agree(
            threads in 1usize..7,
            objects in 1usize..7,
            ops in 1usize..80,
            seed in 0u64..150,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let map = ComponentMap::all_threads(c.thread_index_bound());
            let mut dense = TimestampingEngine::with_format(map.clone(), StampFormat::Dense);
            let mut chunked = TimestampingEngine::with_format(map, StampFormat::Chunked);
            for (i, e) in c.events().enumerate() {
                if i == ops / 2 {
                    // Grow the clock mid-run on both engines.
                    dense.add_component(Component::Object(e.object));
                    chunked.add_component(Component::Object(e.object));
                }
                let a = dense.observe(e.thread, e.object).unwrap();
                let b = chunked.observe(e.thread, e.object).unwrap();
                prop_assert_eq!(a, b);
            }
            for t in 0..threads {
                prop_assert_eq!(dense.thread_clock(ThreadId(t)), chunked.thread_clock(ThreadId(t)));
            }
            for o in 0..objects {
                prop_assert_eq!(dense.object_clock(ObjectId(o)), chunked.object_clock(ObjectId(o)));
            }
        }
    }
}
