//! Trace sessions and thread registration.
//!
//! A [`TraceSession`] owns the identifier spaces (threads and objects get
//! dense ids in registration order) and the ingest side of the event
//! pipeline.  Each registered thread owns a segmented ingest buffer and each
//! [`SharedObject`] draws a per-object sequence ticket *while still holding
//! its lock* (see [`crate::ingest`]), so the per-thread buffers plus the
//! ticket stream carry exactly the two orders the paper's model requires —
//! per-thread program order and per-object serialization order — without a
//! global queue for producers to contend on.  The drain side reassembles a
//! faithful interleaving with an order-preserving merge.

use std::sync::Arc;

use parking_lot::Mutex;

use mvc_trace::{Computation, ObjectId, OpKind, ThreadId};

use crate::ingest::{new_thread_buffer, OrderedMerge, SequencedEvent, ThreadBuffer, DRAIN_BUDGET};
use crate::object::SharedObject;

/// One recorded operation, as emitted by the order-preserving merge — the
/// `(thread, object, kind)` column layout [`Computation::record_ops`] and
/// [`EventSink::accept_columns`](mvc_core::EventSink::accept_columns)
/// consume directly.
pub(crate) type RawEvent = (ThreadId, ObjectId, OpKind);

/// A handle identifying a registered application thread.
///
/// Handles are cheap to clone and can be moved into spawned threads; every
/// traced operation takes a handle so the trace knows which logical thread
/// performed it.  The handle owns the thread's ingest buffer — operations
/// recorded through it never contend with other threads.
#[derive(Debug, Clone)]
pub struct ThreadHandle {
    id: ThreadId,
    name: Arc<str>,
    pub(crate) buffer: ThreadBuffer,
}

impl ThreadHandle {
    /// The thread's dense identifier.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// The name given at registration.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Publishes one operation with a **caller-assigned** per-object
    /// serialization ticket.
    ///
    /// This is the ingest hook for transports that serialize object access
    /// themselves instead of going through a [`SharedObject`]'s lock — the
    /// `mvc-net` server, for instance, assigns each object's tickets in
    /// connection-arrival order.  The caller owns the two order contracts
    /// the merge relies on:
    ///
    /// * per object, tickets `0, 1, 2, …` are each assigned exactly once,
    ///   and an event is published only after every event holding a smaller
    ///   ticket of the same object has been published;
    /// * per handle, calls happen in the thread's program order.
    ///
    /// Mixing this with [`SharedObject`] operations *on the same object*
    /// would run two independent ticket counters and stall the merge; use
    /// one scheme per object.
    pub fn record_sequenced(&self, object: ObjectId, kind: OpKind, object_seq: u64) {
        self.buffer.push(SequencedEvent {
            thread: self.id,
            object,
            kind,
            object_seq,
        });
    }
}

/// Shared interior of a session, referenced by every [`SharedObject`].
///
/// Ids are assigned *under* the registry lock (id = current length), so a
/// thread's dense id, its name slot and its buffer slot are allocated
/// atomically — concurrent registrations can never mis-associate them.
#[derive(Debug)]
pub(crate) struct SessionInner {
    /// Every registered thread's ingest buffer, indexed by thread id — the
    /// drain side snapshots this to run the merge.
    buffers: Mutex<Vec<ThreadBuffer>>,
    names: Mutex<SessionNames>,
}

#[derive(Debug, Default)]
struct SessionNames {
    threads: Vec<String>,
    objects: Vec<String>,
}

impl SessionInner {
    pub(crate) fn new() -> Self {
        SessionInner {
            buffers: Mutex::new(Vec::new()),
            names: Mutex::new(SessionNames::default()),
        }
    }

    pub(crate) fn register_thread_handle(&self, name: &str) -> ThreadHandle {
        let buffer = new_thread_buffer();
        let mut names = self.names.lock();
        let id = ThreadId(names.threads.len());
        names.threads.push(name.to_owned());
        // Push the buffer while still holding the names lock, so
        // `buffers[i]` really is thread `i`'s buffer (the merge itself only
        // needs the set, but the invariant keeps diagnostics sane).
        self.buffers.lock().push(Arc::clone(&buffer));
        drop(names);
        ThreadHandle {
            id,
            name: Arc::from(name),
            buffer,
        }
    }

    pub(crate) fn register_object(&self, name: &str) -> ObjectId {
        let mut names = self.names.lock();
        let id = ObjectId(names.objects.len());
        names.objects.push(name.to_owned());
        id
    }

    pub(crate) fn thread_count(&self) -> usize {
        self.names.lock().threads.len()
    }

    pub(crate) fn object_count(&self) -> usize {
        self.names.lock().objects.len()
    }

    /// Snapshot of every thread buffer registered so far.
    pub(crate) fn buffer_snapshot(&self) -> Vec<ThreadBuffer> {
        self.buffers.lock().clone()
    }
}

/// A tracing session: the factory for shared objects and thread handles, and
/// the collector of the resulting computation.
#[derive(Debug)]
pub struct TraceSession {
    pub(crate) inner: Arc<SessionInner>,
}

impl Default for TraceSession {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSession {
    /// Creates an empty session.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(SessionInner::new()),
        }
    }

    /// Registers an application thread and returns its handle.
    pub fn register_thread(&self, name: &str) -> ThreadHandle {
        self.inner.register_thread_handle(name)
    }

    /// Creates a traced shared object holding `value`.
    pub fn shared_object<T>(&self, name: &str, value: T) -> SharedObject<T> {
        let id = self.inner.register_object(name);
        SharedObject::new(id, name, value)
    }

    /// Registers an object *by name only* and returns its dense id, without
    /// creating a [`SharedObject`] around it.
    ///
    /// Pairs with [`ThreadHandle::record_sequenced`]: a transport that
    /// serializes object access itself registers the id space here and
    /// assigns the per-object tickets on its own.
    pub fn register_object(&self, name: &str) -> ObjectId {
        self.inner.register_object(name)
    }

    /// The name a thread was registered with, if the id is known.
    pub fn thread_name(&self, id: ThreadId) -> Option<String> {
        self.inner.names.lock().threads.get(id.index()).cloned()
    }

    /// The name an object was created with, if the id is known.
    pub fn object_name(&self, id: ObjectId) -> Option<String> {
        self.inner.names.lock().objects.get(id.index()).cloned()
    }

    /// Number of threads registered so far.
    pub fn thread_count(&self) -> usize {
        self.inner.thread_count()
    }

    /// Number of objects created so far.
    pub fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    /// Drains every recorded operation into a [`Computation`].
    ///
    /// The per-thread buffers are merged into a faithful interleaving (see
    /// [`crate::ingest`]) and appended in bulk.  Call this after all worker
    /// threads have been joined; operations still being performed
    /// concurrently with the drain may or may not be included.
    pub fn into_computation(self) -> Computation {
        let TraceSession { inner } = self;
        let mut computation = Computation::new();
        let mut merge = OrderedMerge::new();
        let mut batch = Vec::new();
        loop {
            let buffers = inner.buffer_snapshot();
            // Bounded batches: each one is appended while still cache-warm
            // from the merge.
            if merge.drain(&buffers, &mut batch, DRAIN_BUDGET) == 0 {
                break;
            }
            computation.record_ops(batch.drain(..));
        }
        computation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn registration_assigns_dense_ids_and_names() {
        let session = TraceSession::new();
        let a = session.register_thread("a");
        let b = session.register_thread("b");
        assert_eq!(a.id(), ThreadId(0));
        assert_eq!(b.id(), ThreadId(1));
        assert_eq!(a.name(), "a");
        assert_eq!(session.thread_name(ThreadId(1)).as_deref(), Some("b"));
        assert_eq!(session.thread_name(ThreadId(9)), None);
        assert_eq!(session.thread_count(), 2);

        let o = session.shared_object("obj", 1i32);
        assert_eq!(o.id(), ObjectId(0));
        assert_eq!(session.object_name(ObjectId(0)).as_deref(), Some("obj"));
        assert_eq!(session.object_count(), 1);
    }

    #[test]
    fn concurrent_registration_keeps_ids_names_and_buffers_associated() {
        // Ids are assigned under the registry lock: however registrations
        // interleave, every handle's id must map back to its own name.
        let session = TraceSession::new();
        let handles: Vec<ThreadHandle> = thread::scope(|scope| {
            let spawned: Vec<_> = (0..8)
                .map(|i| {
                    let session = &session;
                    scope.spawn(move || session.register_thread(&format!("w{i}")))
                })
                .collect();
            spawned.into_iter().map(|j| j.join().unwrap()).collect()
        });
        assert_eq!(session.thread_count(), 8);
        for (i, handle) in handles.iter().enumerate() {
            assert_eq!(
                session.thread_name(handle.id()).as_deref(),
                Some(format!("w{i}").as_str()),
                "handle {i} mis-associated"
            );
        }
        let mut ids: Vec<usize> = handles.iter().map(|h| h.id().index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..8).collect::<Vec<_>>(), "ids are dense");
    }

    #[test]
    fn record_sequenced_feeds_the_merge_with_caller_assigned_tickets() {
        // Two threads publish on one object with tickets assigned by the
        // caller (the transport's role): the merge must reassemble the
        // ticket order, not the buffer-scan order.
        let session = TraceSession::new();
        let a = session.register_thread("a");
        let b = session.register_thread("b");
        let o = session.register_object("remote-obj");
        assert_eq!(o, ObjectId(0));
        assert_eq!(session.object_count(), 1);
        a.record_sequenced(o, OpKind::Write, 1);
        b.record_sequenced(o, OpKind::Write, 0);
        a.record_sequenced(o, OpKind::Read, 2);
        let c = session.into_computation();
        assert_eq!(c.len(), 3);
        let events: Vec<_> = c.events().collect();
        assert_eq!(events[0].thread, ThreadId(1), "ticket 0 first");
        assert_eq!(events[1].thread, ThreadId(0));
        assert_eq!(events[2].kind, OpKind::Read);
    }

    #[test]
    fn empty_session_yields_empty_computation() {
        let session = TraceSession::new();
        session.register_thread("unused");
        let _unused = session.shared_object("unused", ());
        let c = session.into_computation();
        assert!(c.is_empty());
    }

    #[test]
    fn single_thread_trace_is_recorded_in_order() {
        let session = TraceSession::new();
        let t = session.register_thread("main");
        let x = session.shared_object("x", 0u32);
        let y = session.shared_object("y", 0u32);
        x.write(&t, |v| *v = 1);
        y.write(&t, |v| *v = 2);
        x.read(&t, |v| *v);
        let c = session.into_computation();
        assert_eq!(c.len(), 3);
        let events: Vec<_> = c.events().collect();
        assert_eq!(events[0].object, ObjectId(0));
        assert_eq!(events[1].object, ObjectId(1));
        assert_eq!(events[2].object, ObjectId(0));
        assert_eq!(events[0].kind, OpKind::Write);
        assert_eq!(events[2].kind, OpKind::Read);
        assert_eq!(c.thread_chain(ThreadId(0)).len(), 3);
    }

    #[test]
    fn multithreaded_trace_preserves_object_serialization() {
        let session = TraceSession::new();
        let counter = session.shared_object("counter", 0u64);
        let mut joins = Vec::new();
        for i in 0..4 {
            let handle = session.register_thread(&format!("worker-{i}"));
            let counter = counter.clone();
            joins.push(thread::spawn(move || {
                for _ in 0..50 {
                    counter.write(&handle, |v| *v += 1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let final_value = {
            let probe = session.register_thread("probe");
            counter.read(&probe, |v| *v)
        };
        assert_eq!(final_value, 200);
        let c = session.into_computation();
        // 200 writes + 1 read, all on one object.
        assert_eq!(c.len(), 201);
        assert_eq!(c.object_chain(ObjectId(0)).len(), 201);
        // Each worker contributed exactly 50 events in its own chain.
        for t in 0..4 {
            assert_eq!(c.thread_chain(ThreadId(t)).len(), 50);
        }
    }
}
