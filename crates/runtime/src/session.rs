//! Trace sessions and thread registration.
//!
//! A [`TraceSession`] owns the identifier spaces (threads and objects get
//! dense ids in registration order) and the event sink.  Operations are sent
//! through an unbounded crossbeam channel; each [`SharedObject`] sends the
//! event *while still holding its lock*, so for any single object the order
//! of events in the channel matches the order in which the operations really
//! serialised — exactly the per-object chain order the paper's model
//! requires.  Per-thread order is preserved because a thread enqueues its own
//! events in program order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use mvc_trace::{Computation, ObjectId, OpKind, ThreadId};

use crate::object::SharedObject;

/// Events moved out of the channel per lock acquisition by the batched
/// drains (`TraceSession::into_computation`, `LiveSession::pump`).
pub(crate) const DRAIN_BATCH: usize = 1024;

/// One recorded operation, as sent over the event channel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawEvent {
    pub(crate) thread: ThreadId,
    pub(crate) object: ObjectId,
    pub(crate) kind: OpKind,
}

/// A handle identifying a registered application thread.
///
/// Handles are cheap to clone and can be moved into spawned threads; every
/// traced operation takes a handle so the trace knows which logical thread
/// performed it.
#[derive(Debug, Clone)]
pub struct ThreadHandle {
    id: ThreadId,
    name: Arc<str>,
}

impl ThreadHandle {
    /// The thread's dense identifier.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// The name given at registration.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Shared interior of a session, referenced by every [`SharedObject`].
#[derive(Debug)]
pub(crate) struct SessionInner {
    pub(crate) sender: Sender<RawEvent>,
    next_thread: AtomicUsize,
    next_object: AtomicUsize,
    names: Mutex<SessionNames>,
}

#[derive(Debug, Default)]
struct SessionNames {
    threads: Vec<String>,
    objects: Vec<String>,
}

impl SessionInner {
    fn register_thread(&self, name: &str) -> ThreadId {
        let id = ThreadId(self.next_thread.fetch_add(1, Ordering::Relaxed));
        let mut names = self.names.lock();
        debug_assert_eq!(names.threads.len(), id.index());
        names.threads.push(name.to_owned());
        id
    }

    pub(crate) fn register_thread_handle(&self, name: &str) -> ThreadHandle {
        ThreadHandle {
            id: self.register_thread(name),
            name: Arc::from(name),
        }
    }

    pub(crate) fn register_object(&self, name: &str) -> ObjectId {
        let id = ObjectId(self.next_object.fetch_add(1, Ordering::Relaxed));
        let mut names = self.names.lock();
        debug_assert_eq!(names.objects.len(), id.index());
        names.objects.push(name.to_owned());
        id
    }
}

/// A tracing session: the factory for shared objects and thread handles, and
/// the collector of the resulting computation.
#[derive(Debug)]
pub struct TraceSession {
    pub(crate) inner: Arc<SessionInner>,
    pub(crate) receiver: Receiver<RawEvent>,
}

impl Default for TraceSession {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSession {
    /// Creates an empty session.
    pub fn new() -> Self {
        let (sender, receiver) = unbounded();
        Self {
            inner: Arc::new(SessionInner {
                sender,
                next_thread: AtomicUsize::new(0),
                next_object: AtomicUsize::new(0),
                names: Mutex::new(SessionNames::default()),
            }),
            receiver,
        }
    }

    /// Registers an application thread and returns its handle.
    pub fn register_thread(&self, name: &str) -> ThreadHandle {
        self.inner.register_thread_handle(name)
    }

    /// Creates a traced shared object holding `value`.
    pub fn shared_object<T>(&self, name: &str, value: T) -> SharedObject<T> {
        let id = self.inner.register_object(name);
        SharedObject::new(id, name, value, Arc::clone(&self.inner))
    }

    /// The name a thread was registered with, if the id is known.
    pub fn thread_name(&self, id: ThreadId) -> Option<String> {
        self.inner.names.lock().threads.get(id.index()).cloned()
    }

    /// The name an object was created with, if the id is known.
    pub fn object_name(&self, id: ObjectId) -> Option<String> {
        self.inner.names.lock().objects.get(id.index()).cloned()
    }

    /// Number of threads registered so far.
    pub fn thread_count(&self) -> usize {
        self.inner.next_thread.load(Ordering::Relaxed)
    }

    /// Number of objects created so far.
    pub fn object_count(&self) -> usize {
        self.inner.next_object.load(Ordering::Relaxed)
    }

    /// Drains every recorded operation into a [`Computation`].
    ///
    /// Call this after all worker threads have been joined; operations still
    /// being performed concurrently with the drain may or may not be
    /// included.
    pub fn into_computation(self) -> Computation {
        let TraceSession { inner, receiver } = self;
        // Dropping the last sender closes the channel so the batched drain
        // collects everything that was sent. SharedObjects may still hold
        // clones of the inner; events they send after this point are
        // intentionally dropped.
        drop(inner);
        let mut computation = Computation::new();
        let mut batch = Vec::new();
        while receiver.try_recv_batch(&mut batch, DRAIN_BATCH) > 0 {
            for ev in batch.drain(..) {
                computation.record_op(ev.thread, ev.object, ev.kind);
            }
        }
        computation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn registration_assigns_dense_ids_and_names() {
        let session = TraceSession::new();
        let a = session.register_thread("a");
        let b = session.register_thread("b");
        assert_eq!(a.id(), ThreadId(0));
        assert_eq!(b.id(), ThreadId(1));
        assert_eq!(a.name(), "a");
        assert_eq!(session.thread_name(ThreadId(1)).as_deref(), Some("b"));
        assert_eq!(session.thread_name(ThreadId(9)), None);
        assert_eq!(session.thread_count(), 2);

        let o = session.shared_object("obj", 1i32);
        assert_eq!(o.id(), ObjectId(0));
        assert_eq!(session.object_name(ObjectId(0)).as_deref(), Some("obj"));
        assert_eq!(session.object_count(), 1);
    }

    #[test]
    fn empty_session_yields_empty_computation() {
        let session = TraceSession::new();
        session.register_thread("unused");
        let _unused = session.shared_object("unused", ());
        let c = session.into_computation();
        assert!(c.is_empty());
    }

    #[test]
    fn single_thread_trace_is_recorded_in_order() {
        let session = TraceSession::new();
        let t = session.register_thread("main");
        let x = session.shared_object("x", 0u32);
        let y = session.shared_object("y", 0u32);
        x.write(&t, |v| *v = 1);
        y.write(&t, |v| *v = 2);
        x.read(&t, |v| *v);
        let c = session.into_computation();
        assert_eq!(c.len(), 3);
        let events: Vec<_> = c.events().collect();
        assert_eq!(events[0].object, ObjectId(0));
        assert_eq!(events[1].object, ObjectId(1));
        assert_eq!(events[2].object, ObjectId(0));
        assert_eq!(events[0].kind, OpKind::Write);
        assert_eq!(events[2].kind, OpKind::Read);
        assert_eq!(c.thread_chain(ThreadId(0)).len(), 3);
    }

    #[test]
    fn multithreaded_trace_preserves_object_serialization() {
        let session = TraceSession::new();
        let counter = session.shared_object("counter", 0u64);
        let mut joins = Vec::new();
        for i in 0..4 {
            let handle = session.register_thread(&format!("worker-{i}"));
            let counter = counter.clone();
            joins.push(thread::spawn(move || {
                for _ in 0..50 {
                    counter.write(&handle, |v| *v += 1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let final_value = {
            let probe = session.register_thread("probe");
            counter.read(&probe, |v| *v)
        };
        assert_eq!(final_value, 200);
        let c = session.into_computation();
        // 200 writes + 1 read, all on one object.
        assert_eq!(c.len(), 201);
        assert_eq!(c.object_chain(ObjectId(0)).len(), 201);
        // Each worker contributed exactly 50 events in its own chain.
        for t in 0..4 {
            assert_eq!(c.thread_chain(ThreadId(t)).len(), 50);
        }
    }
}
