//! Streaming analyses that ride the ingest pipeline as event sinks.
//!
//! The mixed vector timestamp *is* the causality index: `e → f` iff
//! `V(e) < V(f)` componentwise (Section II).  So an analysis that sees the
//! stamped stream needs no transitive closure, no BFS and no post-hoc
//! offline plan — an O(width) clock compare answers every ordering
//! question.  This module packages three such analyses as
//! [`EventSink`]s, so they run *at pipeline rate* inside the
//! merge → stamp → sink loop instead of waiting for a materialised
//! [`Computation`](mvc_trace::Computation):
//!
//! * [`ReachabilityIndexSink`] — a bounded window of recent stamps plus
//!   per-chain frontier stamps; `happened_before` / `concurrent` queries on
//!   in-window events are single clock compares.  Replaces
//!   [`CausalityOracle`](mvc_trace::CausalityOracle)'s `O(n²/64)` bitsets
//!   for live use.
//! * [`ConflictSink`] — the streaming form of
//!   [`ConflictAnalyzer`](crate::ConflictAnalyzer): flags concurrent
//!   cross-thread conflicting pairs within declared object groups as
//!   batches arrive, using the live stamps.  A low-watermark prune keeps
//!   retained state bounded on contended workloads *without* losing pairs:
//!   it flags exactly what the post-hoc analyzer finds (conformance
//!   oracle 8).
//! * [`CompetitiveSink`] — windowed competitive-ratio tracking: every
//!   stamped batch feeds its revealed thread–object edges into an
//!   [`IncrementalOptimum`], so the gap between the provisioned clock width
//!   and the offline optimum of the revealed graph is visible while the
//!   run is still going.
//!
//! All three are infallible sinks (they never reject a batch), so they
//! compose freely under [`TeeSink`](mvc_core::sink::TeeSink) with
//! recording and persistence backends — one live run can record, persist
//! and monitor simultaneously.
//!
//! # Why live stamps agree with post-hoc analysis
//!
//! Any component map that covers the computation characterises
//! happened-before exactly (the paper's Theorem 1), so concurrency verdicts
//! do not depend on *which* valid clock produced the stamps.  The streaming
//! sinks therefore reach the same verdicts from the live engine's stamps as
//! [`ConflictAnalyzer`](crate::ConflictAnalyzer) reaches from a fresh
//! offline-optimal plan.  Stamps taken at different clock widths are
//! zero-padded before comparing, exactly like
//! [`LiveRun`](crate::LiveRun)'s final padding.

use std::cmp::Ordering;
use std::collections::VecDeque;

use mvc_clock::{ClockOrd, VectorTimestamp};
use mvc_core::sink::{EventSink, SinkError, StampedEvent};
use mvc_graph::IncrementalOptimum;
use mvc_online::TrajectoryPoint;
use mvc_trace::{EventId, ObjectId, OpKind, ThreadId};

use crate::conflict::ConflictPair;

/// Compares two stamps that may have been taken at different clock widths,
/// zero-padding the narrower one (widths only grow, and a new component's
/// counter is implicitly zero before its first increment).
fn compare_padded(a: &VectorTimestamp, b: &VectorTimestamp) -> ClockOrd {
    match a.len().cmp(&b.len()) {
        Ordering::Equal => a.compare(b),
        Ordering::Less => a.padded_to(b.len()).compare(b),
        Ordering::Greater => a.compare(&b.padded_to(a.len())),
    }
}

/// Stores `stamp` as the new frontier of chain `index`, growing the table on
/// demand.
fn set_frontier(table: &mut Vec<Option<VectorTimestamp>>, index: usize, stamp: &VectorTimestamp) {
    if index >= table.len() {
        table.resize(index + 1, None);
    }
    table[index] = Some(stamp.clone());
}

// ---------------------------------------------------------------------------
// ReachabilityIndexSink
// ---------------------------------------------------------------------------

/// One retained event of the reachability window.
#[derive(Debug, Clone)]
struct WindowEntry {
    thread: ThreadId,
    object: ObjectId,
    stamp: VectorTimestamp,
}

/// A streaming happened-before index: a bounded window of recent stamps
/// plus per-chain frontier stamps.
///
/// Events are identified by their stamping sequence number (which equals
/// their post-hoc [`EventId`], because the sink sees the merged
/// interleaving in recording order).  Queries about two in-window events
/// are a single O(width) clock compare; queries touching an evicted event
/// return `None` — the caller chose the window, so "too old to answer" is
/// an explicit outcome, not a wrong one.
///
/// Memory is `O(window × width)` regardless of run length: the window is a
/// ring, and the per-chain frontiers (the latest stamp of every thread and
/// object chain) are one stamp each.
#[derive(Debug, Clone)]
pub struct ReachabilityIndexSink {
    capacity: usize,
    window: VecDeque<WindowEntry>,
    accepted: usize,
    thread_frontier: Vec<Option<VectorTimestamp>>,
    object_frontier: Vec<Option<VectorTimestamp>>,
    metrics: ReachMetrics,
}

/// Process-global metric handles for the reachability index (resolved once
/// per sink; see `docs/OBSERVABILITY.md`).
#[derive(Debug, Clone)]
struct ReachMetrics {
    /// `analysis.reach_spills` (counter, events): evicted from the bounded
    /// window — queries about them now answer `None`.
    spills: mvc_obs::Counter,
}

impl Default for ReachMetrics {
    fn default() -> Self {
        Self {
            spills: mvc_obs::global().counter("analysis.reach_spills"),
        }
    }
}

impl ReachabilityIndexSink {
    /// Creates an index retaining the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity window answers nothing");
        Self {
            capacity,
            window: VecDeque::new(),
            accepted: 0,
            thread_frontier: Vec::new(),
            object_frontier: Vec::new(),
            metrics: ReachMetrics::default(),
        }
    }

    /// Creates an index that never evicts (for test-sized runs where every
    /// pair must stay answerable).
    pub fn unbounded() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// The configured window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events evicted from the window so far.
    pub fn spilled(&self) -> usize {
        self.accepted - self.window.len()
    }

    /// Returns `true` iff `e` has been accepted and is still in the window.
    pub fn contains(&self, e: EventId) -> bool {
        e.index() >= self.spilled() && e.index() < self.accepted
    }

    fn entry(&self, e: EventId) -> Option<&WindowEntry> {
        if !self.contains(e) {
            return None;
        }
        self.window.get(e.index() - self.spilled())
    }

    /// The retained stamp of `e`, if it is still in the window.
    pub fn stamp_of(&self, e: EventId) -> Option<&VectorTimestamp> {
        self.entry(e).map(|w| &w.stamp)
    }

    /// The `(thread, object)` of `e`, if it is still in the window.
    pub fn event(&self, e: EventId) -> Option<(ThreadId, ObjectId)> {
        self.entry(e).map(|w| (w.thread, w.object))
    }

    /// Compares two in-window events under the clock partial order; `None`
    /// if either has been evicted (or not yet accepted).
    pub fn compare(&self, a: EventId, b: EventId) -> Option<ClockOrd> {
        Some(compare_padded(self.stamp_of(a)?, self.stamp_of(b)?))
    }

    /// Returns `Some(true)` iff `a → b`; `None` when either event is out of
    /// the window.
    pub fn happened_before(&self, a: EventId, b: EventId) -> Option<bool> {
        Some(self.compare(a, b)?.is_before())
    }

    /// Returns `Some(true)` iff the events are concurrent (distinct and
    /// incomparable); `None` when either event is out of the window.
    pub fn concurrent(&self, a: EventId, b: EventId) -> Option<bool> {
        Some(a != b && self.compare(a, b)?.is_concurrent())
    }

    /// The latest stamp of thread `t`'s chain, if the thread has produced
    /// any event.  Anything stamped `≤` this frontier happened before every
    /// *future* event of `t`.
    pub fn thread_frontier(&self, t: ThreadId) -> Option<&VectorTimestamp> {
        self.thread_frontier.get(t.index())?.as_ref()
    }

    /// The latest stamp of object `o`'s chain, if the object has been
    /// touched.
    pub fn object_frontier(&self, o: ObjectId) -> Option<&VectorTimestamp> {
        self.object_frontier.get(o.index())?.as_ref()
    }

    fn ingest(&mut self, thread: ThreadId, object: ObjectId, stamp: VectorTimestamp) {
        set_frontier(&mut self.thread_frontier, thread.index(), &stamp);
        set_frontier(&mut self.object_frontier, object.index(), &stamp);
        self.window.push_back(WindowEntry {
            thread,
            object,
            stamp,
        });
        if self.window.len() > self.capacity {
            self.window.pop_front();
            self.metrics.spills.inc();
        }
        self.accepted += 1;
    }
}

impl EventSink for ReachabilityIndexSink {
    fn name(&self) -> &str {
        "reach"
    }

    fn accept_batch(&mut self, batch: &[StampedEvent]) -> Result<(), SinkError> {
        for ev in batch {
            self.ingest(ev.thread, ev.object, ev.timestamp.clone());
        }
        Ok(())
    }

    fn accept_columns(
        &mut self,
        events: &[(ThreadId, ObjectId, OpKind)],
        stamps: &mut Vec<VectorTimestamp>,
    ) -> Result<(), SinkError> {
        debug_assert_eq!(events.len(), stamps.len());
        for (&(thread, object, _), stamp) in events.iter().zip(stamps.drain(..)) {
            self.ingest(thread, object, stamp);
        }
        Ok(())
    }

    fn events_accepted(&self) -> usize {
        self.accepted
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------------
// ConflictSink
// ---------------------------------------------------------------------------

/// The per-event metadata of one retained event; its stamp lives at the
/// same index in the group's flat stamp array.  `mutates` caches
/// `kind != Read` — a pair conflicts iff either side mutates
/// ([`OpKind::conflicts_with`]).
#[derive(Debug, Clone, Copy)]
struct RetainedMeta {
    id: EventId,
    thread: ThreadId,
    mutates: bool,
}

/// One declared object group and its still-live retained events.
///
/// Stamps are stored *flat* — `stamps[i * stride .. (i + 1) * stride]` is
/// entry `i`'s components, zero-padded to the group's stride — so the
/// per-event compare loop walks linear memory instead of chasing one heap
/// pointer per retained stamp, and pushing an entry is a `memcpy`, not an
/// allocation.
#[derive(Debug, Clone)]
struct GroupState {
    objects: Vec<ObjectId>,
    meta: Vec<RetainedMeta>,
    stamps: Vec<u64>,
    /// Components per retained stamp; grows (re-padding every entry) when a
    /// wider stamp arrives.
    stride: usize,
    touched: bool,
    /// Retained-list length that triggers an opportunistic mid-batch prune.
    /// Doubles when a prune frees little (the group is genuinely
    /// concurrency-dense), so prune work stays amortised O(1) per event.
    prune_threshold: usize,
}

impl GroupState {
    /// Widens every retained stamp to `stride` components, padding new
    /// components with zero (a component's counter is implicitly zero before
    /// its first increment).  Rare: the engine's width only grows on
    /// re-planning.
    fn restride(&mut self, stride: usize) {
        debug_assert!(stride > self.stride);
        let mut widened = vec![0u64; self.meta.len() * stride];
        for i in 0..self.meta.len() {
            widened[i * stride..i * stride + self.stride]
                .copy_from_slice(&self.stamps[i * self.stride..(i + 1) * self.stride]);
        }
        self.stamps = widened;
        self.stride = stride;
    }
}

/// Initial [`GroupState::prune_threshold`].  Small enough that the per-event
/// compare loop never scans long stale lists inside a large pipeline batch;
/// large enough that pruning stays a rounding error on sparse groups.
const PRUNE_BASE: usize = 8;

/// The streaming form of [`ConflictAnalyzer`](crate::ConflictAnalyzer):
/// flags concurrent cross-thread conflicting pairs within declared object
/// groups as stamped batches arrive.
///
/// Every accepted event on a group's object is compared (one padded clock
/// compare each) against the group's retained events; a pair is flagged
/// when the threads differ, at least one side mutates
/// ([`OpKind::conflicts_with`]) and the stamps are concurrent.  Flagged
/// pairs are exactly the pairs the post-hoc analyzer reports — conformance
/// oracle 8 holds the two implementations to that bit-for-bit.
///
/// # Low-watermark pruning
///
/// Retained events are pruned against the group's *low watermark*: the
/// componentwise minimum over the latest stamp of each of the group's
/// object chains.  Any future event of the group must touch one of those
/// objects, so its stamp strictly dominates that object's frontier — and
/// therefore dominates (is causally after) every retained event at or
/// below the watermark.  Pruned events can never form another concurrent
/// pair, which is why the prune loses nothing; on contended workloads the
/// frontiers advance quickly and retained state stays small.  A group with
/// an untouched object has no watermark yet and prunes nothing.
#[derive(Debug, Clone, Default)]
pub struct ConflictSink {
    groups: Vec<GroupState>,
    /// Dense object-index → group-indices table (object ids are small and
    /// dense, so this beats hashing on the per-event hot path).
    object_groups: Vec<Vec<usize>>,
    /// Flat per-object frontier stamps: object `o`'s latest stamp is
    /// `frontier[o * stride .. (o + 1) * stride]`, valid iff
    /// `frontier_set[o]`.  Updating a frontier is a `memcpy` into the slot.
    frontier: Vec<u64>,
    frontier_set: Vec<bool>,
    frontier_stride: usize,
    accepted: usize,
    conflicts: Vec<ConflictPair>,
    /// Reusable watermark buffer so pruning allocates nothing.
    watermark_scratch: Vec<u64>,
    metrics: ConflictMetrics,
}

/// Process-global metric handles for the conflict sink (resolved once per
/// sink; see `docs/OBSERVABILITY.md`).
#[derive(Debug, Clone)]
struct ConflictMetrics {
    /// `analysis.conflict_pairs` (counter, pairs): concurrent cross-thread
    /// conflicting pairs flagged within declared groups.
    pairs: mvc_obs::Counter,
}

impl Default for ConflictMetrics {
    fn default() -> Self {
        Self {
            pairs: mvc_obs::global().counter("analysis.conflict_pairs"),
        }
    }
}

impl ConflictSink {
    /// Creates a sink with no groups (nothing will be flagged).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a group of objects related by an application invariant,
    /// returning the group's index.  Duplicate objects within the group are
    /// ignored — each membership counts once.
    pub fn add_group(&mut self, objects: impl IntoIterator<Item = ObjectId>) -> usize {
        let gi = self.groups.len();
        let mut deduped: Vec<ObjectId> = Vec::new();
        for o in objects {
            if !deduped.contains(&o) {
                deduped.push(o);
                if o.index() >= self.object_groups.len() {
                    self.object_groups.resize(o.index() + 1, Vec::new());
                }
                self.object_groups[o.index()].push(gi);
            }
        }
        self.groups.push(GroupState {
            objects: deduped,
            meta: Vec::new(),
            stamps: Vec::new(),
            stride: 0,
            touched: false,
            prune_threshold: PRUNE_BASE,
        });
        gi
    }

    /// Creates a sink from explicit groups.
    pub fn with_groups(groups: impl IntoIterator<Item = Vec<ObjectId>>) -> Self {
        let mut sink = Self::new();
        for g in groups {
            sink.add_group(g);
        }
        sink
    }

    /// Creates a sink declaring the same groups as a post-hoc analyzer —
    /// the pairing oracle 8 cross-checks.
    pub fn mirroring(analyzer: &crate::ConflictAnalyzer) -> Self {
        Self::with_groups(analyzer.groups().iter().cloned())
    }

    /// Number of declared groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The (deduplicated) objects of group `gi`.
    ///
    /// # Panics
    ///
    /// Panics if `gi` is out of range.
    pub fn group_objects(&self, gi: usize) -> &[ObjectId] {
        &self.groups[gi].objects
    }

    /// Every pair flagged so far, in discovery order (second event's
    /// stamping order, then group index).
    pub fn conflicts(&self) -> &[ConflictPair] {
        &self.conflicts
    }

    /// Consumes the sink and returns the flagged pairs.
    pub fn into_conflicts(self) -> Vec<ConflictPair> {
        self.conflicts
    }

    /// Total events currently retained across all groups — bounded on
    /// contended workloads by the low-watermark prune.
    pub fn retained_events(&self) -> usize {
        self.groups.iter().map(|g| g.meta.len()).sum()
    }

    fn ingest(
        &mut self,
        thread: ThreadId,
        object: ObjectId,
        kind: OpKind,
        stamp: &VectorTimestamp,
    ) {
        let id = EventId(self.accepted);
        self.accepted += 1;
        if self
            .object_groups
            .get(object.index())
            .is_none_or(|g| g.is_empty())
        {
            // Unmonitored object: nothing scans it and no watermark reads
            // its frontier, so the event costs one table lookup.
            return;
        }
        let s = stamp.as_slice();
        // Advance the frontier *before* scanning: the watermark then
        // includes this event's own stamp, and a mid-batch prune removes
        // exactly the retained events this scan would have found ordered
        // (an entry at or below a watermark that includes the current stamp
        // is componentwise ≤ it).  The scan that follows therefore mostly
        // touches genuinely concurrent entries, which exit on their first
        // excess component.
        self.store_frontier(object.index(), s);
        let mutates = kind.conflicts_with(OpKind::Read);
        let group_ids = &self.object_groups[object.index()];
        for &gi in group_ids {
            let group = &mut self.groups[gi];
            if s.len() > group.stride {
                group.restride(s.len());
            }
            // Opportunistic mid-batch prune: pipeline batches run to
            // thousands of events, and an unpruned retained list makes
            // the compare loop below O(batch²) per batch.  The watermark
            // argument holds at any point in the stream, so pruning here
            // loses nothing (the same pairs are still flagged — oracle 8
            // checks exact parity).  Unpruneable groups double their
            // threshold instead of re-scanning every event.
            if group.meta.len() >= group.prune_threshold {
                prune_group(
                    group,
                    &self.frontier,
                    &self.frontier_set,
                    self.frontier_stride,
                    &mut self.watermark_scratch,
                );
            }
            let stride = group.stride;
            // Width-0 stamps (an empty clock) are all equal, never
            // concurrent — and chunks_exact needs a non-zero chunk anyway.
            if stride > 0 {
                for (m, r) in group.meta.iter().zip(group.stamps.chunks_exact(stride)) {
                    if m.thread != thread
                        && (mutates || m.mutates)
                        && flat_concurrent_with_later(r, s)
                    {
                        self.conflicts.push(ConflictPair {
                            group: gi,
                            first: m.id,
                            second: id,
                        });
                        self.metrics.pairs.inc();
                    }
                }
            }
            group.meta.push(RetainedMeta {
                id,
                thread,
                mutates,
            });
            let filled = group.stamps.len();
            group.stamps.extend_from_slice(s);
            group.stamps.resize(filled + stride, 0);
            group.touched = true;
        }
    }

    /// Copies `s` into object `oi`'s frontier slot, widening the flat table
    /// first if this stamp is wider than the current stride.
    fn store_frontier(&mut self, oi: usize, s: &[u64]) {
        if s.len() > self.frontier_stride {
            let old = self.frontier_stride;
            let n = self.frontier_set.len();
            let mut widened = vec![0u64; n * s.len()];
            for i in 0..n {
                widened[i * s.len()..i * s.len() + old]
                    .copy_from_slice(&self.frontier[i * old..(i + 1) * old]);
            }
            self.frontier = widened;
            self.frontier_stride = s.len();
        }
        let stride = self.frontier_stride;
        if oi >= self.frontier_set.len() {
            self.frontier_set.resize(oi + 1, false);
            self.frontier.resize(self.frontier_set.len() * stride, 0);
        }
        let slot = &mut self.frontier[oi * stride..(oi + 1) * stride];
        slot[..s.len()].copy_from_slice(s);
        slot[s.len()..].fill(0);
        self.frontier_set[oi] = true;
    }

    /// Prunes every group touched since the last prune against its low
    /// watermark.  Called once per accepted batch (the mid-batch prune in
    /// [`ingest`](Self::ingest) handles growth inside large batches), so the
    /// per-event hot path stays compare-and-push.
    fn prune_touched(&mut self) {
        for group in &mut self.groups {
            if !group.touched {
                continue;
            }
            group.touched = false;
            prune_group(
                group,
                &self.frontier,
                &self.frontier_set,
                self.frontier_stride,
                &mut self.watermark_scratch,
            );
        }
    }
}

/// Prunes one group's retained events against its current low watermark,
/// compacting the metadata and flat stamp arrays in lockstep, then re-arms
/// the group's prune threshold.
fn prune_group(
    group: &mut GroupState,
    frontier: &[u64],
    frontier_set: &[bool],
    frontier_stride: usize,
    scratch: &mut Vec<u64>,
) {
    if write_group_watermark(
        frontier,
        frontier_set,
        frontier_stride,
        &group.objects,
        scratch,
    ) {
        let stride = group.stride;
        let mut keep = 0;
        for i in 0..group.meta.len() {
            if !flat_below_watermark(&group.stamps[i * stride..(i + 1) * stride], scratch) {
                if keep != i {
                    group.meta[keep] = group.meta[i];
                    group
                        .stamps
                        .copy_within(i * stride..(i + 1) * stride, keep * stride);
                }
                keep += 1;
            }
        }
        group.meta.truncate(keep);
        group.stamps.truncate(keep * stride);
    }
    group.prune_threshold = (group.meta.len() * 2).max(PRUNE_BASE);
}

/// Writes the group's low watermark — the componentwise minimum over the
/// frontier stamps of `objects`, all implicitly zero-padded — into
/// `scratch`, allocating nothing.  Returns `false` (scratch contents
/// unspecified) while any object is still untouched: no event of that chain
/// exists yet, so nothing can be proven dominated.
fn write_group_watermark(
    frontier: &[u64],
    frontier_set: &[bool],
    stride: usize,
    objects: &[ObjectId],
    scratch: &mut Vec<u64>,
) -> bool {
    scratch.clear();
    let mut first = true;
    for o in objects {
        let oi = o.index();
        if !frontier_set.get(oi).copied().unwrap_or(false) {
            return false;
        }
        let f = &frontier[oi * stride..(oi + 1) * stride];
        if first {
            scratch.extend_from_slice(f);
            first = false;
        } else {
            for (w, &c) in scratch.iter_mut().zip(f) {
                *w = (*w).min(c);
            }
        }
    }
    !first
}

/// Returns `true` iff `earlier` is concurrent with `later`, where `earlier`
/// was retained before `later` was stamped and components past either
/// slice's width are implicitly zero.
///
/// The merge order is a linear extension of happened-before (it preserves
/// every thread and object chain), so `later → earlier` is impossible and
/// `earlier` can never strictly dominate `later` (Theorem 1).  That
/// collapses the four-way clock compare to a one-directional check: the
/// pair is concurrent iff `earlier` is *not* componentwise `≤ later` — and
/// the first component where `earlier` exceeds `later` proves it, so
/// concurrent pairs exit early.
fn flat_concurrent_with_later(earlier: &[u64], later: &[u64]) -> bool {
    debug_assert!(
        !(earlier
            .iter()
            .enumerate()
            .all(|(k, &e)| e >= later.get(k).copied().unwrap_or(0))
            && later
                .iter()
                .enumerate()
                .any(|(k, &l)| earlier.get(k).copied().unwrap_or(0) > l)),
        "an earlier-stamped event cannot dominate a later one"
    );
    let n = earlier.len().min(later.len());
    earlier[..n].iter().zip(later).any(|(&e, &l)| e > l) || earlier[n..].iter().any(|&e| e > 0)
}

/// Returns `true` iff `stamp ≤ watermark` componentwise — the prune
/// condition — where components past either slice's width are zero.
fn flat_below_watermark(stamp: &[u64], watermark: &[u64]) -> bool {
    let n = stamp.len().min(watermark.len());
    stamp[..n].iter().zip(watermark).all(|(&a, &w)| a <= w) && stamp[n..].iter().all(|&a| a == 0)
}

impl EventSink for ConflictSink {
    fn name(&self) -> &str {
        "conflict"
    }

    fn accept_batch(&mut self, batch: &[StampedEvent]) -> Result<(), SinkError> {
        for ev in batch {
            self.ingest(ev.thread, ev.object, ev.kind, &ev.timestamp);
        }
        self.prune_touched();
        Ok(())
    }

    fn accept_columns(
        &mut self,
        events: &[(ThreadId, ObjectId, OpKind)],
        stamps: &mut Vec<VectorTimestamp>,
    ) -> Result<(), SinkError> {
        debug_assert_eq!(events.len(), stamps.len());
        for (&(thread, object, kind), stamp) in events.iter().zip(stamps.iter()) {
            self.ingest(thread, object, kind, stamp);
        }
        // The sink copies what it retains into its flat arrays, so the
        // owned stamps are simply consumed (dropped in one pass).
        stamps.clear();
        self.prune_touched();
        Ok(())
    }

    fn events_accepted(&self) -> usize {
        self.accepted
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------------
// CompetitiveSink
// ---------------------------------------------------------------------------

/// Windowed competitive-ratio tracking as a sink: every stamped batch
/// reveals its thread–object edges to an [`IncrementalOptimum`], and one
/// [`TrajectoryPoint`] per batch records the provisioned clock width (the
/// widest stamp seen) against the offline optimum of the revealed graph.
///
/// The trajectory window keeps the last `capacity` points, so memory stays
/// constant over arbitrarily long runs while the recent trend — is the
/// provisioned clock drifting away from what the revealed graph actually
/// needs? — remains queryable.
#[derive(Debug)]
pub struct CompetitiveSink {
    optimum: IncrementalOptimum,
    online_width: usize,
    accepted: usize,
    capacity: usize,
    trajectory: VecDeque<TrajectoryPoint>,
}

impl CompetitiveSink {
    /// The default trajectory window (in stamped batches).
    pub const DEFAULT_WINDOW: usize = 64;

    /// Creates a tracker with the default trajectory window.
    pub fn new() -> Self {
        Self::with_window(Self::DEFAULT_WINDOW)
    }

    /// Creates a tracker keeping the last `capacity` per-batch points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_window(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity trajectory records nothing");
        Self {
            optimum: IncrementalOptimum::new(),
            online_width: 0,
            accepted: 0,
            capacity,
            trajectory: VecDeque::new(),
        }
    }

    /// Distinct thread–object edges revealed so far.
    pub fn revealed_edges(&self) -> usize {
        self.optimum.graph().edge_count()
    }

    /// The offline optimum (minimum vertex cover) of the revealed graph.
    pub fn offline_optimum(&self) -> usize {
        self.optimum.cover_size()
    }

    /// The widest stamp seen — the clock width the run actually pays for.
    pub fn online_size(&self) -> usize {
        self.online_width
    }

    /// The in-window trajectory, oldest first (at most the configured
    /// window length).
    pub fn trajectory(&self) -> impl Iterator<Item = &TrajectoryPoint> {
        self.trajectory.iter()
    }

    /// The most recent per-batch point, if any batch carried events.
    pub fn latest(&self) -> Option<TrajectoryPoint> {
        self.trajectory.back().copied()
    }

    /// The current competitive ratio (provisioned width over revealed
    /// optimum; 1.0 before any event).
    pub fn ratio(&self) -> f64 {
        self.latest().map_or(1.0, |p| p.ratio())
    }

    /// The worst ratio among the in-window points (1.0 before any event).
    pub fn worst_ratio(&self) -> f64 {
        self.trajectory
            .iter()
            .map(TrajectoryPoint::ratio)
            .fold(1.0, f64::max)
    }

    fn ingest(&mut self, thread: ThreadId, object: ObjectId, width: usize) {
        self.optimum.insert_edge(thread.index(), object.index());
        self.online_width = self.online_width.max(width);
        self.accepted += 1;
    }

    fn sample(&mut self) {
        self.trajectory.push_back(TrajectoryPoint {
            revealed_edges: self.revealed_edges(),
            online_size: self.online_width,
            offline_optimum: self.optimum.cover_size(),
        });
        if self.trajectory.len() > self.capacity {
            self.trajectory.pop_front();
        }
    }
}

impl Default for CompetitiveSink {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink for CompetitiveSink {
    fn name(&self) -> &str {
        "competitive"
    }

    fn accept_batch(&mut self, batch: &[StampedEvent]) -> Result<(), SinkError> {
        if batch.is_empty() {
            return Ok(());
        }
        for ev in batch {
            self.ingest(ev.thread, ev.object, ev.timestamp.len());
        }
        self.sample();
        Ok(())
    }

    fn accept_columns(
        &mut self,
        events: &[(ThreadId, ObjectId, OpKind)],
        stamps: &mut Vec<VectorTimestamp>,
    ) -> Result<(), SinkError> {
        debug_assert_eq!(events.len(), stamps.len());
        if events.is_empty() {
            stamps.clear();
            return Ok(());
        }
        for (&(thread, object, _), stamp) in events.iter().zip(stamps.iter()) {
            self.ingest(thread, object, stamp.len());
        }
        stamps.clear();
        self.sample();
        Ok(())
    }

    fn events_accepted(&self) -> usize {
        self.accepted
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictAnalyzer;
    use mvc_core::{replay, OfflineOptimizer, TimestampingEngine};
    use mvc_trace::Computation;

    /// Stamps `ops` with the offline-optimal clock and returns the
    /// computation plus one [`StampedEvent`] per operation.
    fn stamped(ops: &[(usize, usize, OpKind)]) -> (Computation, Vec<StampedEvent>) {
        let mut c = Computation::new();
        for &(t, o, k) in ops {
            c.record_op(ThreadId(t), ObjectId(o), k);
        }
        let plan = OfflineOptimizer::new().plan_for_computation(&c);
        let mut engine = TimestampingEngine::with_components(plan.components().clone());
        let run = replay(&mut engine, &c).unwrap();
        let events = c
            .events()
            .zip(run.timestamps)
            .map(|(e, timestamp)| StampedEvent {
                thread: e.thread,
                object: e.object,
                kind: e.kind,
                timestamp,
            })
            .collect();
        (c, events)
    }

    #[test]
    fn reach_sink_answers_in_window_queries() {
        let (c, events) = stamped(&[
            (0, 0, OpKind::Write),
            (0, 1, OpKind::Write),
            (1, 1, OpKind::Read),
            (2, 2, OpKind::Write),
        ]);
        let mut sink = ReachabilityIndexSink::unbounded();
        sink.accept_batch(&events).unwrap();
        let oracle = c.causality_oracle();
        for a in 0..events.len() {
            for b in 0..events.len() {
                let (a, b) = (EventId(a), EventId(b));
                assert_eq!(
                    sink.happened_before(a, b),
                    Some(oracle.happened_before(a, b))
                );
                assert_eq!(sink.concurrent(a, b), Some(oracle.concurrent(a, b)));
            }
        }
        assert_eq!(sink.spilled(), 0);
        assert_eq!(sink.events_accepted(), 4);
        assert_eq!(sink.event(EventId(3)), Some((ThreadId(2), ObjectId(2))));
    }

    #[test]
    fn reach_sink_window_evicts_and_reports_spill() {
        let ops: Vec<_> = (0..10).map(|i| (i % 2, 0, OpKind::Write)).collect();
        let (_, events) = stamped(&ops);
        let mut sink = ReachabilityIndexSink::with_capacity(4);
        sink.accept_batch(&events).unwrap();
        assert_eq!(sink.spilled(), 6);
        assert_eq!(sink.capacity(), 4);
        assert!(!sink.contains(EventId(5)));
        assert!(sink.contains(EventId(6)));
        assert_eq!(sink.compare(EventId(0), EventId(9)), None, "evicted");
        assert_eq!(
            sink.happened_before(EventId(6), EventId(9)),
            Some(true),
            "same object chain, both in window"
        );
        assert_eq!(sink.compare(EventId(9), EventId(10)), None, "not accepted");
    }

    #[test]
    fn reach_sink_frontiers_track_latest_chain_stamps() {
        let (_, events) = stamped(&[
            (0, 0, OpKind::Write),
            (1, 0, OpKind::Write),
            (0, 1, OpKind::Write),
        ]);
        let mut sink = ReachabilityIndexSink::with_capacity(1);
        sink.accept_batch(&events).unwrap();
        // Frontiers survive eviction: thread 1's last stamp is event 1's.
        assert_eq!(
            sink.thread_frontier(ThreadId(1)),
            Some(&events[1].timestamp)
        );
        assert_eq!(
            sink.object_frontier(ObjectId(0)),
            Some(&events[1].timestamp)
        );
        assert_eq!(
            sink.object_frontier(ObjectId(1)),
            Some(&events[2].timestamp)
        );
        assert_eq!(sink.thread_frontier(ThreadId(7)), None);
    }

    #[test]
    fn reach_sink_equal_event_is_not_concurrent() {
        let (_, events) = stamped(&[(0, 0, OpKind::Write)]);
        let mut sink = ReachabilityIndexSink::unbounded();
        sink.accept_batch(&events).unwrap();
        assert_eq!(sink.concurrent(EventId(0), EventId(0)), Some(false));
        assert_eq!(sink.happened_before(EventId(0), EventId(0)), Some(false));
    }

    /// Feeds the same stamped stream to the streaming sink and the post-hoc
    /// analyzer and asserts identical flagged pairs.
    fn assert_conflict_parity(ops: &[(usize, usize, OpKind)], groups: Vec<Vec<ObjectId>>) {
        let (c, events) = stamped(ops);
        let analyzer = ConflictAnalyzer::with_groups(groups);
        let mut sink = ConflictSink::mirroring(&analyzer);
        // Deliver in small batches to exercise cross-batch retention.
        for chunk in events.chunks(2) {
            sink.accept_batch(chunk).unwrap();
        }
        let mut streaming = sink.into_conflicts();
        let mut posthoc = analyzer.analyze(&c);
        streaming.sort();
        posthoc.sort();
        assert_eq!(streaming, posthoc);
    }

    #[test]
    fn conflict_sink_matches_posthoc_analyzer() {
        use OpKind::{Read, Write};
        assert_conflict_parity(
            &[(0, 0, Write), (1, 1, Write)],
            vec![vec![ObjectId(0), ObjectId(1)]],
        );
        assert_conflict_parity(
            &[(0, 0, Write), (1, 0, Read), (1, 1, Write)],
            vec![vec![ObjectId(0), ObjectId(1)]],
        );
        assert_conflict_parity(
            &[(0, 0, Read), (1, 1, Read)],
            vec![vec![ObjectId(0), ObjectId(1)]],
        );
        assert_conflict_parity(
            &[
                (0, 0, Write),
                (1, 1, Write),
                (2, 2, Write),
                (3, 3, Write),
                (0, 2, Write),
                (3, 1, Read),
            ],
            vec![
                vec![ObjectId(0), ObjectId(1)],
                vec![ObjectId(2), ObjectId(3)],
                vec![ObjectId(1), ObjectId(2)],
            ],
        );
    }

    #[test]
    fn conflict_sink_dedupes_group_objects() {
        let mut sink = ConflictSink::new();
        let g = sink.add_group([ObjectId(0), ObjectId(1), ObjectId(0)]);
        assert_eq!(sink.group_objects(g), &[ObjectId(0), ObjectId(1)]);
        let (_, events) = stamped(&[(0, 0, OpKind::Write), (1, 1, OpKind::Write)]);
        sink.accept_batch(&events).unwrap();
        assert_eq!(sink.conflicts().len(), 1, "one membership, one pair");
    }

    #[test]
    fn conflict_sink_prunes_retained_state_on_contended_objects() {
        // 200 writes, two threads cycling over a two-object group: the
        // object chains keep serialising the threads against each other, so
        // the watermark advances and old events get pruned; retention must
        // stay far below the run length.
        let ops: Vec<_> = (0..200)
            .map(|i| (i % 2, (i / 2) % 2, OpKind::Write))
            .collect();
        let (c, events) = stamped(&ops);
        let analyzer = ConflictAnalyzer::with_groups([vec![ObjectId(0), ObjectId(1)]]);
        let mut sink = ConflictSink::mirroring(&analyzer);
        for chunk in events.chunks(8) {
            sink.accept_batch(chunk).unwrap();
        }
        assert!(
            sink.retained_events() <= 16,
            "watermark prune failed: {} events retained",
            sink.retained_events()
        );
        let mut streaming = sink.into_conflicts();
        let mut posthoc = analyzer.analyze(&c);
        streaming.sort();
        posthoc.sort();
        assert_eq!(streaming, posthoc, "pruning must not lose pairs");
    }

    #[test]
    fn conflict_sink_without_groups_flags_nothing() {
        let (_, events) = stamped(&[(0, 0, OpKind::Write), (1, 1, OpKind::Write)]);
        let mut sink = ConflictSink::new();
        sink.accept_batch(&events).unwrap();
        assert!(sink.conflicts().is_empty());
        assert_eq!(sink.events_accepted(), 2);
        assert_eq!(sink.group_count(), 0);
    }

    #[test]
    fn competitive_sink_tracks_revealed_optimum_per_batch() {
        // Ten threads all touching one object: revealed optimum is 1.
        let ops: Vec<_> = (0..10).map(|t| (t, 0, OpKind::Write)).collect();
        let (_, events) = stamped(&ops);
        let mut sink = CompetitiveSink::new();
        for chunk in events.chunks(3) {
            sink.accept_batch(chunk).unwrap();
        }
        assert_eq!(sink.offline_optimum(), 1);
        assert_eq!(sink.revealed_edges(), 10);
        assert_eq!(sink.online_size(), 1, "offline-optimal clock is width 1");
        assert_eq!(sink.ratio(), 1.0);
        assert_eq!(sink.trajectory().count(), 4, "one point per batch");
        assert_eq!(sink.events_accepted(), 10);
    }

    #[test]
    fn competitive_sink_window_is_bounded() {
        let (_, events) = stamped(&[(0, 0, OpKind::Write), (1, 1, OpKind::Write)]);
        let mut sink = CompetitiveSink::with_window(3);
        for _ in 0..10 {
            sink.accept_batch(&events).unwrap();
        }
        assert_eq!(sink.trajectory().count(), 3);
        assert!(sink.worst_ratio() >= 1.0);
        assert!(sink.latest().is_some());
        // Ratio is provisioned width over revealed optimum — both 2 here.
        assert_eq!(sink.ratio(), 1.0);
    }

    #[test]
    fn competitive_sink_empty_batches_add_no_points() {
        let mut sink = CompetitiveSink::new();
        sink.accept_batch(&[]).unwrap();
        assert_eq!(sink.trajectory().count(), 0);
        assert_eq!(sink.ratio(), 1.0);
        assert_eq!(sink.worst_ratio(), 1.0);
    }

    #[test]
    fn analysis_sinks_compose_under_tee() {
        let (_, events) = stamped(&[
            (0, 0, OpKind::Write),
            (1, 1, OpKind::Write),
            (0, 1, OpKind::Read),
        ]);
        let mut tee = mvc_core::sink::TeeSink::new(vec![
            Box::new(mvc_core::sink::MemoryRecorder::new()) as Box<dyn EventSink>,
            Box::new(ConflictSink::with_groups([vec![ObjectId(0), ObjectId(1)]])),
            Box::new(ReachabilityIndexSink::unbounded()),
            Box::new(CompetitiveSink::new()),
        ]);
        tee.accept_batch(&events).unwrap();
        assert_eq!(tee.events_accepted(), 3);
        let children = tee.into_children();
        let conflict = children[1].as_any().downcast_ref::<ConflictSink>().unwrap();
        assert_eq!(conflict.conflicts().len(), 1);
        let reach = children[2]
            .as_any()
            .downcast_ref::<ReachabilityIndexSink>()
            .unwrap();
        assert_eq!(reach.concurrent(EventId(0), EventId(1)), Some(true));
        let comp = children[3]
            .as_any()
            .downcast_ref::<CompetitiveSink>()
            .unwrap();
        assert!(comp.ratio() >= 1.0);
    }

    // The guarantee that the streaming hot path never invokes the offline
    // planner is enforced by mvc-lint's `analysis-no-offline-planner` rule
    // (see lint.toml and docs/LINTS.md), which replaced the source-scan
    // test that used to live here.
}

/// Ignored-by-default profiling probe for the conflict sink's hot path.
/// Run with `cargo test --release -p mvc-runtime profile_conflict_sink --
/// --ignored --nocapture` when tuning; the conflict and retained counts
/// double as a quick parity sanity check across optimisations (overlapping
/// groups deliberately stress the multi-membership path).
#[cfg(test)]
mod profiling {
    use super::*;
    use mvc_core::{replay, OfflineOptimizer, TimestampingEngine};
    use mvc_trace::{WorkloadBuilder, WorkloadKind};

    #[test]
    #[ignore]
    fn profile_conflict_sink() {
        for (threads, objects) in [(8usize, 8usize), (8, 64)] {
            let c = WorkloadBuilder::new(threads, objects)
                .operations(100_000)
                .kind(WorkloadKind::Uniform)
                .seed(42)
                .build();
            let plan = OfflineOptimizer::new().plan_for_computation(&c);
            let mut engine = TimestampingEngine::with_components(plan.components().clone());
            let run = replay(&mut engine, &c).unwrap();
            let events: Vec<StampedEvent> = c
                .events()
                .zip(run.timestamps)
                .map(|(e, timestamp)| StampedEvent {
                    thread: e.thread,
                    object: e.object,
                    kind: e.kind,
                    timestamp,
                })
                .collect();
            let mut sink = ConflictSink::with_groups(
                (0..objects - 1).map(|o| vec![ObjectId(o), ObjectId(o + 1)]),
            );
            let start = std::time::Instant::now();
            for chunk in events.chunks(4096) {
                sink.accept_batch(chunk).unwrap();
            }
            let elapsed = start.elapsed();
            println!(
                "{threads}x{objects}: width={} {:?} for 100k events ({:.0} eps), {} conflicts, {} retained",
                plan.components().len(),
                elapsed,
                100_000.0 / elapsed.as_secs_f64(),
                sink.conflicts().len(),
                sink.retained_events()
            );
        }
    }
}
