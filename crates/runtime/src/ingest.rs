//! Per-thread segmented ingest buffers and the order-preserving merge.
//!
//! The paper's model needs exactly two orders to survive tracing: each
//! thread's program order and each object's serialization order.  The old
//! runtime got both by funnelling every event through one global channel —
//! correct, but every producer contends on the same lock.  This module keeps
//! the two orders with *no* cross-producer contention:
//!
//! * **Per-thread buffers.**  Every [`ThreadHandle`](crate::ThreadHandle)
//!   owns a segmented queue ([`crossbeam::queue::SegQueue`]); a traced
//!   operation is pushed onto the *performing thread's own* queue, so
//!   producers never touch each other's buffers.  Queue order is program
//!   order by construction.
//! * **Per-object sequence numbers.**  Each
//!   [`SharedObject`](crate::SharedObject) carries one atomic counter,
//!   bumped *while the object's lock is held*; the ticket an operation draws
//!   is its position in the object's serialization order.
//! * **Order-preserving merge.**  The drain side runs a k-way merge over the
//!   thread buffers (`OrderedMerge`): a buffered event is emitted only
//!   when it is the next unconsumed ticket of its object, and events of one
//!   thread are only consumed front-to-back.  The merged stream is therefore
//!   a linear extension of both chain families — a faithful interleaving,
//!   exactly what the single channel produced.
//!
//! **Why the merge cannot deadlock on a quiescent buffer set** (all
//! producers finished or between operations): consider the unconsumed event
//! `e` that drew its ticket earliest in real time.  Every smaller ticket of
//! `e`'s object was drawn earlier still, so those events are all consumed —
//! `e` is its object's next ticket.  Every earlier operation of `e`'s thread
//! also drew its ticket earlier (a thread runs its operations one after
//! another), so they are consumed too — `e` is at the front of its buffer.
//! Hence `e` is emittable, and induction drains everything.  While producers
//! are mid-operation the merge may stall on a ticket that exists but is not
//! yet published; it simply reports no progress and the next drain resumes —
//! the same "concurrent operations may or may not be included" contract the
//! channel had.

use std::sync::Arc;

use crossbeam::queue::SegQueue;

use mvc_trace::{ObjectId, OpKind, ThreadId};

use crate::session::RawEvent;

/// One traced operation as it sits in a thread's ingest buffer: the raw
/// event plus the per-object serialization ticket drawn under the object's
/// lock.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SequencedEvent {
    pub(crate) thread: ThreadId,
    pub(crate) object: ObjectId,
    pub(crate) kind: OpKind,
    /// Position in the object's serialization order (0-based).
    pub(crate) object_seq: u64,
}

/// A thread's ingest buffer.  Cheap to clone (the queue is shared).
pub(crate) type ThreadBuffer = Arc<SegQueue<SequencedEvent>>;

/// Creates a fresh, empty thread buffer.
pub(crate) fn new_thread_buffer() -> ThreadBuffer {
    Arc::new(SegQueue::new())
}

/// Events moved per `pop_batch` lock acquisition when draining a buffer.
/// Bounding the batch bounds how long the drain holds a buffer's internal
/// lock, so a producer mid-`push` (which runs while the traced object's
/// lock is held!) is never stalled behind an O(backlog) move.
const POP_BATCH: usize = 1024;

/// Default per-call emission budget for [`OrderedMerge::drain`].  Consumers
/// process each drained batch (stamp it, record it) immediately, so a
/// bounded batch is still cache-warm when it is consumed — unbounded drains
/// of a large backlog would walk every event twice with the first pass long
/// evicted.
pub(crate) const DRAIN_BUDGET: usize = 4096;

/// A thread's drained-but-unemitted events: a vector with a consumed-prefix
/// cursor, so [`SegQueue::pop_batch`] appends straight into it (no
/// middle-man copy) and the merge pops from the front in O(1).
#[derive(Debug, Default)]
struct Stash {
    events: Vec<SequencedEvent>,
    head: usize,
}

impl Stash {
    fn front(&self) -> Option<&SequencedEvent> {
        self.events.get(self.head)
    }

    fn advance(&mut self) {
        self.head += 1;
        if self.head == self.events.len() {
            self.events.clear();
            self.head = 0;
        }
    }

    fn is_empty(&self) -> bool {
        self.head == self.events.len()
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.events.len() - self.head
    }

    /// Moves everything currently published in `buffer` onto the stash
    /// tail.  The consumed prefix is compacted away only once it outweighs
    /// the live tail, so each event is moved O(1) amortized times no matter
    /// how many bounded merge rounds nibble at the front.
    fn refill(&mut self, buffer: &SegQueue<SequencedEvent>) {
        if self.head * 2 > self.events.len() {
            self.events.drain(..self.head);
            self.head = 0;
        }
        // Bounded batches, re-acquiring the lock between them, so
        // producers interleave freely with a large drain.
        while buffer.pop_batch(&mut self.events, POP_BATCH) > 0 {}
    }
}

/// Every how many drains the queue-depth gauge is sampled. Sampling reads
/// every producer's buffer length — 64 producer-written cache lines on the
/// acceptance workload — so doing it each drain would make the pump's spin
/// loop interfere with the producers it is draining.
const DEPTH_SAMPLE_PERIOD: u32 = 64;

/// Handles into the process-global metrics registry, resolved once per
/// merge. Names are catalogued in `docs/OBSERVABILITY.md`; every update is
/// batch-granular, so an enabled registry costs a handful of `Relaxed`
/// read-modify-writes per *drain*, never per event.
#[derive(Debug)]
struct MergeMetrics {
    /// `ingest.queue_depth` (gauge, events): backlog sitting in the shared
    /// thread buffers, sampled every [`DEPTH_SAMPLE_PERIOD`]th drain.
    queue_depth: mvc_obs::Gauge,
    /// Drain counter driving the depth sampling period.
    depth_tick: u32,
    /// `ingest.merge.emitted` (counter, events): merged into the faithful
    /// interleaving.
    emitted: mvc_obs::Counter,
    /// `ingest.merge.parked` (counter, parks): threads parked behind an
    /// out-of-order object ticket during a merge pass.
    parked: mvc_obs::Counter,
    /// `ingest.merge.stalls` (counter, passes): merge passes that emitted
    /// nothing while events were stashed — every front event waits on a
    /// ticket a still-running producer has drawn but not yet published.
    stalls: mvc_obs::Counter,
    /// `ingest.drain.budget_exhausted` (counter, drains): drains that used
    /// their whole emission budget, i.e. more work was immediately ready.
    budget_exhausted: mvc_obs::Counter,
}

impl Default for MergeMetrics {
    fn default() -> Self {
        let registry = mvc_obs::global();
        Self {
            queue_depth: registry.gauge("ingest.queue_depth"),
            depth_tick: 0,
            emitted: registry.counter("ingest.merge.emitted"),
            parked: registry.counter("ingest.merge.parked"),
            stalls: registry.counter("ingest.merge.stalls"),
            budget_exhausted: registry.counter("ingest.drain.budget_exhausted"),
        }
    }
}

/// Drain-side state of the k-way merge: per-thread stashes of events popped
/// from the shared buffers but not yet emittable, and each object's next
/// expected ticket.
///
/// The merge is incremental — state survives across [`drain`] calls, so a
/// live session can pump repeatedly while producers keep running.
///
/// [`drain`]: OrderedMerge::drain
#[derive(Debug, Default)]
pub(crate) struct OrderedMerge {
    /// Process-global metric handles (resolved once, recorded per drain).
    metrics: MergeMetrics,
    /// Popped-but-unemitted events, per thread, in program order.
    stash: Vec<Stash>,
    /// `next_expected[o]` is the ticket the merge will emit next for object
    /// `o`; grown on demand.
    next_expected: Vec<u64>,
    /// Scratch: threads whose stash front should be (re)examined.
    ready: Vec<usize>,
    /// Scratch: `waiting[o]` holds threads whose stash front is an
    /// out-of-order ticket on object `o`; they are re-examined when the
    /// merge emits on `o`.  Rebuilt every drain call.
    waiting: Vec<Vec<usize>>,
}

impl OrderedMerge {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Pulls everything currently published in `buffers`, merges emittable
    /// events onto `out` (a faithful interleaving) up to `max_events`, and
    /// returns how many events were emitted.
    ///
    /// Returning `0` means no further progress is possible right now: the
    /// buffers are drained, or every buffered event is stalled behind a
    /// ticket that a still-running producer has drawn but not yet published.
    /// A return of exactly `max_events` may mean more events are already
    /// mergeable — call again (callers loop anyway, consuming each bounded
    /// batch while it is cache-warm).
    pub(crate) fn drain(
        &mut self,
        buffers: &[ThreadBuffer],
        out: &mut Vec<RawEvent>,
        max_events: usize,
    ) -> usize {
        if self.stash.len() < buffers.len() {
            self.stash.resize_with(buffers.len(), Default::default);
        }
        if mvc_obs::global().enabled() {
            // Sampled, and only every DEPTH_SAMPLE_PERIODth drain: `len`
            // walks each producer's segment ring, and a live pump spins on
            // drain while producers run — touching 64 producer-written
            // cache lines per spin measurably slows the producers down.
            self.metrics.depth_tick = self.metrics.depth_tick.wrapping_add(1);
            if self.metrics.depth_tick.is_multiple_of(DEPTH_SAMPLE_PERIOD) {
                let depth: usize = buffers.iter().map(|b| b.len()).sum();
                self.metrics
                    .queue_depth
                    .set(i64::try_from(depth).unwrap_or(i64::MAX));
            }
        }
        for (thread, buffer) in buffers.iter().enumerate() {
            self.stash[thread].refill(buffer);
        }
        let emitted = self.merge(out, max_events);
        if emitted == max_events && max_events > 0 {
            self.metrics.budget_exhausted.inc();
        }
        emitted
    }

    /// Number of events popped from the buffers but not yet emitted
    /// (stalled behind unpublished tickets).
    #[cfg(test)]
    pub(crate) fn stalled(&self) -> usize {
        self.stash.iter().map(Stash::len).sum()
    }

    /// The k-way merge pass over the current stashes, emitting at most
    /// `max_events`.
    ///
    /// Cost is O(emitted + waiting wake-ups): a thread is examined when it
    /// first has events, after each of its own emissions, and once per
    /// emission on the object its front event waits for.
    fn merge(&mut self, out: &mut Vec<RawEvent>, max_events: usize) -> usize {
        let emitted_before = out.len();
        let out_cap = emitted_before.saturating_add(max_events);
        let mut parked: u64 = 0;
        for w in &mut self.waiting {
            w.clear();
        }
        self.ready.clear();
        self.ready
            .extend((0..self.stash.len()).filter(|&t| !self.stash[t].is_empty()));
        'threads: while let Some(thread) = self.ready.pop() {
            while let Some(&front) = self.stash[thread].front() {
                if out.len() == out_cap {
                    // Budget reached; leftover stash is picked up by the
                    // next call (ready/waiting are rebuilt from scratch).
                    break 'threads;
                }
                let object = front.object.index();
                if self.next_expected.len() <= object {
                    self.next_expected.resize(object + 1, 0);
                }
                if self.next_expected[object] != front.object_seq {
                    // Out of order: park this thread until the merge emits
                    // the object's current ticket.
                    if self.waiting.len() <= object {
                        self.waiting.resize_with(object + 1, Vec::new);
                    }
                    self.waiting[object].push(thread);
                    parked += 1;
                    break;
                }
                self.next_expected[object] += 1;
                self.stash[thread].advance();
                out.push((front.thread, front.object, front.kind));
                // Emitting on this object may unblock parked threads.
                if let Some(waiters) = self.waiting.get_mut(object) {
                    self.ready.append(waiters);
                }
            }
        }
        let emitted = out.len() - emitted_before;
        if emitted > 0 {
            self.metrics.emitted.add(emitted as u64);
        } else if self.stash.iter().any(|s| !s.is_empty()) {
            self.metrics.stalls.inc();
        }
        if parked > 0 {
            self.metrics.parked.add(parked);
        }
        emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: usize, object: usize, seq: u64) -> SequencedEvent {
        SequencedEvent {
            thread: ThreadId(thread),
            object: ObjectId(object),
            kind: OpKind::Op,
            object_seq: seq,
        }
    }

    fn order(out: &[RawEvent]) -> Vec<(usize, usize)> {
        out.iter()
            .map(|&(t, o, _)| (t.index(), o.index()))
            .collect()
    }

    #[test]
    fn single_thread_drains_in_program_order() {
        let buffer = new_thread_buffer();
        for (i, o) in [0, 1, 0, 2].into_iter().enumerate() {
            let seq = if o == 0 && i == 2 { 1 } else { 0 };
            buffer.push(ev(0, o, seq));
        }
        let mut merge = OrderedMerge::new();
        let mut out = Vec::new();
        assert_eq!(merge.drain(&[buffer], &mut out, usize::MAX), 4);
        assert_eq!(order(&out), vec![(0, 0), (0, 1), (0, 0), (0, 2)]);
        assert_eq!(merge.stalled(), 0);
    }

    #[test]
    fn merge_respects_object_serialization_across_threads() {
        // Object 0's serialization order is T1 then T0, even though T0's
        // buffer is scanned first.
        let b0 = new_thread_buffer();
        let b1 = new_thread_buffer();
        b0.push(ev(0, 0, 1));
        b1.push(ev(1, 0, 0));
        let mut merge = OrderedMerge::new();
        let mut out = Vec::new();
        assert_eq!(merge.drain(&[b0, b1], &mut out, usize::MAX), 2);
        assert_eq!(order(&out), vec![(1, 0), (0, 0)]);
    }

    #[test]
    fn merge_chains_wakeups_through_multiple_objects() {
        // T0: o0#1, o1#1 ; T1: o1#0, o0#0 — emitting T1's events unblocks
        // T0's, one object at a time.
        let b0 = new_thread_buffer();
        let b1 = new_thread_buffer();
        b0.push(ev(0, 0, 1));
        b0.push(ev(0, 1, 1));
        b1.push(ev(1, 1, 0));
        b1.push(ev(1, 0, 0));
        let mut merge = OrderedMerge::new();
        let mut out = Vec::new();
        assert_eq!(merge.drain(&[b0, b1], &mut out, usize::MAX), 4);
        assert_eq!(order(&out), vec![(1, 1), (1, 0), (0, 0), (0, 1)]);
    }

    #[test]
    fn unpublished_ticket_stalls_without_losing_events() {
        // Ticket 0 of object 0 was drawn by a producer that has not
        // published yet: everything behind it stalls, then resumes.
        let b0 = new_thread_buffer();
        b0.push(ev(0, 0, 1));
        let b1 = new_thread_buffer();
        let mut merge = OrderedMerge::new();
        let mut out = Vec::new();
        assert_eq!(
            merge.drain(&[b0.clone(), b1.clone()], &mut out, usize::MAX),
            0
        );
        assert_eq!(merge.stalled(), 1, "the event is parked, not lost");
        // The slow producer publishes; the next drain emits both in order.
        b1.push(ev(1, 0, 0));
        assert_eq!(merge.drain(&[b0, b1], &mut out, usize::MAX), 2);
        assert_eq!(order(&out), vec![(1, 0), (0, 0)]);
        assert_eq!(merge.stalled(), 0);
    }

    #[test]
    fn merge_state_survives_across_drains() {
        let b0 = new_thread_buffer();
        b0.push(ev(0, 0, 0));
        let mut merge = OrderedMerge::new();
        let mut out = Vec::new();
        assert_eq!(
            merge.drain(std::slice::from_ref(&b0), &mut out, usize::MAX),
            1
        );
        // Next ticket on the same object continues from the merged state.
        b0.push(ev(0, 0, 1));
        assert_eq!(merge.drain(&[b0], &mut out, usize::MAX), 1);
        assert_eq!(order(&out), vec![(0, 0), (0, 0)]);
    }

    #[test]
    fn late_threads_grow_the_merge() {
        let b0 = new_thread_buffer();
        b0.push(ev(0, 0, 0));
        let mut merge = OrderedMerge::new();
        let mut out = Vec::new();
        assert_eq!(
            merge.drain(std::slice::from_ref(&b0), &mut out, usize::MAX),
            1
        );
        let b1 = new_thread_buffer();
        b1.push(ev(1, 0, 1));
        assert_eq!(merge.drain(&[b0, b1], &mut out, usize::MAX), 1);
        assert_eq!(order(&out), vec![(0, 0), (1, 0)]);
    }
}
