//! The pipeline driver: ingest → [`Timestamper::observe_batch`] →
//! [`EventSink`].
//!
//! `PipelineState` owns everything between the producers' segmented
//! buffers and the sink: the order-preserving merge, the merged-but-
//! unstamped backlog, and the stamped-but-unsunk backlog.  Both
//! [`LiveSession::pump`](crate::LiveSession::pump) and
//! [`TraceSession::into_computation`](crate::TraceSession::into_computation)
//! are thin wrappers over it, so there is exactly one drain loop in the
//! runtime.
//!
//! **Failure containment.**  Each stage's backlog holds exactly what its
//! downstream stage refused, so no operation that really executed is ever
//! lost: a [`TimestampError`] leaves the failing event (and its suffix) in
//! the unstamped backlog; a [`SinkError`] leaves the whole stamped batch in
//! the stamped backlog.  The next pump retries the backlogs first — the
//! caller recovers (adds a component, frees disk space) and simply pumps
//! again.

use std::fmt;

use mvc_clock::VectorTimestamp;
use mvc_core::sink::{EventSink, SinkError};
use mvc_core::{TimestampError, Timestamper};
use mvc_trace::{ObjectId, ThreadId};

use crate::ingest::OrderedMerge;
use crate::session::{RawEvent, SessionInner};

/// Errors reported by a pipeline pump: either the stamping stage or the
/// egress stage refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The timestamper could not stamp an event (see [`TimestampError`]);
    /// the failing event and everything merged behind it are held back.
    Timestamp(TimestampError),
    /// The sink refused a stamped batch (see [`SinkError`]); the batch is
    /// held back and re-offered on the next pump.
    Sink(SinkError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Timestamp(e) => write!(f, "timestamping stage failed: {e}"),
            PipelineError::Sink(e) => write!(f, "sink stage failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Timestamp(e) => Some(e),
            PipelineError::Sink(e) => Some(e),
        }
    }
}

impl From<TimestampError> for PipelineError {
    fn from(e: TimestampError) -> Self {
        PipelineError::Timestamp(e)
    }
}

impl From<SinkError> for PipelineError {
    fn from(e: SinkError) -> Self {
        PipelineError::Sink(e)
    }
}

impl PipelineError {
    /// The stamping-stage error, if that is what failed — convenience for
    /// recovery code that only handles coverage errors.
    pub fn as_timestamp_error(&self) -> Option<&TimestampError> {
        match self {
            PipelineError::Timestamp(e) => Some(e),
            PipelineError::Sink(_) => None,
        }
    }
}

/// Handles into the process-global metrics registry, resolved once per
/// pipeline. Names are catalogued in `docs/OBSERVABILITY.md`; everything
/// records at stamped-window granularity, so a disabled registry costs one
/// `Relaxed` load per window and an enabled one a few atomics plus two
/// clock reads per window.
#[derive(Debug)]
struct PipelineMetrics {
    /// `pipeline.batch_events` (histogram, events): size of each stamped
    /// window handed to the sink.
    batch_events: mvc_obs::Histogram,
    /// `pipeline.stamp_ns` (histogram, ns): latency of one
    /// `observe_batch` call.
    stamp_ns: mvc_obs::Histogram,
    /// `pipeline.sink_ns` (histogram, ns): latency of one
    /// `accept_columns` call.
    sink_ns: mvc_obs::Histogram,
    /// `pipeline.events_accepted` (counter, events): delivered to and
    /// accepted by the sink.
    events_accepted: mvc_obs::Counter,
    /// `pipeline.events_refused` (counter, events): offered to the sink
    /// and refused (held back for the next pump's retry).
    events_refused: mvc_obs::Counter,
    /// `pipeline.backlog_retries` (counter, pumps): pumps that began by
    /// re-offering a previously refused batch.
    backlog_retries: mvc_obs::Counter,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        let registry = mvc_obs::global();
        Self {
            batch_events: registry.histogram("pipeline.batch_events"),
            stamp_ns: registry.histogram("pipeline.stamp_ns"),
            sink_ns: registry.histogram("pipeline.sink_ns"),
            events_accepted: registry.counter("pipeline.events_accepted"),
            events_refused: registry.counter("pipeline.events_refused"),
            backlog_retries: registry.counter("pipeline.backlog_retries"),
        }
    }
}

/// Drain-side state of one session pipeline.
#[derive(Debug, Default)]
pub(crate) struct PipelineState {
    /// Process-global metric handles (resolved once, recorded per window).
    metrics: PipelineMetrics,
    merge: OrderedMerge,
    /// Merged interleaving not yet stamped (the failing event and its
    /// suffix after a [`TimestampError`]).  `cursor` marks the consumed
    /// prefix within a pump; it is compacted away before every return so
    /// the backlog between pumps is exactly the unstamped events.
    pending: Vec<RawEvent>,
    cursor: usize,
    /// Stamped batch a sink refused (events + parallel stamps), re-offered
    /// before new work.
    held_events: Vec<RawEvent>,
    held_stamps: Vec<VectorTimestamp>,
    /// Scratch for the `(thread, object)` view observe_batch takes.
    ops: Vec<(ThreadId, ObjectId)>,
    /// Scratch for the timestamps observe_batch appends.
    stamps: Vec<VectorTimestamp>,
}

/// Events merged, stamped and delivered per round.  Big enough to feed any
/// bulk fast path at full speed, small enough that (a) the stamping and
/// sink scratch buffers stay O(window) even when a rarely pumped session
/// has accumulated a huge backlog (the backlog itself necessarily stays
/// O(events) — windowing only stops it being walked twice), and (b) each
/// batch is still cache-warm from the merge when it is stamped and sunk.
const STAMP_WINDOW: usize = 4096;

impl PipelineState {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Pulls every currently available event through merge → stamp → sink,
    /// returning how many events the sink accepted.
    pub(crate) fn pump<T: Timestamper, S: EventSink>(
        &mut self,
        inner: &SessionInner,
        timestamper: &mut T,
        sink: &mut S,
    ) -> Result<usize, PipelineError> {
        let result = self.pump_inner(inner, timestamper, sink);
        // Compact the consumed prefix on every exit (errors return early),
        // so `pending` holds exactly the unstamped suffix for the retry.
        if self.cursor > 0 {
            self.pending.drain(..self.cursor);
            self.cursor = 0;
        }
        result
    }

    fn pump_inner<T: Timestamper, S: EventSink>(
        &mut self,
        inner: &SessionInner,
        timestamper: &mut T,
        sink: &mut S,
    ) -> Result<usize, PipelineError> {
        let mut delivered = 0;
        // Re-offer a batch the sink previously refused before stamping
        // anything new, so sink-side ordering is preserved.
        if !self.held_events.is_empty() {
            self.metrics.backlog_retries.inc();
            let span = self.metrics.sink_ns.span();
            let result = sink.accept_columns(&self.held_events, &mut self.held_stamps);
            span.stop();
            if let Err(e) = result {
                self.metrics
                    .events_refused
                    .add(self.held_events.len() as u64);
                return Err(e.into());
            }
            self.metrics
                .events_accepted
                .add(self.held_events.len() as u64);
            delivered += self.held_events.len();
            self.held_events.clear();
        }
        loop {
            if self.cursor == self.pending.len() {
                self.pending.clear();
                self.cursor = 0;
                let buffers = inner.buffer_snapshot();
                if self.merge.drain(&buffers, &mut self.pending, STAMP_WINDOW) == 0 {
                    return Ok(delivered);
                }
            }
            // Stamp in bounded windows so scratch memory stays O(window)
            // regardless of how large a backlog this pump is clearing.
            let window_end = (self.cursor + STAMP_WINDOW).min(self.pending.len());
            self.ops.clear();
            self.ops.extend(
                self.pending[self.cursor..window_end]
                    .iter()
                    .map(|&(thread, object, _)| (thread, object)),
            );
            self.stamps.clear();
            let stamp_span = self.metrics.stamp_ns.span();
            let outcome = timestamper.observe_batch(&self.ops, &mut self.stamps);
            stamp_span.stop();
            // Per the observe_batch contract exactly the stampable prefix
            // was appended; hand it on in column layout (the sink consumes
            // the stamps; hot backends never see a per-event struct).
            let done = self.stamps.len();
            if done > 0 {
                self.metrics.batch_events.record(done as u64);
                let events = &self.pending[self.cursor..self.cursor + done];
                let sink_span = self.metrics.sink_ns.span();
                let sink_result = sink.accept_columns(events, &mut self.stamps);
                sink_span.stop();
                if let Err(e) = sink_result {
                    // Hold the stamped-but-refused batch (its stamps were
                    // restored per the accept_columns contract) so the next
                    // pump re-offers it first; the timestamper must not see
                    // these events again.
                    self.metrics.events_refused.add(done as u64);
                    self.held_events.extend_from_slice(events);
                    std::mem::swap(&mut self.held_stamps, &mut self.stamps);
                    self.cursor += done;
                    return Err(e.into());
                }
                self.metrics.events_accepted.add(done as u64);
                delivered += done;
                self.cursor += done;
            }
            outcome?;
        }
    }
}
