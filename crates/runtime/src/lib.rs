//! Concurrent execution substrate: run real multithreaded workloads over
//! shared objects, record the thread–object trace, and track causality with
//! mixed vector clocks while the program runs.
//!
//! The paper evaluates on synthetic graphs; this crate supplies the missing
//! production piece — the instrumentation a real program would use:
//!
//! * [`session`] — [`TraceSession`]: registers threads, creates
//!   [`SharedObject`]s, and collects every operation into a
//!   [`Computation`](mvc_trace::Computation).  Each registered thread owns a
//!   segmented ingest buffer and each operation draws a per-object
//!   serialization ticket while the object's lock is held, so the trace is
//!   exactly the interleaving the paper's model assumes — with no global
//!   queue for producers to contend on.
//! * [`ingest`] — the per-thread segmented buffers and the order-preserving
//!   merge that reassembles a faithful interleaving on the drain side.
//! * [`pipeline`] — the shared drain driver (ingest →
//!   [`Timestamper`](mvc_core::Timestamper) → [`EventSink`](mvc_core::sink::EventSink))
//!   and its [`PipelineError`].
//! * [`live`] — [`LiveSession`]: the same session switched into live mode,
//!   where any [`Timestamper`](mvc_core::Timestamper) stamps events as they
//!   drain from the ingest buffers and any sink receives the stamped
//!   batches, instead of waiting for a post-hoc batch replay.
//! * [`object`] — [`SharedObject<T>`]: a value behind a `parking_lot` mutex
//!   whose reads and writes are traced.
//! * [`monitor`] — [`OnlineMonitor`]: a thread-safe live causality monitor
//!   built on the online Popularity mechanism; it timestamps operations as
//!   they happen and answers ordering queries without stopping the program.
//! * [`conflict`] — [`ConflictAnalyzer`]: post-mortem detection of concurrent
//!   conflicting operations across user-declared object groups (atomicity
//!   violation candidates), the debugging use-case that motivates causality
//!   tracking in the paper's introduction.
//! * [`analysis`] — the same questions answered *at pipeline rate*:
//!   [`ReachabilityIndexSink`], [`ConflictSink`] and [`CompetitiveSink`] are
//!   [`EventSink`](mvc_core::sink::EventSink)s that ride the
//!   merge → stamp → sink loop, so ordering queries, conflict flagging and
//!   competitive-ratio tracking happen while the run is still going.
//!
//! # Example
//!
//! ```
//! use mvc_runtime::TraceSession;
//!
//! let session = TraceSession::new();
//! let counter = session.shared_object("counter", 0u64);
//! let handle = session.register_thread("worker");
//! counter.write(&handle, |v| *v += 1);
//! let count = counter.read(&handle, |v| *v);
//! assert_eq!(count, 1);
//!
//! let computation = session.into_computation();
//! assert_eq!(computation.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod conflict;
pub mod ingest;
pub mod live;
pub mod monitor;
pub mod object;
pub mod pipeline;
pub mod session;

pub use analysis::{CompetitiveSink, ConflictSink, ReachabilityIndexSink};
pub use conflict::{ConflictAnalyzer, ConflictPair};
pub use live::{LiveRun, LiveSession};
pub use monitor::OnlineMonitor;
pub use object::SharedObject;
pub use pipeline::PipelineError;
pub use session::{ThreadHandle, TraceSession};
