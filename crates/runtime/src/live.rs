//! Live timestamping: events are stamped as they drain from the channel.
//!
//! A plain [`TraceSession`] only *collects* a [`Computation`] for later
//! batch processing.
//! [`LiveSession`] attaches any [`Timestamper`] to the same event channel, so
//! operations receive their mixed-clock timestamps while the program is still
//! running — the streaming half of the unified timestamping API.  Because the
//! session records the drained interleaving as a computation at the same
//! time, a live run can always be cross-checked against a post-hoc batch
//! replay of the identical event order.
//!
//! ```
//! use mvc_runtime::TraceSession;
//! use mvc_online::{OnlineTimestamper, Popularity};
//!
//! let session = TraceSession::new();
//! let worker = session.register_thread("worker");
//! let counter = session.shared_object("counter", 0u64);
//!
//! // Switch into live mode; the traced operations below are timestamped as
//! // they are pumped out of the channel.
//! let mut live = session.live(OnlineTimestamper::new(Popularity::new()));
//! counter.write(&worker, |v| *v += 1);
//! counter.read(&worker, |v| *v);
//! live.pump().unwrap();
//! assert_eq!(live.timestamps().len(), 2);
//!
//! let run = live.finish().unwrap();
//! assert_eq!(run.computation.len(), 2);
//! assert!(run.timestamps[0].strictly_less_than(&run.timestamps[1]));
//! ```

use std::sync::Arc;

use crossbeam::channel::Receiver;

use mvc_clock::VectorTimestamp;
use mvc_core::{TimestampError, TimestampReport, Timestamper};
use mvc_trace::Computation;

use crate::session::{RawEvent, SessionInner, ThreadHandle, TraceSession};
use crate::SharedObject;

/// The completed output of a live session.
#[derive(Debug, Clone)]
pub struct LiveRun {
    /// The drained interleaving, in the order events left the channel (the
    /// same order the timestamper observed them).
    pub computation: Computation,
    /// Per-event timestamps in that order, all padded to the final clock
    /// width so they are mutually comparable.
    pub timestamps: Vec<VectorTimestamp>,
    /// The timestamper's final report.
    pub report: TimestampReport,
}

/// A [`TraceSession`] in live mode: a [`Timestamper`] stamps events as they
/// drain from the event channel.
///
/// Threads and objects can still be registered after the switch; draining
/// happens whenever [`pump`](LiveSession::pump) is called and once more in
/// [`finish`](LiveSession::finish).  Per-object and per-thread orders are
/// preserved exactly as in batch mode, because the channel is filled while
/// each object's lock is held.
#[derive(Debug)]
pub struct LiveSession<T> {
    inner: Arc<SessionInner>,
    receiver: Receiver<RawEvent>,
    timestamper: T,
    computation: Computation,
    timestamps: Vec<VectorTimestamp>,
    /// Events pulled from the channel but not yet stamped (the failing event
    /// and everything drained behind it when an observation errors); retried
    /// ahead of the channel on the next drain so a recoverable error never
    /// loses an operation that really executed.
    pending: Vec<RawEvent>,
}

impl TraceSession {
    /// Switches the session into live mode around the given timestamper.
    ///
    /// Existing [`SharedObject`]s and [`ThreadHandle`]s keep working — they
    /// feed the same channel the live session drains.
    pub fn live<T: Timestamper>(self, timestamper: T) -> LiveSession<T> {
        let TraceSession { inner, receiver } = self;
        LiveSession {
            inner,
            receiver,
            timestamper,
            computation: Computation::new(),
            timestamps: Vec::new(),
            pending: Vec::new(),
        }
    }
}

impl<T: Timestamper> LiveSession<T> {
    /// Registers an application thread and returns its handle.
    pub fn register_thread(&self, name: &str) -> ThreadHandle {
        self.inner.register_thread_handle(name)
    }

    /// Creates a traced shared object holding `value`.
    pub fn shared_object<V>(&self, name: &str, value: V) -> SharedObject<V> {
        let id = self.inner.register_object(name);
        SharedObject::new(id, name, value, Arc::clone(&self.inner))
    }

    /// Drains every event currently queued in the channel through the
    /// timestamper, returning how many were stamped.
    ///
    /// The drain is batched: events are moved out of the channel up to 1024
    /// at a time (one lock round-trip per batch) and handed
    /// to [`Timestamper::observe_batch`], so a timestamper with a bulk fast
    /// path — notably the sharded engine — is driven at full speed while
    /// every other implementation falls back to per-event observation.
    ///
    /// Events sent concurrently with the call may or may not be included;
    /// call [`finish`](LiveSession::finish) after joining the workers to
    /// drain everything.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TimestampError`] an observation reports.
    /// Events drained before the failure keep their timestamps; the failing
    /// event is held back and retried first by the next `pump` (or by
    /// [`finish`](LiveSession::finish)), so after recovering — e.g. adding a
    /// component via [`timestamper_mut`](LiveSession::timestamper_mut) — no
    /// operation is lost.
    pub fn pump(&mut self) -> Result<usize, TimestampError> {
        drain(
            &self.receiver,
            &mut self.timestamper,
            &mut self.computation,
            &mut self.timestamps,
            &mut self.pending,
        )
    }

    /// The timestamps assigned so far, in drain order, at the raw width each
    /// observation had (see [`LiveRun::timestamps`] for the padded form).
    pub fn timestamps(&self) -> &[VectorTimestamp] {
        &self.timestamps
    }

    /// The interleaving drained so far.
    pub fn computation(&self) -> &Computation {
        &self.computation
    }

    /// The attached timestamper.
    pub fn timestamper(&self) -> &T {
        &self.timestamper
    }

    /// Mutable access to the attached timestamper — the recovery hook after
    /// a failed [`pump`](LiveSession::pump) (e.g. to add the missing
    /// component to an engine before retrying).
    pub fn timestamper_mut(&mut self) -> &mut T {
        &mut self.timestamper
    }

    /// Current clock width.
    pub fn clock_size(&self) -> usize {
        self.timestamper.width()
    }

    /// Closes the session, drains the remaining events, and returns the
    /// completed run with every timestamp padded to the final clock width.
    ///
    /// Call this after all worker threads have been joined; operations still
    /// being performed concurrently with the drain may or may not be
    /// included (the same contract as
    /// [`TraceSession::into_computation`]).
    ///
    /// # Errors
    ///
    /// Propagates the first [`TimestampError`] the final drain reports.
    pub fn finish(self) -> Result<LiveRun, TimestampError> {
        let LiveSession {
            inner,
            receiver,
            mut timestamper,
            mut computation,
            mut timestamps,
            mut pending,
        } = self;
        // Drop the session's own handle on the sender; live `SharedObject`s
        // may still hold clones, so this does not close the channel — the
        // try_recv drain simply collects whatever has been queued, which is
        // everything sent before the (already joined) workers finished.
        drop(inner);
        drain(
            &receiver,
            &mut timestamper,
            &mut computation,
            &mut timestamps,
            &mut pending,
        )?;
        let width = timestamper.width();
        Ok(LiveRun {
            computation,
            timestamps: timestamps
                .into_iter()
                .map(|t| t.into_padded_to(width))
                .collect(),
            report: timestamper.finish(),
        })
    }
}

use crate::session::DRAIN_BATCH;

/// Drains the held-back events (if any) and then every event currently
/// queued in `receiver` through the timestamper in batches, recording the
/// interleaving and the stamps in lockstep.  On error the failing event —
/// and everything drained behind it — stays in `pending` instead of being
/// lost, so the next drain retries it first; events stamped before the
/// failure keep their timestamps.
fn drain<T: Timestamper>(
    receiver: &Receiver<RawEvent>,
    timestamper: &mut T,
    computation: &mut Computation,
    timestamps: &mut Vec<VectorTimestamp>,
    pending: &mut Vec<RawEvent>,
) -> Result<usize, TimestampError> {
    let mut drained = 0;
    let mut batch: Vec<(mvc_trace::ThreadId, mvc_trace::ObjectId)> = Vec::new();
    loop {
        if pending.is_empty() && receiver.try_recv_batch(pending, DRAIN_BATCH) == 0 {
            return Ok(drained);
        }
        batch.clear();
        batch.extend(pending.iter().map(|ev| (ev.thread, ev.object)));
        let before = timestamps.len();
        let result = timestamper.observe_batch(&batch, timestamps);
        // Per the observe_batch contract, exactly the stamped prefix was
        // appended; record it and keep the rest pending.
        let done = timestamps.len() - before;
        for ev in pending.drain(..done) {
            computation.record_op(ev.thread, ev.object, ev.kind);
        }
        drained += done;
        result?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    use mvc_clock::TimestampAssigner;
    use mvc_core::{BatchReplay, OfflineOptimizer, TimestampingEngine};
    use mvc_online::{MechanismRegistry, OnlineTimestamper, Popularity};

    #[test]
    fn live_session_stamps_single_thread_program_order() {
        let session = TraceSession::new();
        let t = session.register_thread("main");
        let x = session.shared_object("x", 0u32);
        let mut live = session.live(OnlineTimestamper::new(Popularity::new()));
        x.write(&t, |v| *v = 1);
        x.read(&t, |v| *v);
        assert_eq!(live.pump().unwrap(), 2);
        assert_eq!(live.pump().unwrap(), 0, "channel already drained");
        assert_eq!(live.computation().len(), 2);
        assert!(live.clock_size() >= 1);
        let run = live.finish().unwrap();
        assert!(run.timestamps[0].strictly_less_than(&run.timestamps[1]));
        assert_eq!(run.report.events, 2);
    }

    #[test]
    fn live_session_allows_late_registration() {
        let session = TraceSession::new();
        let live = session.live(OnlineTimestamper::new(Popularity::new()));
        let t = live.register_thread("late");
        let o = live.shared_object("late-object", 7i32);
        o.write(&t, |v| *v += 1);
        let run = live.finish().unwrap();
        assert_eq!(run.computation.len(), 1);
        assert_eq!(run.timestamps.len(), 1);
        assert_eq!(run.report.name, "popularity");
    }

    #[test]
    fn live_timestamps_equal_post_hoc_batch_replay() {
        // The acceptance check: a multithreaded execution stamped live must
        // agree with replaying the *same drained interleaving* in batch.
        let session = TraceSession::new();
        let counter = session.shared_object("counter", 0u64);
        let flag = session.shared_object("flag", false);
        let mut workers = Vec::new();
        for i in 0..4 {
            let handle = session.register_thread(&format!("worker-{i}"));
            let counter = counter.clone();
            let flag = flag.clone();
            workers.push(thread::spawn(move || {
                for _ in 0..25 {
                    counter.write(&handle, |v| *v += 1);
                }
                flag.write(&handle, |v| *v = true);
            }));
        }
        let live = session.live(OnlineTimestamper::new(Popularity::new()));
        for worker in workers {
            worker.join().unwrap();
        }
        let run = live.finish().unwrap();
        assert_eq!(run.computation.len(), 104);

        // Post-hoc: batch-replay the drained interleaving with a fresh copy
        // of the same (deterministic) strategy.
        let batch = OnlineTimestamper::new(Popularity::new())
            .run(&run.computation)
            .unwrap();
        assert_eq!(run.timestamps, batch.timestamps);

        // And the optimal batch plan over the same interleaving is valid too,
        // so the drained order really is a faithful computation.
        let plan = OfflineOptimizer::new().plan_for_computation(&run.computation);
        let mut engine = TimestampingEngine::with_components(plan.components().clone());
        let streamed: Vec<_> = run
            .computation
            .events()
            .map(|e| engine.observe(e.thread, e.object).unwrap())
            .collect();
        assert_eq!(streamed, plan.assigner().assign(&run.computation));
    }

    #[test]
    fn live_session_works_with_any_timestamper_impl() {
        // Seed a batch replayer whose map covers everything the program does.
        let mut map = mvc_clock::ComponentMap::new();
        map.push(mvc_clock::Component::Object(mvc_trace::ObjectId(0)));
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let o = session.shared_object("o", 0u8);
        let mut live = session.live(BatchReplay::new(map));
        o.write(&t, |v| *v = 1);
        live.pump().unwrap();
        let run = live.finish().unwrap();
        assert_eq!(run.report.name, "batch-replay");
        assert_eq!(run.timestamps.len(), 1);
    }

    #[test]
    fn failed_pump_holds_the_event_back_for_retry() {
        // An engine with no components cannot stamp anything: the first pump
        // must fail WITHOUT losing the operation, and succeed after the
        // caller adds a covering component.
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let o = session.shared_object("o", 0u8);
        let mut live = session.live(TimestampingEngine::new());
        o.write(&t, |v| *v = 1);
        let err = live.pump().unwrap_err();
        assert!(matches!(err, mvc_core::TimestampError::Uncovered { .. }));
        assert_eq!(live.computation().len(), 0, "failed event is not recorded");

        // Recover: cover the object, retry — the held-back event is stamped.
        live.timestamper_mut()
            .add_component(mvc_clock::Component::Object(mvc_trace::ObjectId(0)));
        assert_eq!(live.pump().unwrap(), 1, "the held-back event is retried");
        let run = live.finish().unwrap();
        assert_eq!(run.computation.len(), 1, "no operation was lost");
        assert_eq!(run.timestamps.len(), 1);
    }

    #[test]
    fn live_session_with_registry_mechanism() {
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let o = session.shared_object("o", ());
        let mechanism = MechanismRegistry::new().from_name("adaptive").unwrap();
        let mut live = session.live(OnlineTimestamper::new(mechanism));
        o.write(&t, |_| ());
        live.pump().unwrap();
        let run = live.finish().unwrap();
        assert_eq!(run.report.name, "adaptive");
        assert_eq!(run.report.events, 1);
    }
}
