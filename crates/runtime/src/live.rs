//! Live timestamping: events are stamped as they drain from the ingest
//! buffers and delivered to a pluggable [`EventSink`].
//!
//! A plain [`TraceSession`] only *collects* a [`Computation`] for later
//! batch processing.
//! [`LiveSession`] attaches any [`Timestamper`] and any [`EventSink`] to the
//! same ingest pipeline, so operations receive their mixed-clock timestamps
//! while the program is still running — the streaming half of the unified
//! timestamping API — and the stamped stream goes wherever the sink points
//! (memory, the streaming codec, stats counters, or a tee of several).
//! With the default [`MemoryRecorder`] sink the session records the drained
//! interleaving as a computation, so a live run can always be cross-checked
//! against a post-hoc batch replay of the identical event order.
//!
//! ```
//! use mvc_runtime::TraceSession;
//! use mvc_online::{OnlineTimestamper, Popularity};
//!
//! let session = TraceSession::new();
//! let worker = session.register_thread("worker");
//! let counter = session.shared_object("counter", 0u64);
//!
//! // Switch into live mode; the traced operations below are timestamped as
//! // they are pumped out of the ingest buffers.
//! let mut live = session.live(OnlineTimestamper::new(Popularity::new()));
//! counter.write(&worker, |v| *v += 1);
//! counter.read(&worker, |v| *v);
//! live.pump().unwrap();
//! assert_eq!(live.timestamps().len(), 2);
//!
//! let run = live.finish().unwrap();
//! assert_eq!(run.computation.len(), 2);
//! assert!(run.timestamps[0].strictly_less_than(&run.timestamps[1]));
//! ```

use std::sync::Arc;

use mvc_clock::VectorTimestamp;
use mvc_core::sink::{EventSink, MemoryRecorder};
use mvc_core::{TimestampReport, Timestamper};
use mvc_trace::Computation;

use crate::pipeline::{PipelineError, PipelineState};
use crate::session::{SessionInner, ThreadHandle, TraceSession};
use crate::SharedObject;

/// The completed output of a live session.
#[derive(Debug, Clone)]
pub struct LiveRun {
    /// The drained interleaving, in the order events left the merge (the
    /// same order the timestamper observed them).
    pub computation: Computation,
    /// Per-event timestamps in that order, all padded to the final clock
    /// width so they are mutually comparable.
    pub timestamps: Vec<VectorTimestamp>,
    /// The timestamper's final report.
    pub report: TimestampReport,
}

/// A [`TraceSession`] in live mode: a [`Timestamper`] stamps events as they
/// drain from the ingest buffers and an [`EventSink`] receives the stamped
/// batches.
///
/// Threads and objects can still be registered after the switch; draining
/// happens whenever [`pump`](LiveSession::pump) is called and once more in
/// [`finish`](LiveSession::finish).  Per-object and per-thread orders are
/// preserved exactly as in batch mode, because the order-preserving merge
/// replays the serialization tickets drawn under each object's lock (see
/// [`crate::ingest`]).
#[derive(Debug)]
pub struct LiveSession<T, S = MemoryRecorder> {
    inner: Arc<SessionInner>,
    timestamper: T,
    sink: S,
    state: PipelineState,
}

impl TraceSession {
    /// Switches the session into live mode around the given timestamper,
    /// recording into the default in-memory sink.
    ///
    /// Existing [`SharedObject`]s and [`ThreadHandle`]s keep working — they
    /// feed the same ingest buffers the live session drains.
    pub fn live<T: Timestamper>(self, timestamper: T) -> LiveSession<T> {
        self.live_with_sink(timestamper, MemoryRecorder::new())
    }

    /// Switches the session into live mode with an explicit event sink.
    pub fn live_with_sink<T: Timestamper, S: EventSink>(
        self,
        timestamper: T,
        sink: S,
    ) -> LiveSession<T, S> {
        let TraceSession { inner } = self;
        LiveSession {
            inner,
            timestamper,
            sink,
            state: PipelineState::new(),
        }
    }
}

impl<T: Timestamper, S: EventSink> LiveSession<T, S> {
    /// Registers an application thread and returns its handle.
    pub fn register_thread(&self, name: &str) -> ThreadHandle {
        self.inner.register_thread_handle(name)
    }

    /// Creates a traced shared object holding `value`.
    pub fn shared_object<V>(&self, name: &str, value: V) -> SharedObject<V> {
        let id = self.inner.register_object(name);
        SharedObject::new(id, name, value)
    }

    /// Registers an object *by name only* and returns its dense id, for
    /// ingest paths that draw per-object tickets themselves (see
    /// [`ThreadHandle::record_sequenced`]).
    pub fn register_object(&self, name: &str) -> mvc_trace::ObjectId {
        self.inner.register_object(name)
    }

    /// Drains every event currently published to the ingest buffers through
    /// the timestamper into the sink, returning how many events the sink
    /// accepted.
    ///
    /// The drain is the three-stage pipeline: the order-preserving merge
    /// reassembles a faithful interleaving, whole batches are handed to
    /// [`Timestamper::observe_batch`] (so a timestamper with a bulk fast
    /// path — notably the sharded engine — is driven at full speed), and
    /// each stamped batch goes to the sink in one call.
    ///
    /// Events sent concurrently with the call may or may not be included;
    /// call [`finish`](LiveSession::finish) after joining the workers to
    /// drain everything.
    ///
    /// # Errors
    ///
    /// Propagates the first failure of either downstream stage.  Events
    /// accepted before the failure keep their place; the failing event (on
    /// a [`PipelineError::Timestamp`]) or the whole stamped batch (on a
    /// [`PipelineError::Sink`]) is held back and retried by the next `pump`
    /// (or by [`finish`](LiveSession::finish)), so after recovering — e.g.
    /// adding a component via [`timestamper_mut`](Self::timestamper_mut) —
    /// no operation is lost.
    pub fn pump(&mut self) -> Result<usize, PipelineError> {
        self.state
            .pump(&self.inner, &mut self.timestamper, &mut self.sink)
    }

    /// The attached timestamper.
    pub fn timestamper(&self) -> &T {
        &self.timestamper
    }

    /// Mutable access to the attached timestamper — the recovery hook after
    /// a failed [`pump`](LiveSession::pump) (e.g. to add the missing
    /// component to an engine before retrying).
    pub fn timestamper_mut(&mut self) -> &mut T {
        &mut self.timestamper
    }

    /// The attached sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the attached sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Current clock width.
    pub fn clock_size(&self) -> usize {
        self.timestamper.width()
    }

    /// Closes the session, drains the remaining events, flushes the sink,
    /// and returns it together with the timestamper's final report.
    ///
    /// This is the generic form of [`finish`](LiveSession::finish) for
    /// sessions with a custom sink; the caller recovers the sink's product
    /// (encoded bytes, stats, …) from the returned sink value.
    ///
    /// Call this after all worker threads have been joined; operations
    /// still being performed concurrently with the drain may or may not be
    /// included (the same contract as [`TraceSession::into_computation`]).
    ///
    /// # Errors
    ///
    /// On the first [`PipelineError`] the final drain or flush reports, the
    /// session is handed back *with* the error: everything the sink already
    /// accepted and every held-back backlog survives, so the caller can
    /// recover (add the component, free the disk) and finish again — the
    /// same no-operation-is-ever-lost contract as
    /// [`pump`](LiveSession::pump).
    #[allow(clippy::result_large_err)]
    pub fn finish_into_sink(mut self) -> Result<(S, TimestampReport), (Self, PipelineError)> {
        if let Err(e) = self.pump() {
            return Err((self, e));
        }
        if let Err(e) = self.sink.flush() {
            return Err((self, PipelineError::Sink(e)));
        }
        Ok((self.sink, self.timestamper.finish()))
    }
}

impl<T: Timestamper> LiveSession<T, MemoryRecorder> {
    /// The timestamps assigned so far, in drain order, at the raw width each
    /// observation had (see [`LiveRun::timestamps`] for the padded form).
    pub fn timestamps(&self) -> &[VectorTimestamp] {
        self.sink.timestamps()
    }

    /// The interleaving drained so far.
    pub fn computation(&self) -> &Computation {
        self.sink.computation()
    }

    /// Closes the session, drains the remaining events, and returns the
    /// completed run with every timestamp padded to the final clock width.
    ///
    /// # Errors
    ///
    /// Propagates the first [`PipelineError`] the final drain reports (the
    /// session is dropped; keep it alive through repeated
    /// [`pump`](LiveSession::pump)s — or use
    /// [`finish_into_sink`](LiveSession::finish_into_sink), which hands the
    /// session back — if recovery matters).
    pub fn finish(self) -> Result<LiveRun, PipelineError> {
        let (sink, report) = self.finish_into_sink().map_err(|(_, e)| e)?;
        let width = report.width();
        let (computation, timestamps) = sink.into_parts();
        Ok(LiveRun {
            computation,
            timestamps: timestamps
                .into_iter()
                .map(|t| t.into_padded_to(width))
                .collect(),
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    use mvc_clock::TimestampAssigner;
    use mvc_core::sink::{CodecSink, StatsSink, TeeSink};
    use mvc_core::{BatchReplay, OfflineOptimizer, TimestampingEngine};
    use mvc_online::{MechanismRegistry, OnlineTimestamper, Popularity};

    #[test]
    fn live_session_stamps_single_thread_program_order() {
        let session = TraceSession::new();
        let t = session.register_thread("main");
        let x = session.shared_object("x", 0u32);
        let mut live = session.live(OnlineTimestamper::new(Popularity::new()));
        x.write(&t, |v| *v = 1);
        x.read(&t, |v| *v);
        assert_eq!(live.pump().unwrap(), 2);
        assert_eq!(live.pump().unwrap(), 0, "buffers already drained");
        assert_eq!(live.computation().len(), 2);
        assert!(live.clock_size() >= 1);
        let run = live.finish().unwrap();
        assert!(run.timestamps[0].strictly_less_than(&run.timestamps[1]));
        assert_eq!(run.report.events, 2);
    }

    #[test]
    fn live_session_allows_late_registration() {
        let session = TraceSession::new();
        let live = session.live(OnlineTimestamper::new(Popularity::new()));
        let t = live.register_thread("late");
        let o = live.shared_object("late-object", 7i32);
        o.write(&t, |v| *v += 1);
        let run = live.finish().unwrap();
        assert_eq!(run.computation.len(), 1);
        assert_eq!(run.timestamps.len(), 1);
        assert_eq!(run.report.name, "popularity");
    }

    #[test]
    fn live_timestamps_equal_post_hoc_batch_replay() {
        // The acceptance check: a multithreaded execution stamped live must
        // agree with replaying the *same drained interleaving* in batch.
        let session = TraceSession::new();
        let counter = session.shared_object("counter", 0u64);
        let flag = session.shared_object("flag", false);
        let mut workers = Vec::new();
        for i in 0..4 {
            let handle = session.register_thread(&format!("worker-{i}"));
            let counter = counter.clone();
            let flag = flag.clone();
            workers.push(thread::spawn(move || {
                for _ in 0..25 {
                    counter.write(&handle, |v| *v += 1);
                }
                flag.write(&handle, |v| *v = true);
            }));
        }
        let live = session.live(OnlineTimestamper::new(Popularity::new()));
        for worker in workers {
            worker.join().unwrap();
        }
        let run = live.finish().unwrap();
        assert_eq!(run.computation.len(), 104);

        // Post-hoc: batch-replay the drained interleaving with a fresh copy
        // of the same (deterministic) strategy.
        let batch = OnlineTimestamper::new(Popularity::new())
            .run(&run.computation)
            .unwrap();
        assert_eq!(run.timestamps, batch.timestamps);

        // And the optimal batch plan over the same interleaving is valid too,
        // so the drained order really is a faithful computation.
        let plan = OfflineOptimizer::new().plan_for_computation(&run.computation);
        let mut engine = TimestampingEngine::with_components(plan.components().clone());
        let streamed: Vec<_> = run
            .computation
            .events()
            .map(|e| engine.observe(e.thread, e.object).unwrap())
            .collect();
        assert_eq!(streamed, plan.assigner().assign(&run.computation));
    }

    #[test]
    fn live_session_works_with_any_timestamper_impl() {
        // Seed a batch replayer whose map covers everything the program does.
        let mut map = mvc_clock::ComponentMap::new();
        map.push(mvc_clock::Component::Object(mvc_trace::ObjectId(0)));
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let o = session.shared_object("o", 0u8);
        let mut live = session.live(BatchReplay::new(map));
        o.write(&t, |v| *v = 1);
        live.pump().unwrap();
        let run = live.finish().unwrap();
        assert_eq!(run.report.name, "batch-replay");
        assert_eq!(run.timestamps.len(), 1);
    }

    #[test]
    fn failed_pump_holds_the_event_back_for_retry() {
        // An engine with no components cannot stamp anything: the first pump
        // must fail WITHOUT losing the operation, and succeed after the
        // caller adds a covering component.
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let o = session.shared_object("o", 0u8);
        let mut live = session.live(TimestampingEngine::new());
        o.write(&t, |v| *v = 1);
        let err = live.pump().unwrap_err();
        assert!(matches!(
            err.as_timestamp_error(),
            Some(mvc_core::TimestampError::Uncovered { .. })
        ));
        assert_eq!(live.computation().len(), 0, "failed event is not recorded");

        // Recover: cover the object, retry — the held-back event is stamped.
        live.timestamper_mut()
            .add_component(mvc_clock::Component::Object(mvc_trace::ObjectId(0)));
        assert_eq!(live.pump().unwrap(), 1, "the held-back event is retried");
        let run = live.finish().unwrap();
        assert_eq!(run.computation.len(), 1, "no operation was lost");
        assert_eq!(run.timestamps.len(), 1);
    }

    /// A memory recorder whose first `failures` batches are refused.
    #[derive(Debug, Default)]
    struct FlakyRecorder {
        failures: usize,
        inner: MemoryRecorder,
    }

    impl EventSink for FlakyRecorder {
        fn name(&self) -> &str {
            "flaky-mem"
        }

        fn accept_batch(
            &mut self,
            batch: &[mvc_core::StampedEvent],
        ) -> Result<(), mvc_core::SinkError> {
            if self.failures > 0 {
                self.failures -= 1;
                return Err(mvc_core::SinkError::Io("transient".into()));
            }
            self.inner.accept_batch(batch)
        }

        fn events_accepted(&self) -> usize {
            self.inner.events_accepted()
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    #[test]
    fn failed_sink_holds_the_stamped_batch_back_for_retry() {
        // The egress half of the failure-containment contract: a sink error
        // keeps the stamped batch in the pipeline, and the next pump
        // delivers it exactly once — nothing lost, nothing duplicated.
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let o = session.shared_object("o", 0u32);
        let sink = FlakyRecorder {
            failures: 1,
            inner: MemoryRecorder::new(),
        };
        let mut live = session.live_with_sink(OnlineTimestamper::new(Popularity::new()), sink);
        o.write(&t, |v| *v = 1);
        o.read(&t, |v| *v);
        let err = live.pump().unwrap_err();
        assert!(matches!(err, PipelineError::Sink(_)));
        assert_eq!(live.sink().events_accepted(), 0, "batch was refused whole");
        assert_eq!(live.pump().unwrap(), 2, "held-back batch retried");
        let (sink, report) = live.finish_into_sink().map_err(|(_, e)| e).unwrap();
        assert_eq!(report.events, 2, "timestamper observed each event once");
        assert_eq!(sink.inner.computation().len(), 2, "delivered exactly once");
    }

    #[test]
    fn failed_finish_hands_the_session_back_for_recovery() {
        // finish_into_sink must not destroy the sink's product on error:
        // the session comes back with the error, and finishing again
        // delivers the held-back batch.
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let o = session.shared_object("o", 0u8);
        let sink = FlakyRecorder {
            failures: 1,
            inner: MemoryRecorder::new(),
        };
        let live = session.live_with_sink(OnlineTimestamper::new(Popularity::new()), sink);
        o.write(&t, |v| *v = 1);
        let (live, err) = live.finish_into_sink().unwrap_err();
        assert!(matches!(err, PipelineError::Sink(_)));
        let (sink, report) = live.finish_into_sink().map_err(|(_, e)| e).unwrap();
        assert_eq!(report.events, 1);
        assert_eq!(sink.inner.computation().len(), 1, "nothing was lost");
    }

    #[test]
    fn live_session_with_registry_mechanism() {
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let o = session.shared_object("o", ());
        let mechanism = MechanismRegistry::new().from_name("adaptive").unwrap();
        let mut live = session.live(OnlineTimestamper::new(mechanism));
        o.write(&t, |_| ());
        live.pump().unwrap();
        let run = live.finish().unwrap();
        assert_eq!(run.report.name, "adaptive");
        assert_eq!(run.report.events, 1);
    }

    #[test]
    fn live_session_streams_into_a_custom_sink() {
        // A tee of stats + codec: no computation is materialised anywhere,
        // yet the encoded trace decodes to the drained interleaving.
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let o = session.shared_object("o", 0u32);
        let sink = TeeSink::new(vec![Box::new(StatsSink::new()), Box::new(CodecSink::new())]);
        let mut live = session.live_with_sink(OnlineTimestamper::new(Popularity::new()), sink);
        o.write(&t, |v| *v = 1);
        o.read(&t, |v| *v);
        assert_eq!(live.pump().unwrap(), 2);
        assert_eq!(live.sink().events_accepted(), 2);
        let (sink, report) = live.finish_into_sink().map_err(|(_, e)| e).unwrap();
        assert_eq!(report.events, 2);
        let children = sink.into_children();
        let stats = children[0]
            .as_any()
            .downcast_ref::<StatsSink>()
            .unwrap()
            .stats();
        assert_eq!(stats.events, 2);
        assert_eq!(stats.per_kind[0], 1, "one read");
        assert_eq!(stats.per_kind[1], 1, "one write");
        let codec = children[1].as_any().downcast_ref::<CodecSink>().unwrap();
        let decoded = mvc_trace::codec::decode(&codec.clone().into_bytes()).unwrap();
        assert_eq!(decoded.len(), 2, "the streamed trace decodes");
    }
}
