//! Live causality monitoring with online mixed vector clocks.
//!
//! The [`OnlineMonitor`] is a thread-safe wrapper around the online
//! timestamping pipeline (`mvc-online`): application threads report their
//! operations as they happen and receive the operation's mixed-clock
//! timestamp back; any two reported timestamps can later be compared to
//! decide whether the operations were causally ordered or concurrent, without
//! stopping the program or knowing the thread–object interaction in advance.
//!
//! Internally the monitor serialises all updates behind one mutex.  That is
//! deliberate: the paper's model assumes a total order per object anyway, and
//! the monitor's single lock gives a total order that is a linear extension
//! of it.  (A production implementation could shard the lock per object; the
//! single lock keeps the reference implementation obviously correct.)

use parking_lot::Mutex;

use mvc_clock::{ClockOrd, VectorTimestamp};
use mvc_core::TimestampError;
use mvc_online::{OnlineMechanism, OnlineTimestamper, Popularity};
use mvc_trace::{ObjectId, ThreadId};

/// A thread-safe, online causality monitor.
#[derive(Debug)]
pub struct OnlineMonitor<M = Popularity> {
    inner: Mutex<OnlineTimestamper<M>>,
}

impl Default for OnlineMonitor<Popularity> {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineMonitor<Popularity> {
    /// Creates a monitor using the Popularity mechanism (the paper's best
    /// online policy on skewed workloads).
    pub fn new() -> Self {
        Self::with_mechanism(Popularity::new())
    }
}

impl<M: OnlineMechanism> OnlineMonitor<M> {
    /// Creates a monitor with an explicit component-selection mechanism.
    pub fn with_mechanism(mechanism: M) -> Self {
        Self {
            inner: Mutex::new(OnlineTimestamper::new(mechanism)),
        }
    }

    /// Records one operation and returns its timestamp, padded to the clock
    /// width at the time of the call.
    ///
    /// # Errors
    ///
    /// Propagates [`TimestampError::RogueComponent`] when the mechanism
    /// violates its contract; the paper's mechanisms never do.
    pub fn record(
        &self,
        thread: ThreadId,
        object: ObjectId,
    ) -> Result<VectorTimestamp, TimestampError> {
        self.inner.lock().observe(thread, object)
    }

    /// Current clock width (number of components selected so far).
    pub fn clock_size(&self) -> usize {
        self.inner.lock().clock_size()
    }

    /// Number of operations recorded so far.
    pub fn events_recorded(&self) -> usize {
        self.inner.lock().stats().events
    }

    /// Compares two timestamps previously returned by [`record`](Self::record).
    ///
    /// Timestamps recorded at different clock widths are padded with zeros
    /// before comparison — a missing component is exactly a counter that was
    /// still zero when the earlier timestamp was taken.
    pub fn compare(&self, a: &VectorTimestamp, b: &VectorTimestamp) -> ClockOrd {
        let width = a.len().max(b.len());
        a.padded_to(width).compare(&b.padded_to(width))
    }

    /// Returns `true` iff the operation stamped `a` happened before the
    /// operation stamped `b`.
    pub fn happened_before(&self, a: &VectorTimestamp, b: &VectorTimestamp) -> bool {
        self.compare(a, b) == ClockOrd::Before
    }

    /// Returns `true` iff the two stamped operations are concurrent.
    pub fn concurrent(&self, a: &VectorTimestamp, b: &VectorTimestamp) -> bool {
        self.compare(a, b) == ClockOrd::Concurrent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_online::{MechanismRegistry, Naive};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn same_thread_operations_are_ordered() {
        let m = OnlineMonitor::new();
        let a = m.record(ThreadId(0), ObjectId(0)).unwrap();
        let b = m.record(ThreadId(0), ObjectId(1)).unwrap();
        assert!(m.happened_before(&a, &b));
        assert!(!m.happened_before(&b, &a));
        assert_eq!(m.events_recorded(), 2);
        assert!(m.clock_size() >= 1);
    }

    #[test]
    fn same_object_operations_are_ordered() {
        let m = OnlineMonitor::new();
        let a = m.record(ThreadId(0), ObjectId(3)).unwrap();
        let b = m.record(ThreadId(5), ObjectId(3)).unwrap();
        assert_eq!(m.compare(&a, &b), ClockOrd::Before);
    }

    #[test]
    fn unrelated_operations_are_concurrent() {
        let m = OnlineMonitor::new();
        let a = m.record(ThreadId(0), ObjectId(0)).unwrap();
        let b = m.record(ThreadId(1), ObjectId(1)).unwrap();
        assert!(m.concurrent(&a, &b));
        assert_eq!(m.compare(&a, &a), ClockOrd::Equal);
    }

    #[test]
    fn different_width_timestamps_compare_correctly() {
        // The first record happens at width 1, later ones at width 2+; the
        // padded comparison must still order causally related operations.
        let m = OnlineMonitor::with_mechanism(Naive::threads());
        let a = m.record(ThreadId(0), ObjectId(0)).unwrap();
        let _ = m.record(ThreadId(1), ObjectId(5)).unwrap();
        let c = m.record(ThreadId(1), ObjectId(0)).unwrap(); // sees a via object 0
        assert!(a.len() < c.len());
        assert!(m.happened_before(&a, &c));
        assert!(!m.happened_before(&c, &a));
    }

    #[test]
    fn monitor_accepts_registry_mechanisms() {
        // The monitor's mechanism can be chosen by name at runtime.
        let m =
            OnlineMonitor::with_mechanism(MechanismRegistry::new().from_name("adaptive").unwrap());
        let a = m.record(ThreadId(0), ObjectId(0)).unwrap();
        let b = m.record(ThreadId(1), ObjectId(0)).unwrap();
        assert!(m.happened_before(&a, &b));
    }

    #[test]
    fn monitor_is_usable_from_many_threads() {
        let m = Arc::new(OnlineMonitor::new());
        let mut joins = Vec::new();
        for t in 0..4 {
            let m = Arc::clone(&m);
            joins.push(thread::spawn(move || {
                let mut stamps = Vec::new();
                for i in 0..50 {
                    stamps.push(m.record(ThreadId(t), ObjectId(i % 5)).unwrap());
                }
                stamps
            }));
        }
        let per_thread: Vec<Vec<VectorTimestamp>> =
            joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(m.events_recorded(), 200);
        // Within each thread, timestamps must be strictly increasing.
        for stamps in &per_thread {
            for w in stamps.windows(2) {
                assert!(m.happened_before(&w[0], &w[1]));
            }
        }
    }
}
