//! Traced shared objects.
//!
//! A [`SharedObject<T>`] is a value protected by a `parking_lot` mutex.  All
//! accesses go through [`read`](SharedObject::read) /
//! [`write`](SharedObject::write) (or the lower-level
//! [`apply`](SharedObject::apply)), which run a closure under the lock and
//! record the operation.  Because the object's serialization ticket is drawn
//! and the event is published to the thread's ingest buffer *before the lock
//! is released*, the ticket stream is the true serialization order — the
//! assumption the paper's system model makes about objects — and the
//! drain-side merge can replay it (see [`crate::ingest`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mvc_trace::{ObjectId, OpKind};

use crate::ingest::SequencedEvent;
use crate::session::ThreadHandle;

/// A shared, lock-protected, traced object.
///
/// Cloning the handle shares the same underlying object (and the same
/// object id in the trace).
#[derive(Debug)]
pub struct SharedObject<T> {
    id: ObjectId,
    name: Arc<str>,
    value: Arc<Mutex<T>>,
    /// The object's serialization ticket counter, bumped while the lock is
    /// held (the lock provides the ordering; the atomic only makes the
    /// counter shareable across handle clones).
    seq: Arc<AtomicU64>,
}

impl<T> Clone for SharedObject<T> {
    fn clone(&self) -> Self {
        Self {
            id: self.id,
            name: Arc::clone(&self.name),
            value: Arc::clone(&self.value),
            seq: Arc::clone(&self.seq),
        }
    }
}

impl<T> SharedObject<T> {
    pub(crate) fn new(id: ObjectId, name: &str, value: T) -> Self {
        Self {
            id,
            name: Arc::from(name),
            value: Arc::new(Mutex::new(value)),
            seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The object's identifier in the trace.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The name the object was created with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs `f` on the value under the lock, recording an operation of the
    /// given kind on behalf of `thread`.
    pub fn apply<R>(&self, thread: &ThreadHandle, kind: OpKind, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.value.lock();
        let result = f(&mut guard);
        // Draw the serialization ticket and publish to the thread's own
        // buffer while the lock is held, so the ticket stream matches the
        // object's serialization order and the drain-side merge never sees
        // a drawn-but-unpublished ticket from a released lock.
        let object_seq = self.seq.fetch_add(1, Ordering::Relaxed);
        thread.buffer.push(SequencedEvent {
            thread: thread.id(),
            object: self.id,
            kind,
            object_seq,
        });
        result
    }

    /// Reads the value (recorded as a [`OpKind::Read`]).
    pub fn read<R>(&self, thread: &ThreadHandle, f: impl FnOnce(&T) -> R) -> R {
        self.apply(thread, OpKind::Read, |v| f(v))
    }

    /// Mutates the value (recorded as a [`OpKind::Write`]).
    pub fn write<R>(&self, thread: &ThreadHandle, f: impl FnOnce(&mut T) -> R) -> R {
        self.apply(thread, OpKind::Write, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TraceSession;
    use mvc_trace::ThreadId;
    use std::thread;

    #[test]
    fn read_and_write_return_closure_results() {
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let obj = session.shared_object("list", Vec::<u32>::new());
        obj.write(&t, |v| v.push(7));
        obj.write(&t, |v| v.push(9));
        let sum: u32 = obj.read(&t, |v| v.iter().sum());
        assert_eq!(sum, 16);
        assert_eq!(obj.name(), "list");
        let c = session.into_computation();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn apply_records_custom_kinds() {
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let obj = session.shared_object("lock", ());
        obj.apply(&t, OpKind::Acquire, |_| ());
        obj.apply(&t, OpKind::Release, |_| ());
        let c = session.into_computation();
        let kinds: Vec<_> = c.events().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![OpKind::Acquire, OpKind::Release]);
    }

    #[test]
    fn clones_share_state_and_identity() {
        let session = TraceSession::new();
        let t = session.register_thread("t");
        let a = session.shared_object("x", 0u64);
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        a.write(&t, |v| *v += 5);
        assert_eq!(b.read(&t, |v| *v), 5);
    }

    #[test]
    fn concurrent_increments_are_all_applied_and_traced() {
        let session = TraceSession::new();
        let obj = session.shared_object("acc", 0usize);
        let mut joins = Vec::new();
        for i in 0..8 {
            let h = session.register_thread(&format!("w{i}"));
            let obj = obj.clone();
            joins.push(thread::spawn(move || {
                for _ in 0..25 {
                    obj.write(&h, |v| *v += 1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let h = session.register_thread("check");
        assert_eq!(obj.read(&h, |v| *v), 200);
        let c = session.into_computation();
        assert_eq!(c.len(), 201);
        // All eight workers appear in the trace.
        assert_eq!(c.thread_count(), 9);
        assert_eq!(c.thread_chain(ThreadId(0)).len(), 25);
    }
}
