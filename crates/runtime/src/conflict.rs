//! Post-mortem conflict analysis on recorded traces.
//!
//! In the paper's model every object is internally serialised, so two
//! operations on the *same* object are never concurrent.  The bugs causality
//! tracking helps find are one level up: two causally *concurrent* operations
//! from different threads touching objects that the application intends to
//! keep consistent with each other (an invariant spanning several objects).
//! A classic example is a transfer between two account objects racing with an
//! audit that reads both — each individual access is serialised, but the pair
//! is not atomic.
//!
//! [`ConflictAnalyzer`] takes a recorded [`Computation`], a set of object
//! *groups* (objects related by an invariant), and reports every pair of
//! concurrent cross-thread operations within the same group where at least
//! one side mutates.  Concurrency is decided with the optimal mixed vector
//! clock produced by the offline optimizer — exercising the paper's algorithm
//! end-to-end on traces from real executions.

use std::collections::HashMap;

use mvc_clock::TimestampAssigner;
use mvc_core::OfflineOptimizer;
use mvc_trace::{Computation, EventId, ObjectId};

/// A pair of concurrent, conflicting operations within one object group.
///
/// Pairs order lexicographically by `(group, first, second)` — the derived
/// order — which is also exactly the order [`ConflictAnalyzer::analyze`]
/// emits, so reports are deterministic across runs and sortable for
/// cross-implementation comparison (conformance oracle 8 relies on both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConflictPair {
    /// The index of the object group the pair belongs to.
    pub group: usize,
    /// The earlier-recorded event of the pair.
    pub first: EventId,
    /// The later-recorded event of the pair.
    pub second: EventId,
}

/// Detects concurrent conflicting accesses within declared object groups.
#[derive(Debug, Clone, Default)]
pub struct ConflictAnalyzer {
    groups: Vec<Vec<ObjectId>>,
}

impl ConflictAnalyzer {
    /// Creates an analyzer with no groups (no conflicts will be reported).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a group of objects related by an application invariant, returning
    /// the group's index.
    ///
    /// Duplicate objects within the group are dropped — membership counts
    /// once, so a repeated object cannot double-bucket its events and
    /// duplicate reported pairs.
    pub fn add_group(&mut self, objects: impl IntoIterator<Item = ObjectId>) -> usize {
        let mut deduped: Vec<ObjectId> = Vec::new();
        for o in objects {
            if !deduped.contains(&o) {
                deduped.push(o);
            }
        }
        self.groups.push(deduped);
        self.groups.len() - 1
    }

    /// Creates an analyzer from explicit groups (each deduplicated like
    /// [`add_group`](Self::add_group)).
    pub fn with_groups(groups: impl IntoIterator<Item = Vec<ObjectId>>) -> Self {
        let mut analyzer = Self::new();
        for g in groups {
            analyzer.add_group(g);
        }
        analyzer
    }

    /// The declared groups.
    pub fn groups(&self) -> &[Vec<ObjectId>] {
        &self.groups
    }

    /// Analyses a recorded computation and returns every conflict pair,
    /// sorted in the derived `(group, first, second)` order — the output is
    /// deterministic across runs.
    ///
    /// A pair is reported when the two events are in the same group, were
    /// performed by different threads, are causally concurrent under the
    /// optimal mixed vector clock, and at least one of them is a mutation
    /// ([`OpKind::conflicts_with`](mvc_trace::OpKind::conflicts_with)).
    pub fn analyze(&self, computation: &Computation) -> Vec<ConflictPair> {
        if computation.is_empty() || self.groups.is_empty() {
            return Vec::new();
        }
        // One offline solve serves every group: the plan depends only on the
        // computation, not on the groups, so it must stay outside the group
        // loop (a source-scan test enforces this).
        let plan = OfflineOptimizer::new().plan_for_computation(computation);
        let stamps = plan.assigner().assign(computation);

        // Map each object to the groups it belongs to.
        let mut object_groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for (gi, group) in self.groups.iter().enumerate() {
            for o in group {
                object_groups.entry(o.index()).or_default().push(gi);
            }
        }

        // Bucket events per group.
        let mut events_per_group: Vec<Vec<EventId>> = vec![Vec::new(); self.groups.len()];
        for e in computation.events() {
            if let Some(groups) = object_groups.get(&e.object.index()) {
                for &gi in groups {
                    events_per_group[gi].push(e.id);
                }
            }
        }

        let mut conflicts = Vec::new();
        for (gi, events) in events_per_group.iter().enumerate() {
            for (i, &a) in events.iter().enumerate() {
                for &b in &events[i + 1..] {
                    let ea = computation.event(a);
                    let eb = computation.event(b);
                    if ea.thread == eb.thread {
                        continue;
                    }
                    if !ea.kind.conflicts_with(eb.kind) {
                        continue;
                    }
                    let cmp = stamps[a.index()].compare(&stamps[b.index()]);
                    if cmp.is_concurrent() {
                        conflicts.push(ConflictPair {
                            group: gi,
                            first: a,
                            second: b,
                        });
                    }
                }
            }
        }
        conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_trace::{OpKind, ThreadId};

    fn record(c: &mut Computation, ops: &[(usize, usize, OpKind)]) {
        for &(t, o, k) in ops {
            c.record_op(ThreadId(t), ObjectId(o), k);
        }
    }

    #[test]
    fn empty_inputs_produce_no_conflicts() {
        let analyzer = ConflictAnalyzer::new();
        assert!(analyzer.analyze(&Computation::new()).is_empty());
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        assert!(analyzer.analyze(&c).is_empty(), "no groups declared");
        assert!(analyzer.groups().is_empty());
    }

    #[test]
    fn concurrent_writes_in_same_group_detected() {
        // Thread 0 writes account A while thread 1 writes account B; nothing
        // orders them, and A+B form an invariant group.
        let mut c = Computation::new();
        record(&mut c, &[(0, 0, OpKind::Write), (1, 1, OpKind::Write)]);
        let mut analyzer = ConflictAnalyzer::new();
        let g = analyzer.add_group([ObjectId(0), ObjectId(1)]);
        let conflicts = analyzer.analyze(&c);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].group, g);
        assert_eq!(conflicts[0].first, EventId(0));
        assert_eq!(conflicts[0].second, EventId(1));
    }

    #[test]
    fn ordered_operations_are_not_conflicts() {
        // Thread 1 only writes B after reading A (which thread 0 wrote), so the
        // operations are causally ordered through object A.
        let mut c = Computation::new();
        record(
            &mut c,
            &[
                (0, 0, OpKind::Write),
                (1, 0, OpKind::Read),
                (1, 1, OpKind::Write),
            ],
        );
        let analyzer = ConflictAnalyzer::with_groups([vec![ObjectId(0), ObjectId(1)]]);
        assert!(analyzer.analyze(&c).is_empty());
    }

    #[test]
    fn concurrent_reads_are_not_conflicts() {
        let mut c = Computation::new();
        record(&mut c, &[(0, 0, OpKind::Read), (1, 1, OpKind::Read)]);
        let analyzer = ConflictAnalyzer::with_groups([vec![ObjectId(0), ObjectId(1)]]);
        assert!(analyzer.analyze(&c).is_empty());
    }

    #[test]
    fn same_thread_operations_are_not_conflicts() {
        let mut c = Computation::new();
        record(&mut c, &[(0, 0, OpKind::Write), (0, 1, OpKind::Write)]);
        let analyzer = ConflictAnalyzer::with_groups([vec![ObjectId(0), ObjectId(1)]]);
        assert!(analyzer.analyze(&c).is_empty());
    }

    #[test]
    fn objects_outside_groups_are_ignored() {
        let mut c = Computation::new();
        record(&mut c, &[(0, 5, OpKind::Write), (1, 6, OpKind::Write)]);
        let analyzer = ConflictAnalyzer::with_groups([vec![ObjectId(0), ObjectId(1)]]);
        assert!(analyzer.analyze(&c).is_empty());
    }

    #[test]
    fn duplicate_objects_in_a_group_do_not_duplicate_pairs() {
        // Regression: a repeated object used to bucket its events once per
        // occurrence, so every pair involving it was reported twice.
        let mut c = Computation::new();
        record(&mut c, &[(0, 0, OpKind::Write), (1, 1, OpKind::Write)]);
        let mut analyzer = ConflictAnalyzer::new();
        let g = analyzer.add_group([ObjectId(0), ObjectId(1), ObjectId(0), ObjectId(1)]);
        assert_eq!(analyzer.groups()[g], vec![ObjectId(0), ObjectId(1)]);
        assert_eq!(analyzer.analyze(&c).len(), 1);
        let via_with = ConflictAnalyzer::with_groups([vec![ObjectId(0), ObjectId(0), ObjectId(1)]]);
        assert_eq!(via_with.analyze(&c).len(), 1, "with_groups dedupes too");
    }

    #[test]
    fn analyze_output_is_sorted_and_deterministic() {
        // Four threads, overlapping groups, plenty of concurrent writes.
        let mut c = Computation::new();
        record(
            &mut c,
            &[
                (0, 0, OpKind::Write),
                (1, 1, OpKind::Write),
                (2, 2, OpKind::Write),
                (3, 3, OpKind::Write),
                (0, 2, OpKind::Write),
                (1, 3, OpKind::Write),
            ],
        );
        let analyzer = ConflictAnalyzer::with_groups([
            vec![ObjectId(0), ObjectId(1)],
            vec![ObjectId(2), ObjectId(3)],
            vec![ObjectId(1), ObjectId(2)],
        ]);
        let first = analyzer.analyze(&c);
        assert!(!first.is_empty());
        let mut sorted = first.clone();
        sorted.sort();
        assert_eq!(first, sorted, "emitted order is the derived pair order");
        assert_eq!(first, analyzer.analyze(&c), "runs are identical");
    }

    // The one-offline-solve-serves-all-groups guard is enforced by
    // mvc-lint's `conflict-single-solve` rule (see lint.toml and
    // docs/LINTS.md), which replaced the source-scan test that lived here.

    #[test]
    fn multiple_groups_are_reported_independently() {
        let mut c = Computation::new();
        record(
            &mut c,
            &[
                (0, 0, OpKind::Write),
                (1, 1, OpKind::Write), // concurrent with the first, group 0
                (2, 2, OpKind::Write),
                (3, 3, OpKind::Write), // concurrent with the third, group 1
            ],
        );
        let analyzer = ConflictAnalyzer::with_groups([
            vec![ObjectId(0), ObjectId(1)],
            vec![ObjectId(2), ObjectId(3)],
        ]);
        let conflicts = analyzer.analyze(&c);
        let groups: Vec<_> = conflicts.iter().map(|p| p.group).collect();
        assert!(groups.contains(&0));
        assert!(groups.contains(&1));
    }
}
