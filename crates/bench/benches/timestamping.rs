//! Timestamping throughput: events per second for the thread, object,
//! optimal mixed, and chain clock assigners on identical workloads.
//!
//! The paper argues for *smaller* vectors; this bench quantifies the runtime
//! side-effect — fewer components mean cheaper max/merge per event.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mvc_bench::{bench_workload, WORKLOAD_EVENTS};
use mvc_clock::chain::ChainClockAssigner;
use mvc_clock::vector::{ObjectVectorClockAssigner, ThreadVectorClockAssigner};
use mvc_clock::TimestampAssigner;
use mvc_core::{replay, OfflineOptimizer, Timestamper, TimestampingEngine};
use mvc_online::{OnlineTimestamper, Popularity};

fn bench_batch_assigners(c: &mut Criterion) {
    let mut group = c.benchmark_group("timestamping");
    for &events in WORKLOAD_EVENTS {
        let workload = bench_workload(events, 11);
        let plan = OfflineOptimizer::new().plan_for_computation(&workload);
        let mixed = plan.assigner();
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(
            BenchmarkId::new("thread-clock", events),
            &workload,
            |b, w| b.iter(|| ThreadVectorClockAssigner::new().assign(w).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("object-clock", events),
            &workload,
            |b, w| b.iter(|| ObjectVectorClockAssigner::new().assign(w).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("mixed-clock", events),
            &workload,
            |b, w| b.iter(|| mixed.assign(w).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("chain-clock", events),
            &workload,
            |b, w| b.iter(|| ChainClockAssigner::new().assign(w).len()),
        );
    }
    group.finish();
}

fn bench_streaming_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming-engine");
    for &events in WORKLOAD_EVENTS {
        let workload = bench_workload(events, 13);
        let plan = OfflineOptimizer::new().plan_for_computation(&workload);
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::from_parameter(events), &workload, |b, w| {
            b.iter(|| {
                let mut engine = TimestampingEngine::with_components(plan.components().clone());
                let mut last_len = 0;
                for e in w.events() {
                    last_len = engine.observe(e.thread, e.object).unwrap().len();
                }
                last_len
            })
        });
    }
    group.finish();
}

fn bench_unified_timestampers(c: &mut Criterion) {
    // The three Timestamper impls behind the unified trait, dyn-dispatched as
    // a harness would drive them.
    let mut group = c.benchmark_group("unified-timestampers");
    let events = 10_000;
    let workload = bench_workload(events, 19);
    let plan = OfflineOptimizer::new().plan_for_computation(&workload);
    group.throughput(Throughput::Elements(events as u64));
    type MakeTimestamper = fn(&mvc_core::OfflinePlan) -> Box<dyn Timestamper>;
    let cases: Vec<(&str, MakeTimestamper)> = vec![
        ("batch-replay", |plan| Box::new(plan.timestamper())),
        ("engine", |plan| {
            Box::new(TimestampingEngine::with_components(
                plan.components().clone(),
            ))
        }),
        ("online-popularity", |_| {
            Box::new(OnlineTimestamper::new(Popularity::new()))
        }),
    ];
    for (name, make) in cases {
        group.bench_with_input(BenchmarkId::new(name, events), &workload, |b, w| {
            b.iter(|| {
                let mut timestamper = make(&plan);
                replay(timestamper.as_mut(), w)
                    .expect("covered")
                    .timestamps
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_offline_plan_on_computation(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan-from-computation");
    for &events in WORKLOAD_EVENTS {
        let workload = bench_workload(events, 17);
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::from_parameter(events), &workload, |b, w| {
            b.iter(|| OfflineOptimizer::new().plan_for_computation(w).clock_size())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_assigners,
    bench_streaming_engine,
    bench_unified_timestampers,
    bench_offline_plan_on_computation
);
criterion_main!(benches);
