//! Figure regeneration under `cargo bench`.
//!
//! Each bench target times one figure driver from `mvc-eval` with a reduced
//! trial count and, as a side effect, prints the regenerated series once —
//! so `cargo bench -p mvc-bench --bench figures` both times the evaluation
//! pipeline and reproduces the paper's Figures 4–7 plus the adaptive
//! ablation.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use mvc_eval::{adaptive_ablation, fig4, fig5, fig6, fig7, render_table, star_sweep, FigureData};

const TRIALS: usize = 3;

static PRINT_ONCE: Once = Once::new();

fn print_all_figures_once() {
    PRINT_ONCE.call_once(|| {
        for figure in [
            fig4(TRIALS),
            fig5(TRIALS),
            fig6(TRIALS),
            fig7(TRIALS),
            adaptive_ablation(TRIALS),
            star_sweep(TRIALS),
        ] {
            println!("{}", render_table(&figure));
        }
    });
}

fn total_points(figure: &FigureData) -> usize {
    figure.series.iter().map(|s| s.points.len()).sum()
}

fn bench_figures(c: &mut Criterion) {
    print_all_figures_once();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig4", |b| b.iter(|| total_points(&fig4(1))));
    group.bench_function("fig5", |b| b.iter(|| total_points(&fig5(1))));
    group.bench_function("fig6", |b| b.iter(|| total_points(&fig6(1))));
    group.bench_function("fig7", |b| b.iter(|| total_points(&fig7(1))));
    group.bench_function("adaptive", |b| {
        b.iter(|| total_points(&adaptive_ablation(1)))
    });
    group.bench_function("star", |b| b.iter(|| total_points(&star_sweep(1))));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
