//! Incremental vs. from-scratch offline-optimum tracking over reveal
//! streams.
//!
//! Measures the whole-stream cost of knowing the offline optimum (minimum
//! vertex cover of the revealed graph) after **every** revealed edge — the
//! workload of `CompetitiveTracker` and the trajectory experiments — for the
//! maintained [`IncrementalOptimum`] (one augmenting-path attempt per edge)
//! against the old approach of re-running Algorithm 1 on every prefix.  The
//! acceptance target for the incremental rewrite is a ≥10× speedup on the
//! 200×200, density-0.1 uniform stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mvc_bench::bench_edge_stream;
use mvc_core::OfflineOptimizer;
use mvc_graph::{BipartiteGraph, GraphScenario, IncrementalOptimum};

/// Nodes per side of the random streams (matches the acceptance criterion).
const NODES: usize = 200;

/// Edge density of the random streams.
const DENSITY: f64 = 0.1;

fn streams() -> Vec<(&'static str, Vec<(usize, usize)>)> {
    // The adversarial single-hub star: every reveal touches the hub object.
    let star: Vec<(usize, usize)> = (0..2 * NODES).map(|t| (t, 0)).collect();
    vec![
        ("star", star),
        (
            "uniform",
            bench_edge_stream(NODES, DENSITY, GraphScenario::Uniform, 42),
        ),
        (
            "nonuniform",
            bench_edge_stream(NODES, DENSITY, GraphScenario::default_nonuniform(), 42),
        ),
    ]
}

/// Maintained optimum: amortised `O(E)` per edge, `O(1)` cover-size reads.
fn track_incremental(stream: &[(usize, usize)]) -> usize {
    let mut optimum = IncrementalOptimum::new();
    let mut checksum = 0usize;
    for &(l, r) in stream {
        optimum.insert_edge(l, r);
        checksum += optimum.cover_size();
    }
    checksum
}

/// From-scratch baseline: Hopcroft–Karp + Kőnig cover on every prefix (what
/// `CompetitiveTracker::reveal` did before the incremental rewrite).
fn track_from_scratch(stream: &[(usize, usize)]) -> usize {
    let optimizer = OfflineOptimizer::new();
    let mut revealed = BipartiteGraph::new(0, 0);
    let mut checksum = 0usize;
    for &(l, r) in stream {
        revealed.add_edge_growing(l, r);
        checksum += optimizer.solve(&revealed).clock_size();
    }
    checksum
}

fn bench_optimum_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimum-tracking");
    group.sample_size(10);
    for (name, stream) in streams() {
        assert_eq!(
            track_incremental(&stream),
            track_from_scratch(&stream),
            "{name}: the two trackers must agree before being compared"
        );
        group.throughput(Throughput::Elements(stream.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("incremental", name),
            stream.as_slice(),
            |b, s| b.iter(|| track_incremental(s)),
        );
        group.bench_with_input(
            BenchmarkId::new("from-scratch", name),
            stream.as_slice(),
            |b, s| b.iter(|| track_from_scratch(s)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimum_tracking);
criterion_main!(benches);
