//! Per-event overhead of the online mechanisms (Section IV): how much does
//! component selection plus incremental timestamping cost per operation?
//!
//! Mechanisms are built by name through the `MechanismRegistry` — the bench
//! never names a concrete mechanism type, so anything added to the registry
//! is measured automatically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mvc_bench::bench_workload;
use mvc_online::{MechanismRegistry, OnlineTimestamper};
use mvc_trace::Computation;

fn run_mechanism(registry: &MechanismRegistry, name: &str, workload: &Computation) -> usize {
    let mechanism = registry.from_name(name).expect("registry name");
    OnlineTimestamper::new(mechanism)
        .run(workload)
        .expect("paper mechanisms cover their own events")
        .stats
        .clock_size()
}

fn bench_online_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("online-mechanisms");
    let events = 20_000;
    let workload = bench_workload(events, 23);
    let registry = MechanismRegistry::new().seed(3);
    group.throughput(Throughput::Elements(events as u64));
    for &name in MechanismRegistry::names() {
        group.bench_with_input(BenchmarkId::new(name, events), &workload, |b, w| {
            b.iter(|| run_mechanism(&registry, name, w))
        });
    }
    group.finish();
}

fn bench_online_decision_only(c: &mut Criterion) {
    use mvc_graph::{GraphScenario, RandomGraphBuilder};
    use mvc_online::simulate_final_size;

    let mut group = c.benchmark_group("online-decision-only");
    let (_, stream) = RandomGraphBuilder::new(200, 200)
        .density(0.05)
        .scenario(GraphScenario::default_nonuniform())
        .seed(31)
        .build_edge_stream();
    let registry = MechanismRegistry::new();
    group.throughput(Throughput::Elements(stream.len() as u64));
    for name in ["popularity", "naive-threads"] {
        group.bench_with_input(BenchmarkId::new(name, stream.len()), &stream, |b, s| {
            b.iter(|| {
                let mut mechanism = registry.from_name(name).expect("registry name");
                simulate_final_size(mechanism.as_mut(), s)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online_mechanisms, bench_online_decision_only);
criterion_main!(benches);
