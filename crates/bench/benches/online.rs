//! Per-event overhead of the online mechanisms (Section IV): how much does
//! component selection plus incremental timestamping cost per operation?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mvc_bench::bench_workload;
use mvc_online::{Adaptive, Naive, OnlineMechanism, OnlineTimestamper, Popularity, Random};
use mvc_trace::Computation;

fn run_mechanism<M: OnlineMechanism>(mechanism: M, workload: &Computation) -> usize {
    OnlineTimestamper::new(mechanism)
        .run(workload)
        .stats
        .clock_size()
}

fn bench_online_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("online-mechanisms");
    let events = 20_000;
    let workload = bench_workload(events, 23);
    group.throughput(Throughput::Elements(events as u64));
    group.bench_with_input(
        BenchmarkId::new("naive-threads", events),
        &workload,
        |b, w| b.iter(|| run_mechanism(Naive::threads(), w)),
    );
    group.bench_with_input(BenchmarkId::new("random", events), &workload, |b, w| {
        b.iter(|| run_mechanism(Random::seeded(3), w))
    });
    group.bench_with_input(BenchmarkId::new("popularity", events), &workload, |b, w| {
        b.iter(|| run_mechanism(Popularity::new(), w))
    });
    group.bench_with_input(BenchmarkId::new("adaptive", events), &workload, |b, w| {
        b.iter(|| run_mechanism(Adaptive::with_paper_thresholds(), w))
    });
    group.finish();
}

fn bench_online_decision_only(c: &mut Criterion) {
    use mvc_graph::{GraphScenario, RandomGraphBuilder};
    use mvc_online::simulate_final_size;

    let mut group = c.benchmark_group("online-decision-only");
    let (_, stream) = RandomGraphBuilder::new(200, 200)
        .density(0.05)
        .scenario(GraphScenario::default_nonuniform())
        .seed(31)
        .build_edge_stream();
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("popularity", stream.len()),
        &stream,
        |b, s| b.iter(|| simulate_final_size(&mut Popularity::new(), s)),
    );
    group.bench_with_input(
        BenchmarkId::new("naive-threads", stream.len()),
        &stream,
        |b, s| b.iter(|| simulate_final_size(&mut Naive::threads(), s)),
    );
    group.finish();
}

criterion_group!(benches, bench_online_mechanisms, bench_online_decision_only);
criterion_main!(benches);
