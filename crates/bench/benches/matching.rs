//! Benchmarks for the offline algorithm's building blocks: maximum matching
//! (Hopcroft–Karp vs. the simple augmenting-path baseline) and the full
//! offline plan (matching + Kőnig–Egerváry cover), across graph sizes and
//! densities.  Supports the paper's choice of Hopcroft–Karp in Section III-B.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mvc_bench::{bench_graph, GRAPH_SIZES};
use mvc_core::OfflineOptimizer;
use mvc_graph::matching::{hopcroft_karp, simple_augmenting};

fn bench_matching_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for &nodes in GRAPH_SIZES {
        let graph = bench_graph(nodes, 0.05, 42);
        group.throughput(Throughput::Elements(graph.edge_count() as u64));
        group.bench_with_input(BenchmarkId::new("hopcroft-karp", nodes), &graph, |b, g| {
            b.iter(|| hopcroft_karp(g).size())
        });
        group.bench_with_input(
            BenchmarkId::new("simple-augmenting", nodes),
            &graph,
            |b, g| b.iter(|| simple_augmenting(g).size()),
        );
    }
    group.finish();
}

fn bench_density_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching-density");
    for &density in &[0.01, 0.05, 0.2, 0.5] {
        let graph = bench_graph(200, density, 7);
        group.throughput(Throughput::Elements(graph.edge_count().max(1) as u64));
        group.bench_with_input(
            BenchmarkId::new("hopcroft-karp", format!("d{density}")),
            &graph,
            |b, g| b.iter(|| hopcroft_karp(g).size()),
        );
    }
    group.finish();
}

fn bench_offline_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline-plan");
    for &nodes in GRAPH_SIZES {
        let graph = bench_graph(nodes, 0.05, 42);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &graph, |b, g| {
            b.iter(|| {
                OfflineOptimizer::new()
                    .plan_for_graph(g.clone())
                    .clock_size()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matching_algorithms,
    bench_density_sensitivity,
    bench_offline_plan
);
criterion_main!(benches);
