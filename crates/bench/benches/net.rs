//! Networked-service benchmarks: frame codec and end-to-end sessions.
//!
//! Three layers are measured separately so a regression is attributable:
//!
//! * `net-codec` — pure encode/decode of `Events` frames (no transport,
//!   no pipeline): the per-event varint cost both ways.
//! * `net-inproc` — one full client session over the in-process duplex
//!   pair against a sequential-engine server: framing + session
//!   management + ingress ticketing + merge + stamping, with the
//!   transport reduced to a byte queue (no sockets, deterministic).
//! * `net-tcp` — the same session shape over real loopback TCP with the
//!   thread-per-connection server, one and four producer clients: adds
//!   syscalls, socket buffers, and scheduler interaction.  This is the
//!   slot `BENCH_throughput.json`'s `net` section gates on, reduced to a
//!   repeatable criterion target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mvc_core::{MemoryRecorder, TimestampingEngine};
use mvc_net::frame::{write_frame, write_stream_header};
use mvc_net::{
    serve_tcp, ClientConfig, Frame, FrameReader, InProcTransport, NetServer, ProducerClient,
    ServerConfig, TcpTransport,
};
use mvc_trace::{Computation, OpKind, WorkloadBuilder, WorkloadKind};

const EVENTS: usize = 20_000;

fn stream(threads: usize, objects: usize) -> Computation {
    WorkloadBuilder::new(threads, objects)
        .operations(EVENTS)
        .kind(WorkloadKind::Uniform)
        .seed(11)
        .build()
}

fn bench_codec(c: &mut Criterion) {
    let computation = stream(8, 8);
    let events: Vec<(u32, u32, OpKind)> = computation
        .events()
        .map(|e| (e.thread.index() as u32, e.object.index() as u32, e.kind))
        .collect();
    let mut group = c.benchmark_group("net-codec");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("encode-events", EVENTS), |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(EVENTS * 3 + 16);
            for chunk in events.chunks(4096) {
                write_frame(
                    &mut out,
                    &Frame::Events {
                        events: chunk.to_vec(),
                    },
                );
            }
            out
        });
    });

    let mut encoded = Vec::new();
    write_stream_header(&mut encoded);
    for chunk in events.chunks(4096) {
        write_frame(
            &mut encoded,
            &Frame::Events {
                events: chunk.to_vec(),
            },
        );
    }
    group.bench_function(BenchmarkId::new("decode-events", EVENTS), |b| {
        b.iter(|| {
            let mut reader = FrameReader::new();
            reader.feed(&encoded);
            let mut total = 0;
            while let Some(frame) = reader.try_next().expect("valid frame") {
                match frame {
                    Frame::Events { events } => total += events.len(),
                    other => panic!("unexpected frame {other:?}"),
                }
            }
            assert_eq!(total, EVENTS);
        });
    });
    group.finish();
}

fn bench_inproc(c: &mut Criterion) {
    let computation = stream(8, 8);
    let mut group = c.benchmark_group("net-inproc");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("session", EVENTS), |b| {
        b.iter(|| {
            let mut server = NetServer::new(
                TimestampingEngine::new(),
                Box::new(MemoryRecorder::new()),
                ServerConfig::default(),
            );
            let (near, mut far) = InProcTransport::pair();
            let conn = server.connect();
            let threads = (0..8).map(|t| format!("t{t}")).collect();
            let objects = (0..8).map(|o| format!("o{o}")).collect();
            let mut client =
                ProducerClient::connect(near, ClientConfig::new(threads, objects, false))
                    .expect("handshake");
            for e in computation.events() {
                client.record(e.thread.index(), e.object.index(), e.kind);
            }
            client.request_finish();
            let zero = Some(std::time::Duration::ZERO);
            while !client.is_finished() {
                client.step(zero).expect("client step");
                server.service(conn, &mut far).expect("server service");
            }
            server.finish().expect("server finish").report.events
        });
    });
    group.finish();
}

fn bench_tcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("net-tcp");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);

    for clients in [1usize, 4] {
        let threads = 8;
        let computation = stream(threads, 8);
        group.bench_with_input(
            BenchmarkId::new("session", format!("{clients}-clients")),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let listener =
                        std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
                    let addr = listener.local_addr().expect("listener addr");
                    let object_names: Vec<String> = (0..8).map(|o| format!("o{o}")).collect();
                    let mut producers: Vec<ProducerClient<TcpTransport>> = (0..clients)
                        .map(|cidx| {
                            let names: Vec<String> = (0..threads)
                                .filter(|t| t % clients == cidx)
                                .map(|t| format!("t{t}"))
                                .collect();
                            ProducerClient::connect(
                                TcpTransport::connect(addr).expect("connect"),
                                ClientConfig::new(names, object_names.clone(), false),
                            )
                            .expect("handshake")
                        })
                        .collect();
                    for e in computation.events() {
                        let c = e.thread.index() % clients;
                        producers[c].record(e.thread.index() / clients, e.object.index(), e.kind);
                    }
                    for p in &mut producers {
                        p.request_finish();
                    }
                    let server = NetServer::new(
                        TimestampingEngine::new(),
                        Box::new(MemoryRecorder::new()),
                        ServerConfig::default(),
                    );
                    let mut events = 0;
                    std::thread::scope(|scope| {
                        let srv = scope.spawn(|| serve_tcp(listener, server, clients));
                        let drivers: Vec<_> = producers
                            .into_iter()
                            .map(|p| scope.spawn(move || p.finish().expect("producer")))
                            .collect();
                        for d in drivers {
                            d.join().expect("producer thread");
                        }
                        let run = srv.join().expect("server thread").expect("server run");
                        events = run.report.events;
                    });
                    assert_eq!(events, EVENTS);
                    events
                });
            },
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_codec(c);
    bench_inproc(c);
    bench_tcp(c);
}

criterion_group!(net, benches);
criterion_main!(net);
