//! Ingest pipeline throughput: per-thread segmented buffers + order-
//! preserving merge + sink.
//!
//! Each iteration times the *whole* produce-and-drain cycle on one core:
//! session setup, staging every event through `SharedObject::apply`
//! (lock + ticket + buffer push), then the drain — merge, bulk stamping
//! through the sequential engine, delivery to the selected sink.  That
//! makes the numbers a conservative single-core ceiling for the full
//! pipeline and lets the sink backends be compared like-for-like; for the
//! drain-only figure (staging excluded, the shape `BENCH_throughput.json`
//! records) use `mvc-eval throughput`, which stages before starting the
//! clock.  Thread counts 1/4/8 vary the k of the k-way merge over a fixed
//! event total.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mvc_core::sink::{CodecSink, EventSink, MemoryRecorder, StatsSink, TeeSink};
use mvc_core::{OfflineOptimizer, TimestampingEngine};
use mvc_runtime::TraceSession;
use mvc_trace::{Computation, WorkloadBuilder, WorkloadKind};

const EVENTS: usize = 50_000;
const OBJECTS: usize = 64;

fn stream(threads: usize) -> Computation {
    WorkloadBuilder::new(threads, OBJECTS)
        .operations(EVENTS)
        .kind(WorkloadKind::Uniform)
        .seed(42)
        .build()
}

/// One full produce-and-drain cycle: stages the workload into a session's
/// per-thread buffers, then drains it through engine + sink; returns the
/// sink so the caller can keep it alive across iterations (same
/// allocator-trim dodge as `benches/sharded.rs`).
fn drain_once(
    workload: &Computation,
    threads: usize,
    map: &mvc_clock::ComponentMap,
    sink: Box<dyn EventSink>,
) -> Box<dyn EventSink> {
    let session = TraceSession::new();
    let handles: Vec<_> = (0..threads)
        .map(|t| session.register_thread(&format!("t{t}")))
        .collect();
    let objects: Vec<_> = (0..OBJECTS)
        .map(|o| session.shared_object(&format!("o{o}"), ()))
        .collect();
    for e in workload.events() {
        objects[e.object.index()].apply(&handles[e.thread.index()], e.kind, |_| ());
    }
    let engine = TimestampingEngine::with_components(map.clone());
    let live = session.live_with_sink(engine, sink);
    let (sink, report) = live
        .finish_into_sink()
        .map_err(|(_, e)| e)
        .expect("cover is complete");
    assert_eq!(report.events, workload.len());
    sink
}

fn bench_merge_fanin(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest-merge-fanin");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        let workload = stream(threads);
        let map = OfflineOptimizer::new()
            .plan_for_computation(&workload)
            .components()
            .clone();
        group.bench_with_input(BenchmarkId::new("mem-sink", threads), &workload, |b, w| {
            let mut keep = None;
            b.iter(|| {
                keep = Some(drain_once(
                    w,
                    threads,
                    &map,
                    Box::new(MemoryRecorder::new()),
                ));
            });
        });
    }
    group.finish();
}

fn bench_sink_backends(c: &mut Criterion) {
    let threads = 8;
    let workload = stream(threads);
    let map = OfflineOptimizer::new()
        .plan_for_computation(&workload)
        .components()
        .clone();
    let mut group = c.benchmark_group("ingest-sinks");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);
    type SinkFactory = fn() -> Box<dyn EventSink>;
    let make: [(&str, SinkFactory); 4] = [
        ("mem", || Box::new(MemoryRecorder::new())),
        ("codec", || Box::new(CodecSink::new())),
        ("stats", || Box::new(StatsSink::new())),
        ("tee", || {
            Box::new(TeeSink::new(vec![
                Box::new(MemoryRecorder::new()),
                Box::new(StatsSink::new()),
                Box::new(CodecSink::new()),
            ]))
        }),
    ];
    for (name, build) in make {
        group.bench_with_input(BenchmarkId::new(name, EVENTS), &workload, |b, w| {
            let mut keep = None;
            b.iter(|| {
                keep = Some(drain_once(w, threads, &map, build()));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge_fanin, bench_sink_backends);
criterion_main!(benches);
