//! Sharded vs. sequential engine throughput.
//!
//! Both engines replay the identical workload with the identical
//! offline-optimal component map through the unified batch path
//! ([`mvc_core::replay`] → `observe_batch`), so the comparison isolates the
//! engine: routing, slice arithmetic, merge, and (threaded executor) queue
//! traffic.  Two streams are measured:
//!
//! * `uniform` — the acceptance stream: 64 threads × 64 objects, uniformly
//!   random pairs; the offline-optimal clock is wide (≈64 components), so
//!   there is real slice work to divide.
//! * `phase-shift` — the adversarial partition-churn family: the active
//!   object window slides over the object space, so per-object rows keep
//!   going cold — the worst case for the shards' working sets.
//!
//! The executor is picked by `ShardExecutor::auto()` (worker threads on
//! multi-core machines, inline on single-CPU hosts); the measured executor
//! is printed in each benchmark's name so recorded numbers are
//! interpretable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mvc_core::{replay, OfflineOptimizer, TimestampingEngine};
use mvc_shard::{ShardExecutor, ShardedEngine};
use mvc_trace::{Computation, WorkloadBuilder, WorkloadKind};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const EVENTS: usize = 50_000;

fn stream(kind: WorkloadKind, seed: u64) -> Computation {
    WorkloadBuilder::new(64, 64)
        .operations(EVENTS)
        .kind(kind)
        .seed(seed)
        .build()
}

fn executor_label(executor: ShardExecutor) -> &'static str {
    match executor {
        ShardExecutor::Inline => "inline",
        ShardExecutor::Threads => "threads",
    }
}

fn bench_stream(c: &mut Criterion, name: &str, workload: Computation) {
    let plan = OfflineOptimizer::new().plan_for_computation(&workload);
    let map = plan.components().clone();
    let executor = ShardExecutor::auto();

    let mut group = c.benchmark_group(format!("sharded-{name}"));
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);
    // `keep` holds each iteration's run until the next one has allocated:
    // dropping ~25 MB of stamps all at once would otherwise let glibc trim
    // the arena top between iterations, and the following iteration would
    // measure page faults instead of the engine (an asymmetric tax — the
    // sequential engine's continuous churn never triggers the trim).
    group.bench_with_input(BenchmarkId::new("sequential", EVENTS), &workload, |b, w| {
        let mut keep = None;
        b.iter(|| {
            let mut engine = TimestampingEngine::with_components(map.clone());
            let run = replay(&mut engine, w).expect("covered");
            let stamped = run.timestamps.len();
            keep = Some(run);
            stamped
        })
    });
    for shards in SHARD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new(
                format!("sharded-{}x-{}", shards, executor_label(executor)),
                EVENTS,
            ),
            &workload,
            |b, w| {
                let mut keep = None;
                b.iter(|| {
                    let mut engine = ShardedEngine::with_executor(map.clone(), shards, executor);
                    let run = replay(&mut engine, w).expect("covered");
                    let stamped = run.timestamps.len();
                    keep = Some(run);
                    stamped
                })
            },
        );
    }
    group.finish();
}

fn bench_uniform(c: &mut Criterion) {
    bench_stream(c, "uniform", stream(WorkloadKind::Uniform, 42));
}

fn bench_phase_shift(c: &mut Criterion) {
    bench_stream(
        c,
        "phase-shift",
        stream(
            WorkloadKind::PhaseShift {
                period: 256,
                shift: 1,
            },
            42,
        ),
    );
}

criterion_group!(benches, bench_uniform, bench_phase_shift);
criterion_main!(benches);
