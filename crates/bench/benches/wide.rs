//! Wide-clock hot path: dense vs. chunked stamp rows, modulo vs.
//! partitioned shard assignment.
//!
//! The clustered workload family gives every thread a small community of
//! objects, so at wide widths each row's live entries sit in a few 64-entry
//! chunks.  Two comparisons:
//!
//! * `wide-stamps-{width}` — the sequential engine with
//!   [`StampFormat::Dense`] vs. [`StampFormat::Chunked`] rows over the
//!   identical event stream.  Width 64 (every chunk live) is the chunked
//!   representation's worst case; width 4096 (occupancy ≈ 1/64) is where
//!   it wins.  `mvc-eval throughput --clock-width W` measures the same
//!   pair with interleaved keepalive-correct slots; this bench is the
//!   quick per-target view.
//! * `wide-assignment` — the fused sharded engine under modulo striping
//!   vs. the locality-aware partitioned assignment, same clustered stream.
//!
//! Stamps are drained through a recycled window buffer (as the ingest
//! pipeline does) so the measured footprint is the engine's rows, not an
//! events × width stamp arena.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mvc_clock::{Component, ComponentMap};
use mvc_core::{StampFormat, Timestamper, TimestampingEngine};
use mvc_shard::{ShardAssignment, ShardExecutor, ShardedEngine};
use mvc_trace::{ObjectId, ThreadId, WorkloadBuilder, WorkloadKind};

const EVENTS: usize = 20_000;
const WINDOW: usize = 512;

/// A clustered event stream plus the all-threads-then-all-objects map that
/// keeps each community's components in contiguous chunk ranges.
fn clustered_case(width: usize) -> (ComponentMap, Vec<(ThreadId, ObjectId)>) {
    let threads = (width / 2).max(1);
    let objects = (width - threads).max(1);
    let clusters = (width / 64).max(1);
    let computation = WorkloadBuilder::new(threads, objects)
        .operations(EVENTS)
        .kind(WorkloadKind::Clustered { clusters })
        .seed(42)
        .build();
    let pairs = computation.events().map(|e| (e.thread, e.object)).collect();
    let mut map = ComponentMap::new();
    for t in 0..threads {
        map.push(Component::Thread(ThreadId(t)));
    }
    for o in 0..objects {
        map.push(Component::Object(ObjectId(o)));
    }
    (map, pairs)
}

fn drain<T: Timestamper>(engine: &mut T, pairs: &[(ThreadId, ObjectId)]) -> usize {
    let mut out = Vec::new();
    let mut stamped = 0;
    for window in pairs.chunks(WINDOW) {
        out.clear();
        engine.observe_batch(window, &mut out).expect("covered");
        stamped += out.len();
    }
    stamped
}

fn bench_stamp_formats(c: &mut Criterion) {
    for width in [64, 4096] {
        let (map, pairs) = clustered_case(width);
        let mut group = c.benchmark_group(format!("wide-stamps-{width}"));
        group.throughput(Throughput::Elements(EVENTS as u64));
        group.sample_size(10);
        for (name, format) in [
            ("dense", StampFormat::Dense),
            ("chunked", StampFormat::Chunked),
        ] {
            group.bench_with_input(BenchmarkId::new(name, EVENTS), &pairs, |b, pairs| {
                // As in `sharded.rs`: keep each iteration's engine alive until
                // the next has allocated, so the allocator doesn't trim the
                // arena between iterations and tax the follow-up with page
                // faults.
                let mut keep = None;
                b.iter(|| {
                    let mut engine = TimestampingEngine::with_format(map.clone(), format);
                    let stamped = drain(&mut engine, pairs);
                    keep = Some(engine);
                    stamped
                })
            });
        }
        group.finish();
    }
}

fn bench_assignments(c: &mut Criterion) {
    let (map, pairs) = clustered_case(1024);
    let mut group = c.benchmark_group("wide-assignment");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);
    for (name, assignment) in [
        ("modulo", ShardAssignment::Modulo),
        ("partitioned", ShardAssignment::Partitioned),
    ] {
        group.bench_with_input(BenchmarkId::new(name, EVENTS), &pairs, |b, pairs| {
            let mut keep = None;
            b.iter(|| {
                let mut engine = ShardedEngine::with_assignment(
                    map.clone(),
                    4,
                    ShardExecutor::Inline,
                    assignment,
                );
                let stamped = drain(&mut engine, pairs);
                keep = Some(engine);
                stamped
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stamp_formats, bench_assignments);
criterion_main!(benches);
