//! Shared helpers for the Criterion benchmarks.
//!
//! The benchmark binaries live in `benches/`:
//!
//! * `matching` — Hopcroft–Karp vs. the simple augmenting-path algorithm and
//!   the full offline plan (matching + Kőnig cover) across graph sizes and
//!   densities.
//! * `timestamping` — events-per-second throughput of the thread, object,
//!   optimal mixed, and chain clock assigners.
//! * `online` — per-event overhead of the online mechanisms driving the
//!   incremental engine.
//! * `incremental` — incremental vs. from-scratch offline-optimum tracking
//!   over star / uniform / nonuniform reveal streams (the hot path of the
//!   competitive-trajectory experiments).
//! * `sharded` — the sharded engine vs. the sequential engine at 1/2/4/8
//!   shards on uniform and phase-shift 64×64 streams (the scale-out hot
//!   path; `mvc-eval throughput` emits the same comparison as JSON).
//! * `figures` — regenerates the data series for Figures 4–7 under Criterion
//!   timing so the full evaluation is exercised by `cargo bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mvc_graph::{BipartiteGraph, GraphScenario, RandomGraphBuilder};
use mvc_trace::{Computation, WorkloadBuilder, WorkloadKind};

/// Standard graph sizes used by the matching benchmarks.
pub const GRAPH_SIZES: &[usize] = &[50, 100, 200, 400];

/// Standard workload sizes (events) used by the timestamping benchmarks.
pub const WORKLOAD_EVENTS: &[usize] = &[1_000, 10_000, 50_000];

/// Builds the uniform random graph used by the matching benches.
pub fn bench_graph(nodes: usize, density: f64, seed: u64) -> BipartiteGraph {
    RandomGraphBuilder::new(nodes, nodes)
        .density(density)
        .scenario(GraphScenario::Uniform)
        .seed(seed)
        .build()
}

/// Builds a shuffled reveal stream over a random graph, as consumed by the
/// optimum-tracking benches.
pub fn bench_edge_stream(
    nodes: usize,
    density: f64,
    scenario: GraphScenario,
    seed: u64,
) -> Vec<(usize, usize)> {
    RandomGraphBuilder::new(nodes, nodes)
        .density(density)
        .scenario(scenario)
        .seed(seed)
        .build_edge_stream()
        .1
}

/// Builds the nonuniform workload used by the timestamping benches.
pub fn bench_workload(events: usize, seed: u64) -> Computation {
    WorkloadBuilder::new(64, 64)
        .operations(events)
        .kind(WorkloadKind::Nonuniform {
            hot_fraction: 0.2,
            hot_boost: 6.0,
        })
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_graph_has_expected_shape() {
        let g = bench_graph(50, 0.1, 1);
        assert_eq!(g.n_left(), 50);
        assert_eq!(g.n_right(), 50);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn bench_workload_has_requested_events() {
        let c = bench_workload(500, 2);
        assert_eq!(c.len(), 500);
    }
}
