//! The [`Computation`]: an append-only log of thread–object events.
//!
//! The computation owns the per-thread and per-object chains.  Appending an
//! event in *observation order* (any linear extension of happened-before —
//! for example, the order a tracer saw operations, which is always such an
//! extension because each chain is appended in its own order) is enough to
//! reconstruct the full happened-before relation.

use serde::{Deserialize, Serialize};

use mvc_graph::BipartiteGraph;

use crate::causality::CausalityOracle;
use crate::event::{Event, OpKind};
use crate::ids::{EventId, ObjectId, ThreadId};

/// A computation in the happened-before model: a set of events plus the
/// per-thread and per-object chains that induce the partial order.
///
/// Events are appended with [`record`](Computation::record) (or
/// [`record_op`](Computation::record_op)); the append order must be a linear
/// extension of the real-time order in which the operations were serialised
/// (per thread and per object), which is automatic when a single trace source
/// appends events as it observes them.
///
/// Chains are stored densely, indexed by raw thread/object id (ids are dense
/// by construction everywhere in this workspace), so the per-event append is
/// two array indexes rather than two map lookups — `record` is on the hot
/// path of every tracing backend.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Computation {
    events: Vec<Event>,
    /// `thread_chains[t]` is thread `t`'s chain; slots below the largest
    /// recorded id may be empty (a thread that never performed an op).
    thread_chains: Vec<Vec<EventId>>,
    object_chains: Vec<Vec<EventId>>,
    /// Number of non-empty thread chains.
    active_threads: usize,
    /// Number of non-empty object chains.
    active_objects: usize,
}

impl Computation {
    /// Creates an empty computation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a generic operation of `thread` on `object`, returning the new
    /// event's id.
    pub fn record(&mut self, thread: ThreadId, object: ObjectId) -> EventId {
        self.record_op(thread, object, OpKind::Op)
    }

    /// Records an operation of the given kind, returning the new event's id.
    pub fn record_op(&mut self, thread: ThreadId, object: ObjectId, kind: OpKind) -> EventId {
        let id = EventId(self.events.len());
        if self.thread_chains.len() <= thread.index() {
            self.thread_chains.resize_with(thread.index() + 1, Vec::new);
        }
        if self.object_chains.len() <= object.index() {
            self.object_chains.resize_with(object.index() + 1, Vec::new);
        }
        let thread_chain = &mut self.thread_chains[thread.index()];
        if thread_chain.is_empty() {
            self.active_threads += 1;
        }
        let thread_seq = thread_chain.len();
        thread_chain.push(id);
        let object_chain = &mut self.object_chains[object.index()];
        if object_chain.is_empty() {
            self.active_objects += 1;
        }
        let object_seq = object_chain.len();
        object_chain.push(id);
        self.events.push(Event {
            id,
            thread,
            object,
            kind,
            thread_seq,
            object_seq,
        });
        id
    }

    /// Records a whole slice of `(thread, object)` operations in order.
    pub fn record_all(&mut self, ops: &[(ThreadId, ObjectId)]) -> Vec<EventId> {
        ops.iter().map(|&(t, o)| self.record(t, o)).collect()
    }

    /// Appends a whole batch of typed operations in order — the bulk
    /// counterpart of [`record_op`](Self::record_op), used by sinks and
    /// drains that already hold a stamped batch.  Event ids are assigned
    /// sequentially; the first appended event's id is the computation's
    /// length before the call.
    pub fn record_ops<I>(&mut self, ops: I)
    where
        I: IntoIterator<Item = (ThreadId, ObjectId, OpKind)>,
    {
        let iter = ops.into_iter();
        let (lower, _) = iter.size_hint();
        self.events.reserve(lower);
        for (thread, object, kind) in iter {
            self.record_op(thread, object, kind);
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the computation has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to an event of this computation.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// The event with the given id, if it exists.
    pub fn get(&self, id: EventId) -> Option<&Event> {
        self.events.get(id.index())
    }

    /// Iterator over all events in append order.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Iterator over the thread ids that appear in the computation, in
    /// ascending id order.
    pub fn threads(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.thread_chains
            .iter()
            .enumerate()
            .filter(|(_, chain)| !chain.is_empty())
            .map(|(t, _)| ThreadId(t))
    }

    /// Iterator over the object ids that appear in the computation, in
    /// ascending id order.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.object_chains
            .iter()
            .enumerate()
            .filter(|(_, chain)| !chain.is_empty())
            .map(|(o, _)| ObjectId(o))
    }

    /// Number of distinct threads that performed at least one operation.
    pub fn thread_count(&self) -> usize {
        self.active_threads
    }

    /// Number of distinct objects with at least one operation.
    pub fn object_count(&self) -> usize {
        self.active_objects
    }

    /// `1 + max thread index`, i.e. the size a thread-based vector clock
    /// indexed by raw thread id would need. Zero for an empty computation.
    pub fn thread_index_bound(&self) -> usize {
        self.thread_chains.len()
    }

    /// `1 + max object index`, i.e. the size an object-based vector clock
    /// indexed by raw object id would need. Zero for an empty computation.
    pub fn object_index_bound(&self) -> usize {
        self.object_chains.len()
    }

    /// The chain of events of a thread, in program order.
    pub fn thread_chain(&self, thread: ThreadId) -> &[EventId] {
        self.thread_chains
            .get(thread.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The chain of events on an object, in serialization order.
    pub fn object_chain(&self, object: ObjectId) -> &[EventId] {
        self.object_chains
            .get(object.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The event that immediately precedes `id` in its thread chain, if any.
    pub fn thread_predecessor(&self, id: EventId) -> Option<EventId> {
        let e = self.event(id);
        if e.thread_seq == 0 {
            None
        } else {
            Some(self.thread_chain(e.thread)[e.thread_seq - 1])
        }
    }

    /// The event that immediately precedes `id` in its object chain, if any.
    pub fn object_predecessor(&self, id: EventId) -> Option<EventId> {
        let e = self.event(id);
        if e.object_seq == 0 {
            None
        } else {
            Some(self.object_chain(e.object)[e.object_seq - 1])
        }
    }

    /// Builds the thread–object bipartite graph of the computation
    /// (Section III-A): one edge per (thread, object) pair with at least one
    /// operation, regardless of how many operations that pair has.
    pub fn bipartite_graph(&self) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(self.thread_index_bound(), self.object_index_bound());
        for e in &self.events {
            let (l, r) = e.edge();
            g.add_edge(l, r);
        }
        g
    }

    /// Builds an exact happened-before oracle for this computation.
    ///
    /// The oracle costs `O(|E|² / 64)` bits of memory (a reachability bitset
    /// per event) and is intended for validation and tests, not for
    /// production timestamping — that is what the vector clocks are for.
    pub fn causality_oracle(&self) -> CausalityOracle {
        CausalityOracle::build(self)
    }
}

impl Extend<(ThreadId, ObjectId)> for Computation {
    fn extend<I: IntoIterator<Item = (ThreadId, ObjectId)>>(&mut self, iter: I) {
        for (t, o) in iter {
            self.record(t, o);
        }
    }
}

impl FromIterator<(ThreadId, ObjectId)> for Computation {
    fn from_iter<I: IntoIterator<Item = (ThreadId, ObjectId)>>(iter: I) -> Self {
        let mut c = Computation::new();
        c.extend(iter);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Computation {
        // T0: o0, o1 ; T1: o1, o0
        [(0, 0), (0, 1), (1, 1), (1, 0)]
            .into_iter()
            .map(|(t, o)| (ThreadId(t), ObjectId(o)))
            .collect()
    }

    #[test]
    fn empty_computation() {
        let c = Computation::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.thread_count(), 0);
        assert_eq!(c.object_count(), 0);
        assert_eq!(c.thread_index_bound(), 0);
        assert_eq!(c.object_index_bound(), 0);
        assert!(c.bipartite_graph().is_empty());
        assert_eq!(c.thread_chain(ThreadId(3)), &[] as &[EventId]);
    }

    #[test]
    fn record_assigns_sequential_ids_and_seqs() {
        let c = simple();
        assert_eq!(c.len(), 4);
        let e0 = c.event(EventId(0));
        let e1 = c.event(EventId(1));
        let e3 = c.event(EventId(3));
        assert_eq!(e0.thread_seq, 0);
        assert_eq!(e1.thread_seq, 1);
        assert_eq!(e3.object_seq, 1, "second op on object 0");
        assert_eq!(c.thread_chain(ThreadId(0)), &[EventId(0), EventId(1)]);
        assert_eq!(c.object_chain(ObjectId(0)), &[EventId(0), EventId(3)]);
    }

    #[test]
    fn predecessors() {
        let c = simple();
        assert_eq!(c.thread_predecessor(EventId(0)), None);
        assert_eq!(c.thread_predecessor(EventId(1)), Some(EventId(0)));
        assert_eq!(c.object_predecessor(EventId(2)), Some(EventId(1)));
        assert_eq!(c.object_predecessor(EventId(0)), None);
    }

    #[test]
    fn counts_and_bounds() {
        let mut c = Computation::new();
        c.record(ThreadId(5), ObjectId(2));
        assert_eq!(c.thread_count(), 1);
        assert_eq!(
            c.thread_index_bound(),
            6,
            "bound follows the raw index, not the count"
        );
        assert_eq!(c.object_index_bound(), 3);
        assert_eq!(c.threads().collect::<Vec<_>>(), vec![ThreadId(5)]);
        assert_eq!(c.objects().collect::<Vec<_>>(), vec![ObjectId(2)]);
    }

    #[test]
    fn bipartite_graph_deduplicates_pairs() {
        let mut c = Computation::new();
        for _ in 0..5 {
            c.record(ThreadId(0), ObjectId(0));
        }
        c.record(ThreadId(1), ObjectId(0));
        let g = c.bipartite_graph();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 0));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn record_all_returns_ids_in_order() {
        let mut c = Computation::new();
        let ids = c.record_all(&[(ThreadId(0), ObjectId(0)), (ThreadId(1), ObjectId(1))]);
        assert_eq!(ids, vec![EventId(0), EventId(1)]);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let c = simple();
        assert!(c.get(EventId(99)).is_none());
        assert!(c.get(EventId(3)).is_some());
    }

    #[test]
    fn record_op_stores_kind() {
        let mut c = Computation::new();
        let id = c.record_op(ThreadId(0), ObjectId(0), OpKind::Write);
        assert_eq!(c.event(id).kind, OpKind::Write);
    }

    #[test]
    fn record_ops_bulk_matches_per_event_appends() {
        let ops = [
            (ThreadId(0), ObjectId(0), OpKind::Write),
            (ThreadId(1), ObjectId(0), OpKind::Read),
            (ThreadId(0), ObjectId(1), OpKind::Acquire),
        ];
        let mut bulk = Computation::new();
        bulk.record_ops(ops);
        let mut single = Computation::new();
        for (t, o, k) in ops {
            single.record_op(t, o, k);
        }
        assert_eq!(bulk, single);
        assert_eq!(bulk.len(), 3);
    }
}
