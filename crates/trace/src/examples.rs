//! Hard-coded example computations from the paper.
//!
//! Figure 1 of the paper shows a computation of four threads `T1..T4` on four
//! objects `O1..O4` whose minimum mixed vector clock has the three components
//! `{T2, O2, O3}`.  We reproduce the interaction structure exactly (which
//! thread touches which object, and the chain orders that make the Figure 3
//! timestamps come out); the reproduction tests and the `paper_example`
//! binary are built on it.
//!
//! Indices are zero-based: the paper's `T1..T4` are [`ThreadId`]`(0)` through
//! [`ThreadId`]`(3)` and `O1..O4` are [`ObjectId`]`(0)` through
//! [`ObjectId`]`(3)`.

use crate::computation::Computation;
use crate::ids::{ObjectId, ThreadId};

/// The operations of the paper's Figure 1 computation, in an order consistent
/// with the figure's left-to-right layout (one operation per circle).
///
/// * `T1` operates on `O2`.
/// * `T2` operates on `O1`, then `O2`, then `O3`, then `O4`.
/// * `T3` operates on `O3` (after `T2`'s `O3` operation), then `O2`.
/// * `T4` operates on `O3`.
pub const FIGURE1_OPS: &[(usize, usize)] = &[
    (1, 0), // T2 on O1
    (0, 1), // T1 on O2
    (1, 1), // T2 on O2
    (1, 2), // T2 on O3
    (2, 2), // T3 on O3
    (1, 3), // T2 on O4
    (2, 1), // T3 on O2
    (3, 2), // T4 on O3
];

/// Builds the computation of the paper's Figure 1.
///
/// ```
/// let c = mvc_trace::examples::paper_figure1();
/// assert_eq!(c.thread_count(), 4);
/// assert_eq!(c.object_count(), 4);
/// ```
pub fn paper_figure1() -> Computation {
    FIGURE1_OPS
        .iter()
        .map(|&(t, o)| (ThreadId(t), ObjectId(o)))
        .collect()
}

/// A tiny two-thread, two-object computation with both ordered and concurrent
/// event pairs; convenient for doctests and quick sanity checks.
pub fn tiny() -> Computation {
    [(0, 0), (1, 1), (0, 1), (1, 0)]
        .into_iter()
        .map(|(t, o)| (ThreadId(t), ObjectId(o)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EventId;
    use mvc_graph::cover::minimum_vertex_cover_of;

    #[test]
    fn figure1_shape() {
        let c = paper_figure1();
        assert_eq!(c.len(), FIGURE1_OPS.len());
        assert_eq!(c.thread_count(), 4);
        assert_eq!(c.object_count(), 4);
        // T2 performs four operations, the most of any thread.
        assert_eq!(c.thread_chain(ThreadId(1)).len(), 4);
    }

    #[test]
    fn figure1_bipartite_graph_has_cover_of_size_three() {
        let c = paper_figure1();
        let g = c.bipartite_graph();
        let cover = minimum_vertex_cover_of(&g);
        assert_eq!(cover.size(), 3, "the paper's mixed clock has 3 components");
        assert!(cover.covers_all_edges(&g));
        // T2 (index 1) and O3 (index 2) are forced members of every minimum cover.
        assert!(cover.contains_left(1));
        assert!(cover.contains_right(2));
    }

    #[test]
    fn figure1_causality_matches_paper_claim() {
        // The paper argues [T2,O1] -> [T3,O3] by transitivity through [T2,O3].
        let c = paper_figure1();
        let oracle = c.causality_oracle();
        let t2_o1 = EventId(0);
        let t2_o3 = EventId(3);
        let t3_o3 = EventId(4);
        assert!(oracle.happened_before(t2_o1, t2_o3));
        assert!(oracle.happened_before(t2_o3, t3_o3));
        assert!(oracle.happened_before(t2_o1, t3_o3));
    }

    #[test]
    fn tiny_has_concurrency() {
        let c = tiny();
        let oracle = c.causality_oracle();
        assert!(oracle.concurrent(EventId(0), EventId(1)));
        assert!(oracle.happened_before(EventId(0), EventId(2)));
    }
}
