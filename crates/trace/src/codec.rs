//! Compact binary encoding of computations.
//!
//! Traces recorded by the runtime crate (or generated synthetically) can be
//! persisted and replayed through the offline optimizer.  The format is a
//! simple length-prefixed sequence of `(thread, object, kind)` triples using
//! variable-length integers, built on the [`bytes`] crate.
//!
//! The format is versioned with a 4-byte magic so that accidental decoding of
//! unrelated data fails loudly instead of producing a garbage computation.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::computation::Computation;
use crate::event::OpKind;
use crate::ids::{ObjectId, ThreadId};

/// Magic bytes identifying a serialized computation ("MVC" + version 1).
const MAGIC: &[u8; 4] = b"MVC\x01";

/// Errors produced when decoding a serialized computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The buffer ended in the middle of a record.
    UnexpectedEof,
    /// An operation-kind tag was not recognised.
    BadOpKind(u8),
    /// A varint was longer than the maximum allowed length.
    VarintOverflow,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "buffer is not a serialized computation"),
            DecodeError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            DecodeError::BadOpKind(k) => write!(f, "unknown operation kind tag {k}"),
            DecodeError::VarintOverflow => write!(f, "variable-length integer overflows u64"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn op_kind_tag(kind: OpKind) -> u8 {
    match kind {
        OpKind::Read => 0,
        OpKind::Write => 1,
        OpKind::Acquire => 2,
        OpKind::Release => 3,
        OpKind::Op => 4,
    }
}

fn op_kind_from_tag(tag: u8) -> Result<OpKind, DecodeError> {
    Ok(match tag {
        0 => OpKind::Read,
        1 => OpKind::Write,
        2 => OpKind::Acquire,
        3 => OpKind::Release,
        4 => OpKind::Op,
        other => return Err(DecodeError::BadOpKind(other)),
    })
}

fn put_varint(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, DecodeError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        if shift >= 64 {
            return Err(DecodeError::VarintOverflow);
        }
        let byte = buf.get_u8();
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Serializes a computation into a compact binary buffer.
pub fn encode(computation: &Computation) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + computation.len() * 4);
    buf.put_slice(MAGIC);
    put_varint(&mut buf, computation.len() as u64);
    for e in computation.events() {
        put_varint(&mut buf, e.thread.index() as u64);
        put_varint(&mut buf, e.object.index() as u64);
        buf.put_u8(op_kind_tag(e.kind));
    }
    buf.freeze()
}

/// Decodes a computation previously produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is malformed or truncated.
pub fn decode(bytes: &[u8]) -> Result<Computation, DecodeError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < MAGIC.len() || &buf.copy_to_bytes(MAGIC.len())[..] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let count = get_varint(&mut buf)?;
    let mut computation = Computation::new();
    for _ in 0..count {
        let thread = get_varint(&mut buf)? as usize;
        let object = get_varint(&mut buf)? as usize;
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        let kind = op_kind_from_tag(buf.get_u8())?;
        computation.record_op(ThreadId(thread), ObjectId(object), kind);
    }
    Ok(computation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadBuilder, WorkloadKind};
    use proptest::prelude::*;

    #[test]
    fn round_trip_empty() {
        let c = Computation::new();
        assert_eq!(decode(&encode(&c)).unwrap(), c);
    }

    #[test]
    fn round_trip_small() {
        let mut c = Computation::new();
        c.record_op(ThreadId(0), ObjectId(3), OpKind::Write);
        c.record_op(ThreadId(200), ObjectId(1), OpKind::Acquire);
        c.record_op(ThreadId(0), ObjectId(3), OpKind::Read);
        assert_eq!(decode(&encode(&c)).unwrap(), c);
    }

    #[test]
    fn round_trip_generated_workload() {
        let c = WorkloadBuilder::new(16, 32)
            .operations(1000)
            .kind(WorkloadKind::Nonuniform {
                hot_fraction: 0.25,
                hot_boost: 4.0,
            })
            .seed(77)
            .build();
        assert_eq!(decode(&encode(&c)).unwrap(), c);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE"), Err(DecodeError::BadMagic));
        assert_eq!(decode(b""), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let c = WorkloadBuilder::new(4, 4).operations(10).seed(1).build();
        let encoded = encode(&c);
        let truncated = &encoded[..encoded.len() - 2];
        assert_eq!(decode(truncated), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn bad_op_kind_rejected() {
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        let mut raw = encode(&c).to_vec();
        let last = raw.len() - 1;
        raw[last] = 99; // corrupt the op-kind tag
        assert_eq!(decode(&raw), Err(DecodeError::BadOpKind(99)));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(DecodeError::BadMagic
            .to_string()
            .contains("not a serialized"));
        assert!(DecodeError::BadOpKind(7).to_string().contains('7'));
        assert!(DecodeError::UnexpectedEof
            .to_string()
            .contains("end of buffer"));
        assert!(DecodeError::VarintOverflow
            .to_string()
            .contains("overflows"));
    }

    #[test]
    fn varint_round_trip_large_values() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            put_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(ops in proptest::collection::vec((0usize..64, 0usize..64, 0u8..5), 0..200)) {
            let mut c = Computation::new();
            for (t, o, k) in ops {
                c.record_op(ThreadId(t), ObjectId(o), op_kind_from_tag(k).unwrap());
            }
            prop_assert_eq!(decode(&encode(&c)).unwrap(), c);
        }
    }
}
