//! Compact binary encoding of computations.
//!
//! Traces recorded by the runtime crate (or generated synthetically) can be
//! persisted and replayed through the offline optimizer.  The format is a
//! simple length-prefixed sequence of `(thread, object, kind)` triples using
//! variable-length integers, built on the [`bytes`] crate.
//!
//! The format is versioned: a 3-byte magic (`MVC`) followed by an explicit
//! protocol-version byte ([`FORMAT_VERSION`]).  Accidental decoding of
//! unrelated data fails loudly with [`DecodeError::BadMagic`], and a stream
//! written by a future format fails with [`DecodeError::VersionMismatch`]
//! instead of misparsing.  The version byte has carried `1` since the first
//! release (the historical 4-byte magic was the same `MVC\x01`), so every
//! existing trace still decodes.
//!
//! Besides the whole-computation [`encode`]/[`decode`] pair, the module has
//! a streaming pair for the event-sink pipeline: [`StreamEncoder`] appends
//! events one batch at a time and emits output byte-identical to [`encode`]
//! of the equivalent computation (so a trace can be persisted without ever
//! materialising a [`Computation`]), and [`StreamDecoder`] consumes the
//! encoding in arbitrary chunks, yielding events as soon as their bytes are
//! complete.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::computation::Computation;
use crate::event::OpKind;
use crate::ids::{ObjectId, ThreadId};

/// The three magic bytes identifying a serialized computation; the byte
/// after them is the explicit [`FORMAT_VERSION`].
const MAGIC_PREFIX: &[u8; 3] = b"MVC";

/// The protocol version this build reads and writes, carried as the fourth
/// header byte.  Streams written by every release so far carry version 1
/// (the historical magic was the same four bytes `MVC\x01`), so old traces
/// keep decoding unchanged; a stream from a future format fails with
/// [`DecodeError::VersionMismatch`] instead of misparsing.
pub const FORMAT_VERSION: u8 = 1;

/// The full 4-byte header prefix: magic + version.
const MAGIC: &[u8; 4] = b"MVC\x01";

/// Errors produced when decoding a serialized computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The magic matched but the version byte is one this build does not
    /// speak.  Carries the version found on the wire.
    VersionMismatch(u8),
    /// The buffer ended in the middle of a record.
    UnexpectedEof,
    /// An operation-kind tag was not recognised.
    BadOpKind(u8),
    /// A varint was longer than the maximum allowed length.
    VarintOverflow,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "buffer is not a serialized computation"),
            DecodeError::VersionMismatch(found) => write!(
                f,
                "stream is format version {found}, this build speaks version {FORMAT_VERSION}"
            ),
            DecodeError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            DecodeError::BadOpKind(k) => write!(f, "unknown operation kind tag {k}"),
            DecodeError::VarintOverflow => write!(f, "variable-length integer overflows u64"),
        }
    }
}

/// Checks the 4-byte header prefix: wrong magic and wrong version are
/// distinguished so a future-format stream fails loudly as such.
fn check_header_prefix(bytes: &[u8; 4]) -> Result<(), DecodeError> {
    if &bytes[..3] != MAGIC_PREFIX {
        return Err(DecodeError::BadMagic);
    }
    if bytes[3] != FORMAT_VERSION {
        return Err(DecodeError::VersionMismatch(bytes[3]));
    }
    Ok(())
}

impl std::error::Error for DecodeError {}

fn op_kind_tag(kind: OpKind) -> u8 {
    match kind {
        OpKind::Read => 0,
        OpKind::Write => 1,
        OpKind::Acquire => 2,
        OpKind::Release => 3,
        OpKind::Op => 4,
    }
}

fn op_kind_from_tag(tag: u8) -> Result<OpKind, DecodeError> {
    Ok(match tag {
        0 => OpKind::Read,
        1 => OpKind::Write,
        2 => OpKind::Acquire,
        3 => OpKind::Release,
        4 => OpKind::Op,
        other => return Err(DecodeError::BadOpKind(other)),
    })
}

/// Appends `value` as a 7-bit little-endian varint (the wire integer format
/// every layer of the codec — and the `mvc-net` framing built on top of it —
/// shares).
pub fn put_varint(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, DecodeError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        if shift >= 64 {
            return Err(DecodeError::VarintOverflow);
        }
        let byte = buf.get_u8();
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Serializes a computation into a compact binary buffer.
pub fn encode(computation: &Computation) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + computation.len() * 4);
    buf.put_slice(MAGIC);
    put_varint(&mut buf, computation.len() as u64);
    for e in computation.events() {
        put_varint(&mut buf, e.thread.index() as u64);
        put_varint(&mut buf, e.object.index() as u64);
        buf.put_u8(op_kind_tag(e.kind));
    }
    buf.freeze()
}

/// Decodes a computation previously produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is malformed or truncated.
pub fn decode(bytes: &[u8]) -> Result<Computation, DecodeError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < MAGIC.len() {
        return Err(DecodeError::BadMagic);
    }
    let header: [u8; 4] = buf.copy_to_bytes(MAGIC.len())[..].try_into().unwrap();
    check_header_prefix(&header)?;
    let count = get_varint(&mut buf)?;
    let mut computation = Computation::new();
    for _ in 0..count {
        let thread = get_varint(&mut buf)? as usize;
        let object = get_varint(&mut buf)? as usize;
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        let kind = op_kind_from_tag(buf.get_u8())?;
        computation.record_op(ThreadId(thread), ObjectId(object), kind);
    }
    Ok(computation)
}

/// Incremental encoder: accepts events one at a time and produces output
/// **byte-identical** to [`encode`] of a computation holding the same event
/// sequence.
///
/// The record body is encoded as each event arrives; only the header (magic
/// plus the varint event count, whose byte length depends on the final
/// count) is prepended at [`finish`](StreamEncoder::finish).  Memory is the
/// encoded bytes themselves — no chains, no [`Computation`].
#[derive(Debug, Clone, Default)]
pub struct StreamEncoder {
    body: BytesMut,
    count: u64,
}

impl StreamEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event to the encoding.
    pub fn push(&mut self, thread: ThreadId, object: ObjectId, kind: OpKind) {
        put_varint(&mut self.body, thread.index() as u64);
        put_varint(&mut self.body, object.index() as u64);
        self.body.put_u8(op_kind_tag(kind));
        self.count += 1;
    }

    /// Number of events encoded so far.
    pub fn event_count(&self) -> u64 {
        self.count
    }

    /// Encoded size so far in bytes, excluding the header written by
    /// [`finish`](Self::finish).
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Seals the encoding: magic, event count, then the accumulated body.
    pub fn finish(self) -> Bytes {
        let mut buf = BytesMut::with_capacity(MAGIC.len() + 10 + self.body.len());
        buf.put_slice(MAGIC);
        put_varint(&mut buf, self.count);
        buf.put_slice(&self.body);
        buf.freeze()
    }
}

/// Incremental decoder: the inverse of [`StreamEncoder`], consuming an
/// encoding in arbitrary chunks.
///
/// Feed bytes with [`feed`](StreamDecoder::feed) and pull completed events
/// with [`try_next`](StreamDecoder::try_next), which returns `Ok(None)`
/// whenever the buffered bytes end mid-record (more input is needed).
/// Malformed input — bad magic, an unknown op-kind tag, an overlong varint —
/// fails as soon as the offending bytes are seen, with the same
/// [`DecodeError`] the batch [`decode`] reports.  Truncation is only
/// detectable by the caller declaring the input complete:
/// [`finish`](StreamDecoder::finish) returns [`DecodeError::UnexpectedEof`]
/// if the declared event count has not been reached.
#[derive(Debug, Clone)]
pub struct StreamDecoder {
    /// Buffered input; `pos` marks the consumed prefix, compacted away once
    /// it grows past a threshold so memory stays proportional to the unread
    /// tail, not the whole stream.
    buf: Vec<u8>,
    pos: usize,
    /// `None` until the header has been decoded; then the declared count.
    expected: Option<u64>,
    yielded: u64,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Attempts to read one varint from the front of `buf` without consuming on
/// failure.  `Ok(None)` means more bytes are needed.
///
/// Public for the layers that frame this codec (notably `mvc-net`), so every
/// wire varint in the workspace has exactly one decoder.
pub fn peek_varint(buf: &[u8]) -> Result<Option<(u64, usize)>, DecodeError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 64 {
            return Err(DecodeError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(Some((value, i + 1)));
        }
        shift += 7;
    }
    // Ran out of buffered bytes mid-varint.  A u64 varint is at most 10
    // bytes (the 10th must terminate), so 10 buffered continuation bytes
    // are already overlong — report it now rather than waiting for the
    // terminating byte that can never make the value fit.
    if buf.len() >= 10 {
        return Err(DecodeError::VarintOverflow);
    }
    Ok(None)
}

impl StreamDecoder {
    /// Creates a decoder expecting a fresh encoding (magic first).
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            pos: 0,
            expected: None,
            yielded: 0,
        }
    }

    /// Appends a chunk of encoded bytes to the decoder's buffer.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    fn unread(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
        if self.pos >= 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Declared event count, once the header has been decoded.
    pub fn expected_events(&self) -> Option<u64> {
        self.expected
    }

    /// Events yielded so far.
    pub fn events_decoded(&self) -> u64 {
        self.yielded
    }

    /// Returns `true` once every declared event has been yielded.
    pub fn is_complete(&self) -> bool {
        self.expected == Some(self.yielded)
    }

    fn decode_header(&mut self) -> Result<bool, DecodeError> {
        if self.expected.is_some() {
            return Ok(true);
        }
        let unread = self.unread();
        if unread.len() < MAGIC.len() {
            // A wrong magic is reported as soon as the prefix diverges.  (A
            // version byte can only be judged once all three magic bytes
            // precede it, so divergence before byte 4 is always BadMagic.)
            if !MAGIC_PREFIX.starts_with(&unread[..unread.len().min(3)]) {
                return Err(DecodeError::BadMagic);
            }
            return Ok(false);
        }
        let header: [u8; 4] = unread[..MAGIC.len()].try_into().unwrap();
        check_header_prefix(&header)?;
        match peek_varint(&unread[MAGIC.len()..])? {
            None => Ok(false),
            Some((count, used)) => {
                self.consume(MAGIC.len() + used);
                self.expected = Some(count);
                Ok(true)
            }
        }
    }

    /// Yields the next event if its bytes are fully buffered.
    ///
    /// `Ok(None)` means "need more input" (or, once
    /// [`is_complete`](Self::is_complete), "finished").
    ///
    /// # Errors
    ///
    /// Returns the same [`DecodeError`] variants as [`decode`], as soon as
    /// the malformed bytes are observed.
    pub fn try_next(&mut self) -> Result<Option<(ThreadId, ObjectId, OpKind)>, DecodeError> {
        if !self.decode_header()? {
            return Ok(None);
        }
        if self.is_complete() {
            return Ok(None);
        }
        let unread = self.unread();
        let Some((thread, t_used)) = peek_varint(unread)? else {
            return Ok(None);
        };
        let Some((object, o_used)) = peek_varint(&unread[t_used..])? else {
            return Ok(None);
        };
        let Some(&tag) = unread.get(t_used + o_used) else {
            return Ok(None);
        };
        let kind = op_kind_from_tag(tag)?;
        self.consume(t_used + o_used + 1);
        self.yielded += 1;
        Ok(Some((
            ThreadId(thread as usize),
            ObjectId(object as usize),
            kind,
        )))
    }

    /// Declares the input complete.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if the header never arrived or
    /// fewer events than declared were yielded (a truncated stream).
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.is_complete() {
            Ok(())
        } else {
            Err(DecodeError::UnexpectedEof)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadBuilder, WorkloadKind};
    use proptest::prelude::*;

    #[test]
    fn round_trip_empty() {
        let c = Computation::new();
        assert_eq!(decode(&encode(&c)).unwrap(), c);
    }

    #[test]
    fn round_trip_small() {
        let mut c = Computation::new();
        c.record_op(ThreadId(0), ObjectId(3), OpKind::Write);
        c.record_op(ThreadId(200), ObjectId(1), OpKind::Acquire);
        c.record_op(ThreadId(0), ObjectId(3), OpKind::Read);
        assert_eq!(decode(&encode(&c)).unwrap(), c);
    }

    #[test]
    fn round_trip_generated_workload() {
        let c = WorkloadBuilder::new(16, 32)
            .operations(1000)
            .kind(WorkloadKind::Nonuniform {
                hot_fraction: 0.25,
                hot_boost: 4.0,
            })
            .seed(77)
            .build();
        assert_eq!(decode(&encode(&c)).unwrap(), c);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE"), Err(DecodeError::BadMagic));
        assert_eq!(decode(b""), Err(DecodeError::BadMagic));
    }

    #[test]
    fn version_mismatch_is_distinguished_from_bad_magic() {
        // Same magic, future version byte: must fail loudly as a version
        // problem, not misparse and not claim "not a serialized computation".
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        let mut raw = encode(&c).to_vec();
        assert_eq!(raw[3], FORMAT_VERSION, "version byte sits after the magic");
        raw[3] = 2;
        assert_eq!(decode(&raw), Err(DecodeError::VersionMismatch(2)));
        // A diverging *magic* byte is still BadMagic even in position 3.
        let mut bad = encode(&c).to_vec();
        bad[2] = b'X';
        assert_eq!(decode(&bad), Err(DecodeError::BadMagic));
    }

    #[test]
    fn stream_decoder_reports_version_mismatch_at_the_fourth_byte() {
        // The streaming decoder must flag the wrong version as soon as the
        // version byte arrives, before any record bytes are seen.
        let mut decoder = StreamDecoder::new();
        decoder.feed(b"MVC");
        assert_eq!(decoder.try_next(), Ok(None), "magic prefix alone is fine");
        decoder.feed(&[9]);
        assert_eq!(decoder.try_next(), Err(DecodeError::VersionMismatch(9)));
    }

    #[test]
    fn current_version_streams_still_decode() {
        // The wire bytes are unchanged from the pre-versioned format: the
        // header is still exactly `MVC\x01`, so old traces decode as-is.
        let c = WorkloadBuilder::new(4, 4).operations(16).seed(5).build();
        let encoded = encode(&c);
        assert_eq!(&encoded[..4], b"MVC\x01");
        assert_eq!(decode(&encoded).unwrap(), c);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let c = WorkloadBuilder::new(4, 4).operations(10).seed(1).build();
        let encoded = encode(&c);
        let truncated = &encoded[..encoded.len() - 2];
        assert_eq!(decode(truncated), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn bad_op_kind_rejected() {
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        let mut raw = encode(&c).to_vec();
        let last = raw.len() - 1;
        raw[last] = 99; // corrupt the op-kind tag
        assert_eq!(decode(&raw), Err(DecodeError::BadOpKind(99)));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(DecodeError::BadMagic
            .to_string()
            .contains("not a serialized"));
        assert!(DecodeError::BadOpKind(7).to_string().contains('7'));
        assert!(DecodeError::UnexpectedEof
            .to_string()
            .contains("end of buffer"));
        assert!(DecodeError::VarintOverflow
            .to_string()
            .contains("overflows"));
        let msg = DecodeError::VersionMismatch(3).to_string();
        assert!(
            msg.contains("version 3") && msg.contains("version 1"),
            "{msg}"
        );
    }

    #[test]
    fn varint_round_trip_large_values() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            put_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(ops in proptest::collection::vec((0usize..64, 0usize..64, 0u8..5), 0..200)) {
            let mut c = Computation::new();
            for (t, o, k) in ops {
                c.record_op(ThreadId(t), ObjectId(o), op_kind_from_tag(k).unwrap());
            }
            prop_assert_eq!(decode(&encode(&c)).unwrap(), c);
        }

        #[test]
        fn prop_stream_encoder_is_byte_identical_to_batch_encode(
            ops in proptest::collection::vec((0usize..900, 0usize..900, 0u8..5), 0..300),
        ) {
            // Id range crosses the 1-byte/2-byte varint boundary (128) so the
            // equality is exercised on variable record widths.
            let mut c = Computation::new();
            let mut encoder = StreamEncoder::new();
            for (t, o, k) in ops {
                let kind = op_kind_from_tag(k).unwrap();
                c.record_op(ThreadId(t), ObjectId(o), kind);
                encoder.push(ThreadId(t), ObjectId(o), kind);
            }
            prop_assert_eq!(encoder.event_count(), c.len() as u64);
            prop_assert_eq!(&encoder.finish()[..], &encode(&c)[..]);
        }

        #[test]
        fn prop_stream_decoder_round_trips_under_arbitrary_chunking(
            ops in proptest::collection::vec((0usize..300, 0usize..300, 0u8..5), 0..120),
            chunk in 1usize..17,
        ) {
            let mut c = Computation::new();
            for &(t, o, k) in &ops {
                c.record_op(ThreadId(t), ObjectId(o), op_kind_from_tag(k).unwrap());
            }
            let encoded = encode(&c);
            let mut decoder = StreamDecoder::new();
            let mut decoded = Computation::new();
            for piece in encoded.chunks(chunk) {
                decoder.feed(piece);
                while let Some((t, o, kind)) = decoder.try_next().unwrap() {
                    decoded.record_op(t, o, kind);
                }
            }
            prop_assert!(decoder.is_complete());
            prop_assert_eq!(decoder.events_decoded(), c.len() as u64);
            decoder.finish().unwrap();
            prop_assert_eq!(decoded, c);
        }
    }

    /// Drives a decoder over `bytes` one byte at a time and returns the
    /// first error (from `try_next` or the final `finish`).
    fn stream_decode_expecting_error(bytes: &[u8]) -> DecodeError {
        let mut decoder = StreamDecoder::new();
        for &b in bytes {
            decoder.feed(&[b]);
            loop {
                match decoder.try_next() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => return e,
                }
            }
        }
        decoder
            .finish()
            .expect_err("malformed stream must not finish cleanly")
    }

    #[test]
    fn stream_decoder_rejects_bad_magic_as_soon_as_the_prefix_diverges() {
        // Full wrong magic...
        assert_eq!(
            stream_decode_expecting_error(b"NOPE"),
            DecodeError::BadMagic
        );
        // ...and a diverging partial prefix, before 4 bytes ever arrive.
        let mut decoder = StreamDecoder::new();
        decoder.feed(b"MX");
        assert_eq!(decoder.try_next(), Err(DecodeError::BadMagic));
    }

    #[test]
    fn stream_decoder_reports_truncation_at_finish() {
        let c = WorkloadBuilder::new(4, 4).operations(10).seed(1).build();
        let encoded = encode(&c);
        // Truncate at every prefix length: events before the cut still
        // decode; finish must flag the missing tail.
        for cut in 0..encoded.len() {
            let mut decoder = StreamDecoder::new();
            decoder.feed(&encoded[..cut]);
            while let Ok(Some(_)) = decoder.try_next() {}
            assert_eq!(
                decoder.finish(),
                Err(DecodeError::UnexpectedEof),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn stream_decoder_rejects_bad_op_kind_mid_stream() {
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        let mut raw = encode(&c).to_vec();
        let last = raw.len() - 1;
        raw[last] = 99; // corrupt the op-kind tag
        assert_eq!(
            stream_decode_expecting_error(&raw),
            DecodeError::BadOpKind(99)
        );
    }

    #[test]
    fn stream_decoder_rejects_varint_overflow() {
        // Header magic followed by an 11-byte all-continuation varint: the
        // count can never fit a u64.
        let mut raw = MAGIC.to_vec();
        raw.extend([0x80u8; 11]);
        assert_eq!(
            stream_decode_expecting_error(&raw),
            DecodeError::VarintOverflow
        );
        // Same corruption inside a record id.
        let mut raw = MAGIC.to_vec();
        raw.push(1); // one event
        raw.extend([0x80u8; 11]); // thread id varint overflows
        assert_eq!(
            stream_decode_expecting_error(&raw),
            DecodeError::VarintOverflow
        );
        // A 10-continuation-byte prefix is already overlong — the decoder
        // must not wait for a terminating byte that cannot make it fit
        // (and must not misreport truncation here).
        let mut decoder = StreamDecoder::new();
        decoder.feed(MAGIC);
        decoder.feed(&[0x80u8; 10]);
        assert_eq!(decoder.try_next(), Err(DecodeError::VarintOverflow));
        // One byte short of that is still legitimately incomplete.
        let mut decoder = StreamDecoder::new();
        decoder.feed(MAGIC);
        decoder.feed(&[0x80u8; 9]);
        assert_eq!(decoder.try_next(), Ok(None));
    }

    #[test]
    fn stream_decoder_ignores_trailing_bytes_after_completion() {
        let mut encoder = StreamEncoder::new();
        encoder.push(ThreadId(1), ObjectId(2), OpKind::Write);
        assert_eq!(encoder.body_len(), 3);
        let bytes = encoder.finish();
        let mut decoder = StreamDecoder::new();
        decoder.feed(&bytes);
        decoder.feed(b"trailing garbage");
        assert_eq!(
            decoder.try_next().unwrap(),
            Some((ThreadId(1), ObjectId(2), OpKind::Write))
        );
        assert_eq!(
            decoder.try_next().unwrap(),
            None,
            "complete: no more events"
        );
        assert_eq!(decoder.expected_events(), Some(1));
        assert!(decoder.is_complete());
        decoder.finish().unwrap();
    }
}
