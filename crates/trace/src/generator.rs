//! Synthetic workload generators.
//!
//! The paper evaluates on random bipartite graphs; real uses of the library
//! need event-level computations.  This module generates both: given a target
//! interaction structure it emits a full [`Computation`] (a sequence of
//! thread–object operations), whose induced bipartite graph then has the
//! requested shape.
//!
//! The available workload families are:
//!
//! * [`WorkloadKind::Uniform`] — every operation picks a uniformly random
//!   (thread, object) pair; corresponds to the paper's *Uniform* scenario.
//! * [`WorkloadKind::Nonuniform`] — a small hot set of threads and objects
//!   receives a boosted share of operations; the paper's *Nonuniform*
//!   scenario.
//! * [`WorkloadKind::ProducerConsumer`] — producers write to queue objects,
//!   consumers read from them; models the pipeline workloads used to motivate
//!   causality tracking in debugging.
//! * [`WorkloadKind::LockStriped`] — each thread mostly works on its own
//!   stripe of objects with occasional cross-stripe accesses; models
//!   partitioned data structures where the thread–object graph is sparse.
//! * [`WorkloadKind::Phased`] — the computation alternates between phases that
//!   use disjoint object sets; models barrier-style programs.
//! * [`WorkloadKind::Star`] — every thread hammers a tiny set of hub objects;
//!   the paper's adversarial lower-bound stream, on which naive-threads pays
//!   one component per thread while the optimum is the hub count.
//! * [`WorkloadKind::Clustered`] — threads and objects are divided into
//!   communities and operations stay inside their community; models
//!   microservice/actor systems where interaction is dense locally and
//!   absent globally — the workload that rewards locality-aware shard
//!   assignment and chunked wide clocks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mvc_graph::{BipartiteGraph, GraphScenario, RandomGraphBuilder};

use crate::computation::Computation;
use crate::event::OpKind;
use crate::ids::{ObjectId, ThreadId};

/// The family of synthetic workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum WorkloadKind {
    /// Uniformly random (thread, object) pairs.
    #[default]
    Uniform,
    /// A hot fraction of threads/objects receives `hot_boost`× the traffic.
    Nonuniform {
        /// Fraction of threads and objects that are hot (0, 1].
        hot_fraction: f64,
        /// Relative weight of a hot vertex when sampling.
        hot_boost: f64,
    },
    /// Producers append to queue objects; consumers drain them.
    ProducerConsumer {
        /// Number of queue objects shared between producers and consumers.
        queues: usize,
    },
    /// Threads work mostly within their own stripe of objects.
    LockStriped {
        /// Probability that an operation escapes its stripe.
        cross_stripe_prob: f64,
    },
    /// Phases use disjoint slices of the object space.
    Phased {
        /// Number of phases.
        phases: usize,
    },
    /// Every thread hammers a tiny set of hub objects — the paper's
    /// adversarial lower-bound stream for the Naive mechanism.  Threads are
    /// visited round-robin so each one is guaranteed to touch a hub: the
    /// offline optimum is at most `hubs`, while naive-threads pays one
    /// component per thread (competitive ratio `n / hubs`).
    Star {
        /// Number of hub objects (clamped to `[1, objects]`).
        hubs: usize,
    },
    /// Threads are paired 1:1 with objects — the thread–object graph is a
    /// (rotating) perfect matching, the paper's other adversarial family:
    /// every edge is vertex-disjoint, so the offline optimum equals the
    /// maximum matching exactly and *no* online mechanism can beat one
    /// component per pair (the lower bound of Section IV is tight here).
    /// With a non-zero `rotation_period` the pairing shifts by one partner
    /// every period, so the revealed graph densifies into a union of
    /// matchings over time — a steady drip of brand-new edges that forces
    /// online mechanisms (and a growing clock) to add components for the
    /// whole run, not just during warm-up.
    ///
    /// The matching property needs `objects >= threads`: thread `t` works
    /// on object `(t + rotation) % objects`, so with fewer objects the
    /// pairing wraps, objects collect several threads, and the graph is a
    /// union of small stars rather than a matching (still a valid workload,
    /// but the tight-lower-bound reading above no longer applies).
    Matching {
        /// Operations between rotations of the pairing (0 = never rotate:
        /// the graph stays a fixed perfect matching).
        rotation_period: usize,
    },
    /// The active object window slides over the object space every `period`
    /// operations — barrier-free phase behaviour.  Unlike
    /// [`Phased`](WorkloadKind::Phased), whose phases use disjoint static
    /// slices, the window *wraps around* and shifts by `shift` slots, so
    /// consecutive phases overlap and every shard/partition of the object
    /// space keeps receiving both old and brand-new objects: the worst case
    /// for partitioned state (cache churn, cross-shard traffic) and for
    /// popularity-style mechanisms whose hot set keeps expiring.
    PhaseShift {
        /// Operations per phase (clamped to at least 1).
        period: usize,
        /// How many object slots the window slides per phase (clamped to at
        /// least 1).
        shift: usize,
    },
    /// Threads and objects are split into `clusters` equal communities
    /// (cluster `i` owns the `i`-th contiguous range of thread and object
    /// ids) and every operation stays inside its community.  The
    /// thread–object graph is a disjoint union of dense blocks: a thread's
    /// clock row only ever becomes nonzero on its own community's components
    /// — a tiny, stable slice of a wide clock — which is the regime where
    /// chunked stamps and interaction-graph shard assignment pay off.
    /// (Modulo striping still scatters each community across all shards; the
    /// locality has to be discovered from the interaction graph.)
    Clustered {
        /// Number of communities (clamped to `[1, min(threads, objects)]`).
        clusters: usize,
    },
}

impl WorkloadKind {
    /// Short, stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Nonuniform { .. } => "nonuniform",
            WorkloadKind::ProducerConsumer { .. } => "producer-consumer",
            WorkloadKind::LockStriped { .. } => "lock-striped",
            WorkloadKind::Phased { .. } => "phased",
            WorkloadKind::Star { .. } => "star",
            WorkloadKind::Matching { .. } => "matching",
            WorkloadKind::PhaseShift { .. } => "phase-shift",
            WorkloadKind::Clustered { .. } => "clustered",
        }
    }
}

/// Builder for synthetic computations.
///
/// ```
/// use mvc_trace::{WorkloadBuilder, WorkloadKind};
/// let c = WorkloadBuilder::new(8, 8)
///     .operations(200)
///     .kind(WorkloadKind::Uniform)
///     .seed(1)
///     .build();
/// assert_eq!(c.len(), 200);
/// assert!(c.thread_count() <= 8);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    threads: usize,
    objects: usize,
    operations: usize,
    kind: WorkloadKind,
    write_fraction: f64,
    seed: u64,
}

impl WorkloadBuilder {
    /// Starts a builder for a workload over `threads` threads and `objects`
    /// objects.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(threads: usize, objects: usize) -> Self {
        assert!(threads > 0, "workload needs at least one thread");
        assert!(objects > 0, "workload needs at least one object");
        Self {
            threads,
            objects,
            operations: threads * objects,
            kind: WorkloadKind::Uniform,
            write_fraction: 0.5,
            seed: 0,
        }
    }

    /// Sets the total number of operations to generate.
    pub fn operations(mut self, operations: usize) -> Self {
        self.operations = operations;
        self
    }

    /// Sets the workload family.
    pub fn kind(mut self, kind: WorkloadKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the fraction of operations that are writes (the rest are reads).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1]`.
    pub fn write_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "write fraction must be within [0, 1], got {fraction}"
        );
        self.write_fraction = fraction;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the computation.
    pub fn build(&self) -> Computation {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut c = Computation::new();
        for step in 0..self.operations {
            let (t, o) = self.sample_pair(step, &mut rng);
            let kind = if rng.gen_bool(self.write_fraction) {
                OpKind::Write
            } else {
                OpKind::Read
            };
            c.record_op(ThreadId(t), ObjectId(o), kind);
        }
        c
    }

    fn sample_pair<R: Rng + ?Sized>(&self, step: usize, rng: &mut R) -> (usize, usize) {
        match self.kind {
            WorkloadKind::Uniform => (
                rng.gen_range(0..self.threads),
                rng.gen_range(0..self.objects),
            ),
            WorkloadKind::Nonuniform {
                hot_fraction,
                hot_boost,
            } => (
                sample_skewed(self.threads, hot_fraction, hot_boost, rng),
                sample_skewed(self.objects, hot_fraction, hot_boost, rng),
            ),
            WorkloadKind::ProducerConsumer { queues } => {
                let queues = queues.clamp(1, self.objects);
                let q = rng.gen_range(0..queues);
                let t = rng.gen_range(0..self.threads);
                (t, q)
            }
            WorkloadKind::LockStriped { cross_stripe_prob } => {
                let t = rng.gen_range(0..self.threads);
                let stripe_size = (self.objects / self.threads).max(1);
                let o = if rng.gen_bool(cross_stripe_prob.clamp(0.0, 1.0)) {
                    rng.gen_range(0..self.objects)
                } else {
                    let start = (t * stripe_size) % self.objects;
                    (start + rng.gen_range(0..stripe_size)) % self.objects
                };
                (t, o)
            }
            WorkloadKind::Phased { phases } => {
                let phases = phases.clamp(1, self.objects);
                let ops_per_phase = (self.operations / phases).max(1);
                let phase = (step / ops_per_phase).min(phases - 1);
                let span = (self.objects / phases).max(1);
                let start = phase * span;
                let o = start + rng.gen_range(0..span);
                (rng.gen_range(0..self.threads), o.min(self.objects - 1))
            }
            WorkloadKind::Star { hubs } => {
                let hubs = hubs.clamp(1, self.objects);
                // Round-robin over the threads so every thread reaches a hub
                // (the full star, the worst case for naive-threads), with the
                // hub chosen at random when there are several.
                (step % self.threads, rng.gen_range(0..hubs))
            }
            WorkloadKind::Matching { rotation_period } => {
                // Round-robin over the threads so the whole matching is
                // realised; thread t's partner is object (t + rotation) with
                // the rotation advancing one slot every `rotation_period`
                // operations (never, when the period is 0).
                let t = step % self.threads;
                let rotation = step.checked_div(rotation_period).unwrap_or(0);
                (t, (t + rotation) % self.objects)
            }
            WorkloadKind::PhaseShift { period, shift } => {
                let period = period.max(1);
                let shift = shift.max(1);
                // A window of a quarter of the object space (at least one
                // object) slides `shift` slots per phase and wraps around.
                let window = (self.objects / 4).max(1);
                let phase = step / period;
                let start = (phase * shift) % self.objects;
                let o = (start + rng.gen_range(0..window)) % self.objects;
                (rng.gen_range(0..self.threads), o)
            }
            WorkloadKind::Clustered { clusters } => {
                // Pick a community, then a thread and object inside its
                // contiguous id ranges (cluster i owns threads
                // [i*span, (i+1)*span) and likewise for objects; the last
                // cluster absorbs the remainder).
                let clusters = clusters.clamp(1, self.threads.min(self.objects));
                let cluster = rng.gen_range(0..clusters);
                let t = cluster_member(self.threads, clusters, cluster, rng);
                let o = cluster_member(self.objects, clusters, cluster, rng);
                (t, o)
            }
        }
    }
}

/// Samples a member of community `cluster` when `n` ids are split into
/// `clusters` contiguous ranges of `n / clusters` (the last range keeps the
/// remainder).  Requires `clusters <= n`.
fn cluster_member<R: Rng + ?Sized>(
    n: usize,
    clusters: usize,
    cluster: usize,
    rng: &mut R,
) -> usize {
    let span = n / clusters;
    let start = cluster * span;
    let end = if cluster + 1 == clusters {
        n
    } else {
        start + span
    };
    start + rng.gen_range(0..end - start)
}

/// Samples an index in `0..n` where the first `ceil(n * hot_fraction)`
/// indices are `hot_boost`× more likely than the rest.
fn sample_skewed<R: Rng + ?Sized>(
    n: usize,
    hot_fraction: f64,
    hot_boost: f64,
    rng: &mut R,
) -> usize {
    let hot = ((n as f64 * hot_fraction).ceil() as usize).clamp(1, n);
    let cold = n - hot;
    let hot_weight = hot as f64 * hot_boost;
    let total = hot_weight + cold as f64;
    if cold == 0 || rng.gen_bool((hot_weight / total).clamp(0.0, 1.0)) {
        rng.gen_range(0..hot)
    } else {
        hot + rng.gen_range(0..cold)
    }
}

/// Converts a bipartite graph plus a reveal order of its edges into a
/// computation with exactly one operation per edge.
///
/// This is how the evaluation harness turns the paper's random graphs into
/// event streams for the online mechanisms: each revealed edge becomes one
/// event of its thread on its object.
pub fn computation_from_edge_stream(edges: &[(usize, usize)]) -> Computation {
    edges
        .iter()
        .map(|&(t, o)| (ThreadId(t), ObjectId(o)))
        .collect()
}

/// Generates a random thread–object graph with the given parameters and the
/// computation induced by revealing its edges in random order.
///
/// Returns `(graph, computation)`; the computation's bipartite graph equals
/// `graph` up to isolated vertices.
pub fn random_graph_computation(
    threads: usize,
    objects: usize,
    density: f64,
    scenario: GraphScenario,
    seed: u64,
) -> (BipartiteGraph, Computation) {
    let (graph, stream) = RandomGraphBuilder::new(threads, objects)
        .density(density)
        .scenario(scenario)
        .seed(seed)
        .build_edge_stream();
    let computation = computation_from_edge_stream(&stream);
    (graph, computation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_workload_has_requested_size() {
        let c = WorkloadBuilder::new(4, 4).operations(100).seed(3).build();
        assert_eq!(c.len(), 100);
        assert!(c.thread_count() <= 4);
        assert!(c.object_count() <= 4);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let b = WorkloadBuilder::new(6, 9)
            .operations(300)
            .kind(WorkloadKind::Nonuniform {
                hot_fraction: 0.2,
                hot_boost: 5.0,
            })
            .seed(11);
        assert_eq!(b.build(), b.build());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = WorkloadBuilder::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "write fraction")]
    fn invalid_write_fraction_rejected() {
        let _ = WorkloadBuilder::new(2, 2).write_fraction(1.5);
    }

    #[test]
    fn producer_consumer_touches_only_queues() {
        let c = WorkloadBuilder::new(8, 16)
            .operations(500)
            .kind(WorkloadKind::ProducerConsumer { queues: 3 })
            .seed(5)
            .build();
        for e in c.events() {
            assert!(e.object.index() < 3);
        }
    }

    #[test]
    fn lock_striped_is_sparse() {
        let c = WorkloadBuilder::new(10, 100)
            .operations(2000)
            .kind(WorkloadKind::LockStriped {
                cross_stripe_prob: 0.0,
            })
            .seed(7)
            .build();
        let g = c.bipartite_graph();
        // With zero cross-stripe probability each thread touches only its own
        // stripe of 10 objects.
        for t in 0..10 {
            assert!(g.degree_left(t) <= 10);
        }
    }

    #[test]
    fn phased_workload_respects_phase_object_ranges() {
        let c = WorkloadBuilder::new(4, 20)
            .operations(400)
            .kind(WorkloadKind::Phased { phases: 4 })
            .seed(9)
            .build();
        // Phase i (100 ops) uses objects [5i, 5i+5).
        for (idx, e) in c.events().enumerate() {
            let phase = (idx / 100).min(3);
            let o = e.object.index();
            assert!(
                o >= phase * 5 && o < phase * 5 + 5,
                "event {idx} object {o} phase {phase}"
            );
        }
    }

    #[test]
    fn star_workload_touches_every_thread_and_only_hubs() {
        let c = WorkloadBuilder::new(30, 10)
            .operations(90)
            .kind(WorkloadKind::Star { hubs: 2 })
            .seed(3)
            .build();
        assert_eq!(c.thread_count(), 30, "round-robin reaches every thread");
        assert!(c.object_count() <= 2);
        for e in c.events() {
            assert!(e.object.index() < 2, "star events stay on the hubs");
        }
        // The induced bipartite graph is (a union of) stars: hub objects
        // cover every edge, so the minimum cover is at most the hub count.
        let g = c.bipartite_graph();
        assert!(g.edge_count() >= 30);
        assert_eq!(WorkloadKind::Star { hubs: 2 }.name(), "star");
    }

    #[test]
    fn star_hub_count_is_clamped_to_object_space() {
        let c = WorkloadBuilder::new(4, 3)
            .operations(40)
            .kind(WorkloadKind::Star { hubs: 100 })
            .seed(5)
            .build();
        for e in c.events() {
            assert!(e.object.index() < 3);
        }
        let zero = WorkloadBuilder::new(4, 3)
            .operations(12)
            .kind(WorkloadKind::Star { hubs: 0 })
            .seed(5)
            .build();
        for e in zero.events() {
            assert_eq!(e.object.index(), 0, "hubs=0 clamps to the single hub");
        }
    }

    #[test]
    fn matching_workload_without_rotation_is_a_perfect_matching() {
        let c = WorkloadBuilder::new(8, 8)
            .operations(160)
            .kind(WorkloadKind::Matching { rotation_period: 0 })
            .seed(2)
            .build();
        assert_eq!(c.thread_count(), 8, "round-robin reaches every thread");
        for e in c.events() {
            assert_eq!(e.object.index(), e.thread.index(), "fixed 1:1 pairing");
        }
        // Every edge is vertex-disjoint: the graph is a perfect matching, so
        // each side's degrees are all exactly one.
        let g = c.bipartite_graph();
        assert_eq!(g.edge_count(), 8);
        for t in 0..8 {
            assert_eq!(g.degree_left(t), 1);
        }
    }

    #[test]
    fn matching_workload_rotation_densifies_over_time() {
        let c = WorkloadBuilder::new(6, 6)
            .operations(180)
            .kind(WorkloadKind::Matching {
                rotation_period: 30,
            })
            .seed(2)
            .build();
        // 180 ops / period 30 = rotations 0..=5: each thread meets 6 distinct
        // partners, so the graph is a union of 6 rotated matchings.
        let g = c.bipartite_graph();
        assert_eq!(g.edge_count(), 36);
        for t in 0..6 {
            assert_eq!(g.degree_left(t), 6);
        }
        // Events inside the first period keep the identity pairing.
        for (i, e) in c.events().enumerate().take(30) {
            assert_eq!(e.object.index(), e.thread.index(), "event {i}");
        }
        assert_eq!(
            WorkloadKind::Matching {
                rotation_period: 30
            }
            .name(),
            "matching"
        );
    }

    #[test]
    fn phase_shift_window_slides_and_wraps() {
        let c = WorkloadBuilder::new(4, 16)
            .operations(400)
            .kind(WorkloadKind::PhaseShift {
                period: 50,
                shift: 3,
            })
            .seed(11)
            .build();
        // Window = 16/4 = 4 objects starting at (phase * 3) % 16, wrapping.
        for (i, e) in c.events().enumerate() {
            let start = (i / 50) * 3 % 16;
            let offset = (e.object.index() + 16 - start) % 16;
            assert!(offset < 4, "event {i}: object {} outside window", e.object);
        }
        // The sliding window eventually touches the whole object space —
        // the cross-partition churn the family exists to produce.
        assert_eq!(c.object_count(), 16);
        assert_eq!(
            WorkloadKind::PhaseShift {
                period: 50,
                shift: 3
            }
            .name(),
            "phase-shift"
        );
    }

    #[test]
    fn phase_shift_degenerate_parameters_are_clamped() {
        let c = WorkloadBuilder::new(2, 1)
            .operations(20)
            .kind(WorkloadKind::PhaseShift {
                period: 0,
                shift: 0,
            })
            .seed(3)
            .build();
        assert_eq!(c.len(), 20);
        for e in c.events() {
            assert_eq!(e.object.index(), 0);
        }
    }

    #[test]
    fn clustered_events_stay_inside_their_community() {
        let c = WorkloadBuilder::new(16, 64)
            .operations(800)
            .kind(WorkloadKind::Clustered { clusters: 4 })
            .seed(19)
            .build();
        // Cluster i owns threads [4i, 4i+4) and objects [16i, 16i+16): each
        // event's endpoints must name the same community.
        for (i, e) in c.events().enumerate() {
            assert_eq!(
                e.thread.index() / 4,
                e.object.index() / 16,
                "event {i} crosses communities"
            );
        }
        assert_eq!(WorkloadKind::Clustered { clusters: 4 }.name(), "clustered");
    }

    #[test]
    fn clustered_last_community_absorbs_the_remainder() {
        // 10 threads / 7 objects over 3 clusters: spans 3 and 2, the last
        // cluster stretching to ids 9 and 6.
        let c = WorkloadBuilder::new(10, 7)
            .operations(600)
            .kind(WorkloadKind::Clustered { clusters: 3 })
            .seed(23)
            .build();
        for e in c.events() {
            let (t, o) = (e.thread.index(), e.object.index());
            let tc = (t / 3).min(2);
            let oc = (o / 2).min(2);
            assert_eq!(tc, oc, "thread {t} and object {o} share a community");
        }
        // Degenerate parameters clamp instead of panicking.
        let tiny = WorkloadBuilder::new(2, 2)
            .operations(20)
            .kind(WorkloadKind::Clustered { clusters: 100 })
            .seed(1)
            .build();
        assert_eq!(tiny.len(), 20);
        for e in tiny.events() {
            assert_eq!(e.thread.index(), e.object.index());
        }
    }

    #[test]
    fn nonuniform_hot_threads_receive_more_operations() {
        let c = WorkloadBuilder::new(20, 20)
            .operations(4000)
            .kind(WorkloadKind::Nonuniform {
                hot_fraction: 0.1,
                hot_boost: 20.0,
            })
            .seed(13)
            .build();
        let hot_ops = c.thread_chain(ThreadId(0)).len() + c.thread_chain(ThreadId(1)).len();
        let cold_ops: usize = (2..20).map(|t| c.thread_chain(ThreadId(t)).len()).sum();
        let hot_avg = hot_ops as f64 / 2.0;
        let cold_avg = cold_ops as f64 / 18.0;
        assert!(hot_avg > 3.0 * cold_avg, "hot {hot_avg} vs cold {cold_avg}");
    }

    #[test]
    fn edge_stream_conversion_round_trips_edges() {
        let (graph, computation) =
            random_graph_computation(20, 20, 0.1, GraphScenario::Uniform, 17);
        let induced = computation.bipartite_graph();
        assert_eq!(induced.edge_count(), graph.edge_count());
        for (l, r) in graph.edges() {
            assert!(induced.has_edge(l, r));
        }
    }

    #[test]
    fn workload_kind_names() {
        assert_eq!(WorkloadKind::Uniform.name(), "uniform");
        assert_eq!(WorkloadKind::Phased { phases: 2 }.name(), "phased");
        assert_eq!(WorkloadKind::default(), WorkloadKind::Uniform);
    }

    proptest! {
        #[test]
        fn prop_generated_events_stay_in_bounds(
            threads in 1usize..12,
            objects in 1usize..12,
            ops in 0usize..400,
            seed in 0u64..100,
        ) {
            let c = WorkloadBuilder::new(threads, objects)
                .operations(ops)
                .seed(seed)
                .build();
            prop_assert_eq!(c.len(), ops);
            for e in c.events() {
                prop_assert!(e.thread.index() < threads);
                prop_assert!(e.object.index() < objects);
            }
        }

        #[test]
        fn prop_skewed_sampler_in_range(
            n in 1usize..50,
            hot_fraction in 0.01f64..1.0,
            hot_boost in 1.0f64..50.0,
            seed in 0u64..50,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                let x = sample_skewed(n, hot_fraction, hot_boost, &mut rng);
                prop_assert!(x < n);
            }
        }
    }
}
