//! Poset analysis of a computation: height, width, and minimum chain covers.
//!
//! The happened-before relation turns the event set into a partially ordered
//! set.  Two classic quantities bound what any chain-based clock (including
//! the paper's mixed clock and the Agarwal–Garg chain clock of Section VI)
//! can achieve:
//!
//! * the **height** (longest chain) — the largest Lamport timestamp any event
//!   receives;
//! * the **width** (largest antichain) — by Dilworth's theorem, the minimum
//!   number of chains needed to cover the poset, and therefore a lower bound
//!   on the number of components of *any* vector clock built from chains of
//!   the computation.
//!
//! The width and a minimum chain cover are computed exactly by the classical
//! Fulkerson reduction: build a bipartite graph with a left copy and a right
//! copy of every event, add an edge `(a, b)` whenever `a → b`, and find a
//! maximum matching; `width = n − |matching|`, and following matched edges
//! yields a minimum chain decomposition.  Because the reduction works on the
//! transitive closure it is meant for analysis of test- and evaluation-sized
//! computations, not for production tracing.

use mvc_graph::matching::hopcroft_karp;
use mvc_graph::BipartiteGraph;

use crate::causality::CausalityOracle;
use crate::computation::Computation;
use crate::ids::EventId;

/// Summary of a computation's poset structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PosetAnalysis {
    /// Number of events.
    pub events: usize,
    /// Length of the longest chain (0 for an empty computation).
    pub height: usize,
    /// Size of the largest antichain; equivalently the minimum number of
    /// chains covering the poset (Dilworth's theorem).
    pub width: usize,
    /// A minimum chain decomposition: each inner vector is one chain, listed
    /// in happened-before order.
    pub chains: Vec<Vec<EventId>>,
}

impl PosetAnalysis {
    /// Analyses a computation.
    pub fn analyze(computation: &Computation) -> Self {
        let oracle = computation.causality_oracle();
        Self::analyze_with_oracle(computation, &oracle)
    }

    /// Analyses a computation, reusing an already-built oracle.
    pub fn analyze_with_oracle(computation: &Computation, oracle: &CausalityOracle) -> Self {
        let n = computation.len();
        if n == 0 {
            return PosetAnalysis {
                events: 0,
                height: 0,
                width: 0,
                chains: Vec::new(),
            };
        }

        // Height: longest path in the DAG of immediate predecessors. Because
        // chain predecessors always have smaller ids, a forward scan works.
        let mut depth = vec![1usize; n];
        for e in computation.events() {
            let id = e.id.index();
            for p in [
                computation.thread_predecessor(e.id),
                computation.object_predecessor(e.id),
            ]
            .into_iter()
            .flatten()
            {
                depth[id] = depth[id].max(depth[p.index()] + 1);
            }
        }
        let height = depth.iter().copied().max().unwrap_or(0);

        // Width and minimum chain cover via Fulkerson's reduction over the
        // transitive closure.
        let mut split = BipartiteGraph::new(n, n);
        for b in 0..n {
            for a in 0..n {
                if a != b && oracle.happened_before(EventId(a), EventId(b)) {
                    split.add_edge(a, b);
                }
            }
        }
        let matching = hopcroft_karp(&split);
        let width = n - matching.size();

        // Build chains by following matched successor edges from chain heads
        // (events that are nobody's matched successor).
        let mut is_successor = vec![false; n];
        for a in 0..n {
            if let Some(b) = matching.partner_of_left(a) {
                is_successor[b] = true;
            }
        }
        let mut chains = Vec::new();
        for (start, &reached) in is_successor.iter().enumerate() {
            if reached {
                continue;
            }
            let mut chain = vec![EventId(start)];
            let mut current = start;
            while let Some(next) = matching.partner_of_left(current) {
                chain.push(EventId(next));
                current = next;
            }
            chains.push(chain);
        }
        debug_assert_eq!(chains.len(), width);

        PosetAnalysis {
            events: n,
            height,
            width,
            chains,
        }
    }

    /// Returns `true` if every chain of the decomposition is totally ordered
    /// under the oracle and every event appears in exactly one chain.
    pub fn is_valid_decomposition(&self, oracle: &CausalityOracle) -> bool {
        let mut seen = vec![false; self.events];
        for chain in &self.chains {
            for window in chain.windows(2) {
                if !oracle.happened_before(window[0], window[1]) {
                    return false;
                }
            }
            for &event in chain {
                if seen[event.index()] {
                    return false;
                }
                seen[event.index()] = true;
            }
        }
        seen.iter().all(|&s| s)
    }
}

/// Finds one maximum antichain: a largest set of pairwise concurrent events.
///
/// Uses the standard König-style construction on the same split graph as the
/// width computation, so `antichain.len() == PosetAnalysis::width`.
pub fn maximum_antichain(computation: &Computation) -> Vec<EventId> {
    let n = computation.len();
    if n == 0 {
        return Vec::new();
    }
    let oracle = computation.causality_oracle();
    let mut split = BipartiteGraph::new(n, n);
    for b in 0..n {
        for a in 0..n {
            if a != b && oracle.happened_before(EventId(a), EventId(b)) {
                split.add_edge(a, b);
            }
        }
    }
    let matching = hopcroft_karp(&split);
    let cover = mvc_graph::cover::minimum_vertex_cover(&split, &matching);
    // An event is in the antichain iff neither its left nor its right copy is
    // in the minimum vertex cover of the comparability split graph.
    let antichain: Vec<EventId> = (0..n)
        .filter(|&e| !cover.contains_left(e) && !cover.contains_right(e))
        .map(EventId)
        .collect();
    antichain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{paper_figure1, tiny};
    use crate::generator::WorkloadBuilder;
    use crate::ids::{ObjectId, ThreadId};
    use proptest::prelude::*;

    fn comp(ops: &[(usize, usize)]) -> Computation {
        ops.iter()
            .map(|&(t, o)| (ThreadId(t), ObjectId(o)))
            .collect()
    }

    #[test]
    fn empty_computation_analysis() {
        let analysis = PosetAnalysis::analyze(&Computation::new());
        assert_eq!(analysis.events, 0);
        assert_eq!(analysis.height, 0);
        assert_eq!(analysis.width, 0);
        assert!(analysis.chains.is_empty());
        assert!(maximum_antichain(&Computation::new()).is_empty());
    }

    #[test]
    fn totally_ordered_computation_has_width_one() {
        let c = comp(&[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let analysis = PosetAnalysis::analyze(&c);
        assert_eq!(analysis.width, 1);
        assert_eq!(analysis.height, 4);
        assert_eq!(analysis.chains.len(), 1);
        assert_eq!(analysis.chains[0].len(), 4);
        assert_eq!(maximum_antichain(&c).len(), 1);
    }

    #[test]
    fn fully_concurrent_computation_has_width_n() {
        let c = comp(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let analysis = PosetAnalysis::analyze(&c);
        assert_eq!(analysis.width, 4);
        assert_eq!(analysis.height, 1);
        assert_eq!(analysis.chains.len(), 4);
        assert_eq!(maximum_antichain(&c).len(), 4);
    }

    #[test]
    fn paper_figure1_poset_structure() {
        let c = paper_figure1();
        let oracle = c.causality_oracle();
        let analysis = PosetAnalysis::analyze(&c);
        assert!(analysis.is_valid_decomposition(&oracle));
        // The mixed clock has 3 components, so the poset width can be at most
        // 3 chains... the other way round: any chain cover needs >= width
        // chains, and the paper's clock works with 3 components, so width <= 3.
        assert!(analysis.width <= 3);
        assert!(
            analysis.height >= 3,
            "T2's four operations force a long chain"
        );
        assert_eq!(
            analysis.chains.iter().map(Vec::len).sum::<usize>(),
            c.len(),
            "every event appears in exactly one chain"
        );
    }

    #[test]
    fn tiny_example_width_two() {
        let analysis = PosetAnalysis::analyze(&tiny());
        assert_eq!(analysis.width, 2);
    }

    #[test]
    fn antichain_events_are_pairwise_concurrent() {
        let c = WorkloadBuilder::new(5, 5).operations(40).seed(3).build();
        let oracle = c.causality_oracle();
        let antichain = maximum_antichain(&c);
        for (i, &a) in antichain.iter().enumerate() {
            for &b in &antichain[i + 1..] {
                assert!(oracle.concurrent(a, b), "{a} and {b} are not concurrent");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Dilworth's theorem, checked both ways: the chain cover has exactly
        /// `width` chains, is a valid partition into chains, and the maximum
        /// antichain has the same size.
        #[test]
        fn prop_dilworth(
            threads in 1usize..6,
            objects in 1usize..6,
            ops in 0usize..40,
            seed in 0u64..100,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let oracle = c.causality_oracle();
            let analysis = PosetAnalysis::analyze_with_oracle(&c, &oracle);
            prop_assert_eq!(analysis.chains.len(), analysis.width);
            prop_assert!(analysis.is_valid_decomposition(&oracle));
            prop_assert_eq!(maximum_antichain(&c).len(), analysis.width);
        }

        /// The poset width never exceeds the number of threads (thread chains
        /// are a chain cover), and the height never exceeds the event count.
        #[test]
        fn prop_width_and_height_bounds(
            threads in 1usize..6,
            objects in 1usize..6,
            ops in 0usize..40,
            seed in 0u64..100,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let analysis = PosetAnalysis::analyze(&c);
            prop_assert!(analysis.width <= threads.max(1));
            prop_assert!(analysis.height <= c.len());
        }
    }
}
