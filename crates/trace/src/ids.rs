//! Strongly typed identifiers for threads, objects and events.
//!
//! Newtypes keep the three index spaces from being mixed up (a thread index
//! passed where an object index is expected is a compile error, not a silent
//! off-by-one in an experiment).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a thread (a left vertex of the thread–object graph).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ThreadId(pub usize);

/// Identifier of a shared object (a right vertex of the thread–object graph).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ObjectId(pub usize);

/// Identifier of an event: its position in the computation's global append
/// order (which is *one* linear extension of happened-before, not the
/// relation itself).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct EventId(pub usize);

impl ThreadId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl ObjectId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl EventId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for ThreadId {
    fn from(i: usize) -> Self {
        ThreadId(i)
    }
}

impl From<usize> for ObjectId {
    fn from(i: usize) -> Self {
        ObjectId(i)
    }
}

impl From<usize> for EventId {
    fn from(i: usize) -> Self {
        EventId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ThreadId(2).to_string(), "T2");
        assert_eq!(ObjectId(0).to_string(), "O0");
        assert_eq!(EventId(17).to_string(), "e17");
    }

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(ThreadId::from(3).index(), 3);
        assert_eq!(ObjectId::from(4).index(), 4);
        assert_eq!(EventId::from(5).index(), 5);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(ThreadId(1) < ThreadId(2));
        assert!(EventId(0) < EventId(10));
    }
}
