//! Computation model for thread–object systems.
//!
//! The paper's system model (Section II): `n` sequential threads perform
//! operations on `m` shared objects; all operations on any single object are
//! serialized (e.g. by a lock).  A *computation* is the set of events together
//! with Lamport's happened-before relation, which is the smallest transitive
//! relation ordering consecutive events of the same thread and consecutive
//! events on the same object.
//!
//! This crate provides:
//!
//! * [`ids`] — strongly typed [`ThreadId`], [`ObjectId`], [`EventId`].
//! * [`event`] — the [`Event`] record (thread, object, operation kind,
//!   per-thread and per-object sequence numbers).
//! * [`computation`] — [`Computation`]: an append-only event log organised
//!   into per-thread and per-object chains, with conversion to the
//!   thread–object bipartite graph of [`mvc_graph`].
//! * [`causality`] — the [`CausalityOracle`]: an exact happened-before oracle
//!   computed by BFS over the event DAG, used as ground truth when validating
//!   clock implementations.
//! * [`generator`] — synthetic workload generators (uniform, nonuniform,
//!   producer–consumer, lock-striped, phased) and conversion of random
//!   bipartite graphs into computations.
//! * [`examples`] — the paper's Figure 1 computation, used in documentation,
//!   tests and the `paper_example` binary.
//! * [`codec`] — a compact binary trace encoding for storing and replaying
//!   computations.
//!
//! # Example
//!
//! ```
//! use mvc_trace::{Computation, ThreadId, ObjectId};
//!
//! let mut c = Computation::new();
//! let e1 = c.record(ThreadId(0), ObjectId(0));
//! let e2 = c.record(ThreadId(0), ObjectId(1));
//! let e3 = c.record(ThreadId(1), ObjectId(1));
//! let oracle = c.causality_oracle();
//! assert!(oracle.happened_before(e1, e2)); // same thread
//! assert!(oracle.happened_before(e2, e3)); // same object
//! assert!(oracle.happened_before(e1, e3)); // transitivity
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causality;
pub mod codec;
pub mod computation;
pub mod event;
pub mod examples;
pub mod generator;
pub mod ids;
pub mod poset;

pub use causality::CausalityOracle;
pub use computation::Computation;
pub use event::{Event, OpKind};
pub use generator::{WorkloadBuilder, WorkloadKind};
pub use ids::{EventId, ObjectId, ThreadId};
pub use poset::PosetAnalysis;
