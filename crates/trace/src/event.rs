//! The [`Event`] record.
//!
//! An event is "some specific thread doing some operation on a specific
//! object" (Section III-A).  The paper only cares about *which* thread and
//! *which* object; we additionally record an operation kind (read / write /
//! acquire / release / generic) because the runtime crate and the examples use
//! it for race reporting, and two sequence numbers that locate the event in
//! its thread chain and its object chain.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{EventId, ObjectId, ThreadId};

/// The kind of operation an event performed on its object.
///
/// The causality algorithms never branch on this — the happened-before
/// relation only depends on the thread/object chains — but downstream
/// consumers (race observer, examples) use it to classify conflicts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A read of the object's state.
    Read,
    /// A write to the object's state.
    Write,
    /// Acquisition of the object (e.g. a lock or a message receive).
    Acquire,
    /// Release of the object (e.g. a lock or a message send).
    Release,
    /// An unclassified operation (the paper's generic "operation").
    #[default]
    Op,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Acquire => "acquire",
            OpKind::Release => "release",
            OpKind::Op => "op",
        };
        f.write_str(s)
    }
}

impl OpKind {
    /// Returns `true` if two operations of these kinds on the same object
    /// conflict (at least one of them is a mutation).
    pub fn conflicts_with(self, other: OpKind) -> bool {
        let mutates = |k: OpKind| !matches!(k, OpKind::Read);
        mutates(self) || mutates(other)
    }
}

/// A single event of a computation: thread `thread` performed an operation of
/// kind `kind` on object `object`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// Global identifier (position in the computation's append order).
    pub id: EventId,
    /// The thread that performed the operation (`e.thread` in the paper).
    pub thread: ThreadId,
    /// The object the operation was performed on (`e.object` in the paper).
    pub object: ObjectId,
    /// Operation kind (not used by the clock algorithms).
    pub kind: OpKind,
    /// Zero-based position of this event within its thread's chain.
    pub thread_seq: usize,
    /// Zero-based position of this event within its object's chain.
    pub object_seq: usize,
}

impl Event {
    /// Returns `(thread index, object index)` — the edge this event
    /// contributes to the thread–object bipartite graph.
    pub fn edge(&self) -> (usize, usize) {
        (self.thread.index(), self.object.index())
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{},{}]({})",
            self.id, self.thread, self.object, self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            id: EventId(3),
            thread: ThreadId(1),
            object: ObjectId(2),
            kind: OpKind::Write,
            thread_seq: 0,
            object_seq: 1,
        }
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(sample().to_string(), "e3[T1,O2](write)");
    }

    #[test]
    fn edge_projection() {
        assert_eq!(sample().edge(), (1, 2));
    }

    #[test]
    fn conflict_matrix() {
        assert!(!OpKind::Read.conflicts_with(OpKind::Read));
        assert!(OpKind::Read.conflicts_with(OpKind::Write));
        assert!(OpKind::Write.conflicts_with(OpKind::Read));
        assert!(OpKind::Write.conflicts_with(OpKind::Write));
        assert!(OpKind::Op.conflicts_with(OpKind::Read));
        assert!(OpKind::Acquire.conflicts_with(OpKind::Release));
    }

    #[test]
    fn default_kind_is_generic_op() {
        assert_eq!(OpKind::default(), OpKind::Op);
        assert_eq!(OpKind::default().to_string(), "op");
    }
}
