//! An exact happened-before oracle.
//!
//! Happened-before (Section II) is the smallest transitive relation such that
//! `e → f` whenever `e` immediately precedes `f` in the same thread chain or
//! in the same object chain.  The oracle materialises the full transitive
//! closure as one bitset of predecessors per event, which makes `e → f`
//! queries O(1).
//!
//! The oracle is *independent of every clock implementation* in this
//! repository: it is computed directly from the chain structure by dynamic
//! programming over the event DAG.  The clock crates use it as ground truth in
//! their correctness tests (`s → t ⇔ s.v < t.v`).

use crate::computation::Computation;
use crate::ids::EventId;

/// Exact happened-before oracle for one [`Computation`].
///
/// Memory use is `O(n² / 64)` for `n` events, so this is meant for test-sized
/// computations (up to a few tens of thousands of events), not for production
/// causality tracking.
#[derive(Debug, Clone)]
pub struct CausalityOracle {
    n: usize,
    /// `pred[e]` is a bitset over event ids: bit `f` is set iff `f → e`.
    pred: Vec<Vec<u64>>,
}

impl CausalityOracle {
    /// The largest computation the oracle is meant for.  Production
    /// causality queries go through the streaming reachability index (an
    /// `EventSink` over live stamps); the bitset closure exists as test
    /// ground truth, and at `O(n²/64)` memory a million-event build would
    /// silently eat ~2 TB.  Debug builds assert the bound so a misuse fails
    /// in tests, not in production sizing.
    pub const MAX_ORACLE_EVENTS: usize = 100_000;

    /// Builds the oracle for a computation.
    ///
    /// Events are processed in append order. Because each chain is appended in
    /// its own order, every event's chain predecessors have smaller ids, so a
    /// single forward pass suffices:
    /// `pred(e) = pred(tp) ∪ {tp} ∪ pred(op) ∪ {op}` where `tp`/`op` are the
    /// thread/object immediate predecessors.  Each bitset is built in place
    /// inside the pre-sized table (the split keeps the borrow checker happy
    /// about reading predecessor rows while writing the current one), so the
    /// pass allocates the table once, not once more per event.
    pub fn build(computation: &Computation) -> Self {
        let n = computation.len();
        debug_assert!(
            n <= Self::MAX_ORACLE_EVENTS,
            "CausalityOracle is test ground truth, not a production index \
             ({n} events > {}); stream queries through ReachabilityIndexSink",
            Self::MAX_ORACLE_EVENTS
        );
        let words = n.div_ceil(64);
        let mut pred: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
        for e in computation.events() {
            let id = e.id.index();
            let (done, rest) = pred.split_at_mut(id);
            let bits = &mut rest[0];
            for p in [
                computation.thread_predecessor(e.id),
                computation.object_predecessor(e.id),
            ]
            .into_iter()
            .flatten()
            {
                let pi = p.index();
                debug_assert!(pi < id, "chain predecessor must precede in append order");
                for (w, &pw) in bits.iter_mut().zip(done[pi].iter()) {
                    *w |= pw;
                }
                bits[pi / 64] |= 1u64 << (pi % 64);
            }
        }
        Self { n, pred }
    }

    /// Number of events covered by the oracle.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the oracle covers no events.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns `true` iff `a → b` (strictly; an event does not happen before
    /// itself).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn happened_before(&self, a: EventId, b: EventId) -> bool {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "event id out of range"
        );
        let ai = a.index();
        (self.pred[b.index()][ai / 64] >> (ai % 64)) & 1 == 1
    }

    /// Returns `true` iff the two events are concurrent (`a ∦ b` in the
    /// paper's notation): neither happened before the other and they are
    /// distinct.
    pub fn concurrent(&self, a: EventId, b: EventId) -> bool {
        a != b && !self.happened_before(a, b) && !self.happened_before(b, a)
    }

    /// Returns `true` iff the events are comparable (`a → b`, `b → a`, or
    /// `a == b`).
    pub fn comparable(&self, a: EventId, b: EventId) -> bool {
        !self.concurrent(a, b)
    }

    /// Number of events that happened before `e`.
    pub fn predecessor_count(&self, e: EventId) -> usize {
        self.pred[e.index()]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// All `(a, b)` pairs with `a → b`, in lexicographic order. Intended for
    /// small computations in tests.
    ///
    /// Chain predecessors always carry smaller ids (append order is a linear
    /// extension), so `a < b` for every pair and iterating `a` outer / `b`
    /// inner emits lexicographic order directly — no sort needed.
    pub fn all_ordered_pairs(&self) -> Vec<(EventId, EventId)> {
        let mut out = Vec::new();
        for a in 0..self.n {
            for b in a + 1..self.n {
                if (self.pred[b][a / 64] >> (a % 64)) & 1 == 1 {
                    out.push((EventId(a), EventId(b)));
                }
            }
        }
        out
    }

    /// All `(a, b)` pairs with `a ∥ b` (concurrent), `a < b`, in
    /// lexicographic order — the complement of
    /// [`all_ordered_pairs`](Self::all_ordered_pairs) over distinct pairs.
    /// Intended for small computations in tests (conformance oracle 8
    /// cross-checks every one of these against the streaming index).
    pub fn all_concurrent_pairs(&self) -> Vec<(EventId, EventId)> {
        let mut out = Vec::new();
        for a in 0..self.n {
            for b in a + 1..self.n {
                if (self.pred[b][a / 64] >> (a % 64)) & 1 == 0 {
                    out.push((EventId(a), EventId(b)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, ThreadId};

    fn comp(ops: &[(usize, usize)]) -> Computation {
        ops.iter()
            .map(|&(t, o)| (ThreadId(t), ObjectId(o)))
            .collect()
    }

    #[test]
    fn empty_oracle() {
        let c = Computation::new();
        let o = c.causality_oracle();
        assert!(o.is_empty());
        assert_eq!(o.len(), 0);
        assert!(o.all_ordered_pairs().is_empty());
    }

    #[test]
    fn same_thread_ordering() {
        let c = comp(&[(0, 0), (0, 1), (0, 2)]);
        let o = c.causality_oracle();
        assert!(o.happened_before(EventId(0), EventId(1)));
        assert!(o.happened_before(EventId(0), EventId(2)));
        assert!(o.happened_before(EventId(1), EventId(2)));
        assert!(!o.happened_before(EventId(2), EventId(0)));
        assert!(!o.happened_before(EventId(0), EventId(0)), "irreflexive");
    }

    #[test]
    fn same_object_ordering() {
        let c = comp(&[(0, 0), (1, 0), (2, 0)]);
        let o = c.causality_oracle();
        assert!(o.happened_before(EventId(0), EventId(1)));
        assert!(o.happened_before(EventId(0), EventId(2)));
        assert!(o.happened_before(EventId(1), EventId(2)));
    }

    #[test]
    fn transitivity_across_chains() {
        // T0 touches O0 then O1; T1 touches O1 then O2; T2 touches O2.
        let c = comp(&[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)]);
        let o = c.causality_oracle();
        // e0 -> e1 (thread), e1 -> e2 (object 1), e2 -> e3 (thread), e3 -> e4 (object 2)
        assert!(o.happened_before(EventId(0), EventId(4)));
        assert!(!o.happened_before(EventId(4), EventId(0)));
    }

    #[test]
    fn concurrency_detected() {
        // Two threads on disjoint objects: all cross-thread pairs concurrent.
        let c = comp(&[(0, 0), (1, 1), (0, 0), (1, 1)]);
        let o = c.causality_oracle();
        assert!(o.concurrent(EventId(0), EventId(1)));
        assert!(o.concurrent(EventId(2), EventId(3)));
        assert!(o.concurrent(EventId(0), EventId(3)));
        assert!(!o.concurrent(EventId(0), EventId(2)), "same thread");
        assert!(o.comparable(EventId(0), EventId(2)));
        assert!(
            o.comparable(EventId(1), EventId(1)),
            "an event is comparable to itself"
        );
    }

    #[test]
    fn predecessor_counts() {
        let c = comp(&[(0, 0), (0, 1), (1, 1)]);
        let o = c.causality_oracle();
        assert_eq!(o.predecessor_count(EventId(0)), 0);
        assert_eq!(o.predecessor_count(EventId(1)), 1);
        assert_eq!(o.predecessor_count(EventId(2)), 2);
    }

    #[test]
    fn all_ordered_pairs_enumerates_closure() {
        let c = comp(&[(0, 0), (0, 1), (1, 1)]);
        let o = c.causality_oracle();
        assert_eq!(
            o.all_ordered_pairs(),
            vec![
                (EventId(0), EventId(1)),
                (EventId(0), EventId(2)),
                (EventId(1), EventId(2)),
            ]
        );
    }

    #[test]
    fn all_ordered_pairs_is_lexicographic_without_sorting() {
        // A 3-thread, 2-object interleaving with plenty of cross-chain
        // closure edges; the emitted list must already be sorted.
        let c = comp(&[(0, 0), (1, 1), (2, 0), (0, 1), (1, 0), (2, 1)]);
        let o = c.causality_oracle();
        let pairs = o.all_ordered_pairs();
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        assert_eq!(pairs, sorted);
        for &(a, b) in &pairs {
            assert!(a < b, "append order is a linear extension");
            assert!(o.happened_before(a, b));
        }
    }

    #[test]
    fn concurrent_pairs_complement_ordered_pairs() {
        let c = comp(&[(0, 0), (1, 1), (2, 0), (0, 1), (1, 0), (2, 1)]);
        let o = c.causality_oracle();
        let ordered = o.all_ordered_pairs();
        let concurrent = o.all_concurrent_pairs();
        assert_eq!(ordered.len() + concurrent.len(), 6 * 5 / 2);
        for &(a, b) in &concurrent {
            assert!(a < b);
            assert!(o.concurrent(a, b));
        }
        let mut sorted = concurrent.clone();
        sorted.sort_unstable();
        assert_eq!(concurrent, sorted, "lexicographic without sorting");
        assert!(ordered.iter().all(|p| !concurrent.contains(p)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_query_panics() {
        let c = comp(&[(0, 0)]);
        let o = c.causality_oracle();
        o.happened_before(EventId(0), EventId(5));
    }

    #[test]
    fn oracle_on_more_than_64_events() {
        // Exercise the multi-word bitset path: one thread, one object, 200 events.
        let c: Computation = (0..200).map(|_| (ThreadId(0), ObjectId(0))).collect();
        let o = c.causality_oracle();
        assert!(o.happened_before(EventId(0), EventId(199)));
        assert!(o.happened_before(EventId(63), EventId(64)));
        assert!(o.happened_before(EventId(64), EventId(128)));
        assert!(!o.happened_before(EventId(199), EventId(0)));
        assert_eq!(o.predecessor_count(EventId(199)), 199);
    }
}
