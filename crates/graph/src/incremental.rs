//! Incremental maintenance of the offline optimum under edge insertion.
//!
//! The competitive experiments (paper Figures 6/7 and the ablation
//! trajectories) need the offline optimum — the minimum vertex cover of the
//! revealed thread–object graph — *after every revealed edge*.  Recomputing
//! it from scratch costs a full Hopcroft–Karp run per edge (`O(E · E√V)`
//! over a stream).  This module maintains it incrementally, using the
//! classic dynamic-matching observation:
//!
//! > Inserting one edge changes the maximum matching by **at most one**
//! > augmenting path, and if the old matching was maximum, any augmenting
//! > path in the new graph must traverse the new edge.
//!
//! So [`IncrementalMatching::insert_edge`] runs a *single* augmenting-path
//! attempt per insertion — rooted at the new edge's free endpoint when it has
//! one — for amortised `O(E)` per edge (`O(E²)` per stream) instead of
//! `O(E · E√V)`, and by Kőnig–Egerváry the minimum-vertex-cover *size* is
//! then available in `O(1)` as the matching size.  [`IncrementalOptimum`]
//! bundles the growing graph with the maintained matching and lazily rebuilds
//! the explicit Kőnig cover (Algorithm 1's `C* = (T − Z) ∪ (O ∩ Z)`) only
//! when a caller asks for the actual cover members.
//!
//! ```
//! use mvc_graph::incremental::IncrementalOptimum;
//! use mvc_graph::matching::hopcroft_karp;
//!
//! let mut opt = IncrementalOptimum::new();
//! for (t, o) in [(0, 0), (1, 0), (2, 0), (1, 1)] {
//!     opt.insert_edge(t, o);
//!     // The maintained optimum always equals a from-scratch recompute.
//!     assert_eq!(opt.cover_size(), hopcroft_karp(opt.graph()).size());
//! }
//! assert_eq!(opt.cover_size(), 2);
//! let revealed = opt.graph().clone();
//! assert!(opt.cover().covers_all_edges(&revealed));
//! ```

use crate::bipartite::BipartiteGraph;
use crate::cover::{minimum_vertex_cover, VertexCover};
use crate::matching::{AugmentScratch, Matching, NIL};

/// A maximum matching of a growing bipartite graph, maintained under single
/// edge insertions.
///
/// The caller owns the graph and must insert each edge into it *before*
/// calling [`insert_edge`](Self::insert_edge) (or use [`IncrementalOptimum`],
/// which owns the graph and keeps the two in lock-step).  All search buffers
/// are reused across insertions, so a steady-state insertion allocates
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct IncrementalMatching {
    pair_left: Vec<usize>,
    pair_right: Vec<usize>,
    size: usize,
    scratch: AugmentScratch,
}

impl IncrementalMatching {
    /// Creates an empty matching (sides grow on demand).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of matched edges — by Kőnig–Egerváry also the minimum
    /// vertex cover size of any graph this matching is maximum for.  `O(1)`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The right partner matched with left vertex `l`, if any.
    pub fn partner_of_left(&self, l: usize) -> Option<usize> {
        match self.pair_left.get(l) {
            Some(&r) if r != NIL => Some(r),
            _ => None,
        }
    }

    /// The left partner matched with right vertex `r`, if any.
    pub fn partner_of_right(&self, r: usize) -> Option<usize> {
        match self.pair_right.get(r) {
            Some(&l) if l != NIL => Some(l),
            _ => None,
        }
    }

    /// Copies the maintained pairs into a plain [`Matching`] (`O(V)`), e.g.
    /// to feed [`minimum_vertex_cover`].
    pub fn to_matching(&self, graph: &BipartiteGraph) -> Matching {
        let mut matching = Matching::empty(graph.n_left(), graph.n_right());
        for (l, &r) in self.pair_left.iter().enumerate() {
            if r != NIL {
                matching.insert(l, r);
            }
        }
        matching
    }

    /// Re-establishes maximality after the edge `(l, r)` was inserted into
    /// `graph`, running at most one augmenting-path search.  Returns `true`
    /// if the matching grew.
    ///
    /// Requires that the matching was maximum for `graph` minus the new edge
    /// and that `graph` already contains `(l, r)`; both hold automatically
    /// when every insertion is reported here exactly once.
    pub fn insert_edge(&mut self, graph: &BipartiteGraph, l: usize, r: usize) -> bool {
        debug_assert!(graph.has_edge(l, r), "insert the edge into the graph first");
        self.grow(graph.n_left(), graph.n_right());
        let l_free = self.pair_left[l] == NIL;
        let r_free = self.pair_right[r] == NIL;
        if l_free && r_free {
            // The new edge is itself an augmenting path.
            self.pair_left[l] = r;
            self.pair_right[r] = l;
            self.size += 1;
            return true;
        }
        // A longer augmenting path needs a free active vertex on both sides.
        if graph.active_left_count() == self.size || graph.active_right_count() == self.size {
            return false;
        }
        let grew = if l_free {
            // Any augmenting path must use (l, r); a free vertex cannot be
            // interior to an alternating path, so the path starts at l.
            self.scratch.begin(graph.n_right());
            self.scratch
                .augment_from_left(graph, l, &mut self.pair_left, &mut self.pair_right)
        } else if r_free {
            // Symmetric: the path must end at r.
            self.scratch.begin(graph.n_left());
            self.scratch
                .augment_from_right(graph, r, &mut self.pair_left, &mut self.pair_right)
        } else {
            // Both endpoints matched: the path crosses (l, r) somewhere in
            // the middle, so its free-left endpoint can be anywhere.  One
            // search wave over all free left vertices (shared visited marks:
            // a failed root's alternating tree is dead for every later root)
            // is still a single O(E) attempt.
            self.scratch.begin(graph.n_right());
            let mut grew = false;
            for root in 0..graph.n_left() {
                if self.pair_left[root] == NIL
                    && graph.degree_left(root) > 0
                    && self.scratch.augment_from_left(
                        graph,
                        root,
                        &mut self.pair_left,
                        &mut self.pair_right,
                    )
                {
                    grew = true;
                    break;
                }
            }
            grew
        };
        if grew {
            self.size += 1;
        }
        grew
    }

    fn grow(&mut self, n_left: usize, n_right: usize) {
        if self.pair_left.len() < n_left {
            self.pair_left.resize(n_left, NIL);
        }
        if self.pair_right.len() < n_right {
            self.pair_right.resize(n_right, NIL);
        }
    }
}

/// The offline optimum of a growing revealed graph, maintained per edge.
///
/// Owns the [`BipartiteGraph`] and an [`IncrementalMatching`] kept in
/// lock-step, so callers replay a reveal stream with
/// [`insert_edge`](Self::insert_edge) and read [`cover_size`](Self::cover_size)
/// in `O(1)` after every event — no graph clone, no re-matching.  The
/// explicit cover (which threads/objects form the optimal clock) is rebuilt
/// from the maintained matching only when [`cover`](Self::cover) is called,
/// and cached until the next insertion.
#[derive(Debug, Clone, Default)]
pub struct IncrementalOptimum {
    graph: BipartiteGraph,
    matching: IncrementalMatching,
    cover: Option<VertexCover>,
}

impl IncrementalOptimum {
    /// Creates an empty tracker; both sides grow as edges are inserted.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracker whose graph starts with the given side sizes
    /// (avoids growth reallocations when the extent is known up front).
    pub fn with_sides(n_left: usize, n_right: usize) -> Self {
        Self {
            graph: BipartiteGraph::new(n_left, n_right),
            matching: IncrementalMatching::new(),
            cover: None,
        }
    }

    /// Reveals the edge `(l, r)`, growing the graph as needed.  Returns
    /// `true` if the edge is new; repeats are `O(1)` no-ops.
    pub fn insert_edge(&mut self, l: usize, r: usize) -> bool {
        if !self.graph.add_edge_growing(l, r) {
            return false;
        }
        self.cover = None;
        self.matching.insert_edge(&self.graph, l, r);
        true
    }

    /// The revealed graph so far.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The maintained maximum matching.
    pub fn matching(&self) -> &IncrementalMatching {
        &self.matching
    }

    /// Size of the maintained maximum matching.  `O(1)`.
    pub fn matching_size(&self) -> usize {
        self.matching.size()
    }

    /// Size of the minimum vertex cover of the revealed graph — the offline
    /// optimal clock size.  `O(1)` by Kőnig–Egerváry (it equals the matching
    /// size; no cover rebuild happens here).
    pub fn cover_size(&self) -> usize {
        self.matching.size()
    }

    /// The minimum vertex cover itself (Algorithm 1's component set),
    /// lazily rebuilt from the maintained matching via the Kőnig–Egerváry
    /// alternating-path construction (`O(V + E)`) and cached until the next
    /// insertion.
    pub fn cover(&mut self) -> &VertexCover {
        if self.cover.is_none() {
            let matching = self.matching.to_matching(&self.graph);
            self.cover = Some(minimum_vertex_cover(&self.graph, &matching));
        }
        self.cover.as_ref().expect("just rebuilt")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{GraphScenario, RandomGraphBuilder};
    use crate::matching::hopcroft_karp;
    use proptest::prelude::*;

    /// Replays a stream through both the incremental matcher and per-prefix
    /// from-scratch Hopcroft–Karp, asserting equality at every step.
    fn check_stream(edges: &[(usize, usize)]) {
        let mut opt = IncrementalOptimum::new();
        let mut scratch = BipartiteGraph::new(0, 0);
        for &(l, r) in edges {
            let new_inc = opt.insert_edge(l, r);
            let new_scratch = scratch.add_edge_growing(l, r);
            assert_eq!(new_inc, new_scratch, "edge ({l}, {r})");
            let reference = hopcroft_karp(&scratch);
            assert_eq!(
                opt.matching_size(),
                reference.size(),
                "matching size diverged after inserting ({l}, {r})"
            );
            assert_eq!(opt.cover_size(), reference.size());
            let cover = opt.cover().clone();
            assert_eq!(cover.size(), reference.size(), "Kőnig violated");
            assert!(cover.covers_all_edges(&scratch), "not a vertex cover");
            assert!(opt.matching().to_matching(&scratch).is_valid_for(&scratch));
        }
    }

    #[test]
    fn empty_tracker() {
        let mut opt = IncrementalOptimum::new();
        assert_eq!(opt.cover_size(), 0);
        assert_eq!(opt.matching_size(), 0);
        assert!(opt.cover().is_empty());
        assert_eq!(opt.graph().edge_count(), 0);
    }

    #[test]
    fn repeats_are_no_ops() {
        let mut opt = IncrementalOptimum::new();
        assert!(opt.insert_edge(0, 0));
        assert!(!opt.insert_edge(0, 0));
        assert_eq!(opt.cover_size(), 1);
        assert_eq!(opt.graph().edge_count(), 1);
    }

    #[test]
    fn star_stream_stays_at_one() {
        let mut opt = IncrementalOptimum::new();
        for t in 0..50 {
            opt.insert_edge(t, 0);
            assert_eq!(opt.cover_size(), 1, "one hub covers the whole star");
        }
        assert!(opt.cover().contains_right(0));
    }

    #[test]
    fn both_endpoints_matched_can_still_augment() {
        // Chain: L0–R0 and L2–R1 are matched greedily; inserting (1, 0) then
        // (1, 1) exercises the free-endpoint roots; finally a both-matched
        // insertion that *does* admit an augmenting path through the middle.
        check_stream(&[(0, 0), (2, 1), (1, 0), (1, 1), (0, 1), (2, 2), (1, 2)]);
    }

    #[test]
    fn paper_figure2_stream() {
        check_stream(&[(0, 1), (1, 0), (1, 1), (1, 2), (1, 3), (2, 2), (3, 2)]);
        let mut opt = IncrementalOptimum::new();
        for &(l, r) in &[(0, 1), (1, 0), (1, 1), (1, 2), (1, 3), (2, 2), (3, 2)] {
            opt.insert_edge(l, r);
        }
        assert_eq!(opt.cover_size(), 3, "paper reports a mixed clock of size 3");
    }

    #[test]
    fn random_streams_match_scratch_at_every_prefix() {
        for seed in 0..15 {
            let (_, stream) = RandomGraphBuilder::new(18, 18)
                .density(0.15)
                .scenario(if seed % 2 == 0 {
                    GraphScenario::Uniform
                } else {
                    GraphScenario::default_nonuniform()
                })
                .seed(seed)
                .build_edge_stream();
            check_stream(&stream);
        }
    }

    #[test]
    fn with_sides_presizes_the_graph() {
        let mut opt = IncrementalOptimum::with_sides(10, 10);
        assert_eq!(opt.graph().n_left(), 10);
        opt.insert_edge(3, 7);
        assert_eq!(opt.cover_size(), 1);
        assert_eq!(opt.graph().n_left(), 10, "no growth needed");
    }

    #[test]
    fn long_alternating_chain_insertion_does_not_overflow() {
        // Mirror of the batch-algorithm regression: the final insertion
        // augments along a ~50k-edge alternating chain, which must use the
        // explicit-stack search.
        let n = 50_000;
        let mut opt = IncrementalOptimum::new();
        for i in 0..n {
            opt.insert_edge(i, i);
            opt.insert_edge(i, i + 1);
        }
        assert_eq!(opt.cover_size(), n);
        assert!(opt.insert_edge(n, 0), "the chain-closing edge is new");
        assert_eq!(opt.cover_size(), n + 1, "chain-long augmentation found");
    }

    #[test]
    fn matching_accessors() {
        let mut opt = IncrementalOptimum::new();
        opt.insert_edge(0, 3);
        assert_eq!(opt.matching().partner_of_left(0), Some(3));
        assert_eq!(opt.matching().partner_of_right(3), Some(0));
        assert_eq!(opt.matching().partner_of_left(99), None);
        assert_eq!(opt.matching().partner_of_right(99), None);
        assert_eq!(opt.matching().size(), 1);
    }

    proptest! {
        /// Every prefix of a random stream: incremental == from-scratch, and
        /// the lazily rebuilt cover is a genuine Kőnig cover.
        #[test]
        fn prop_incremental_matches_scratch(
            n in 1usize..14,
            density in 0.0f64..0.6,
            seed in 0u64..300,
        ) {
            let (_, stream) = RandomGraphBuilder::new(n, n)
                .density(density)
                .seed(seed)
                .build_edge_stream();
            check_stream(&stream);
        }
    }
}
