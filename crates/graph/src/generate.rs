//! Random bipartite graph generators for the paper's evaluation scenarios.
//!
//! Section V of the paper evaluates on two families of thread–object graphs:
//!
//! * **Uniform** — every (thread, object) pair is an edge independently with
//!   the same probability `p` (so the expected density is `p`).
//! * **Nonuniform** — "a small fraction of objects and threads are much more
//!   popular than other threads and objects": edges incident to *hot*
//!   vertices are added with a boosted probability, edges between two cold
//!   vertices with a reduced probability, calibrated so the expected density
//!   still matches the requested density.
//!
//! The generators are deterministic given a seed so that every figure in
//! `EXPERIMENTS.md` can be regenerated bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::bipartite::BipartiteGraph;

/// Which of the paper's two evaluation scenarios to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum GraphScenario {
    /// Every (thread, object) pair is an edge with the same probability.
    #[default]
    Uniform,
    /// A `hot_fraction` of threads and objects are `hot_boost`× more likely
    /// to be an endpoint of any given edge than cold vertices.
    Nonuniform {
        /// Fraction (0, 1] of vertices on each side that are "popular".
        hot_fraction: f64,
        /// Multiplicative boost applied to the edge probability for each hot
        /// endpoint (a hot–hot pair gets `hot_boost²` before clamping).
        hot_boost: f64,
    },
}

impl GraphScenario {
    /// The nonuniform scenario with the parameters used throughout the
    /// evaluation harness (20% hot vertices, 8× boost).
    pub fn default_nonuniform() -> Self {
        GraphScenario::Nonuniform {
            hot_fraction: 0.2,
            hot_boost: 8.0,
        }
    }

    /// A short, stable name used in reports and CSV headers.
    pub fn name(&self) -> &'static str {
        match self {
            GraphScenario::Uniform => "uniform",
            GraphScenario::Nonuniform { .. } => "nonuniform",
        }
    }
}

/// Builder for random thread–object bipartite graphs.
///
/// ```
/// use mvc_graph::{GraphScenario, RandomGraphBuilder};
/// let g = RandomGraphBuilder::new(50, 50)
///     .density(0.05)
///     .scenario(GraphScenario::Uniform)
///     .seed(42)
///     .build();
/// assert_eq!(g.n_left(), 50);
/// assert_eq!(g.n_right(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct RandomGraphBuilder {
    n_left: usize,
    n_right: usize,
    density: f64,
    scenario: GraphScenario,
    seed: u64,
}

impl RandomGraphBuilder {
    /// Starts a builder for a graph with `n_left` threads and `n_right`
    /// objects.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        Self {
            n_left,
            n_right,
            density: 0.05,
            scenario: GraphScenario::Uniform,
            seed: 0,
        }
    }

    /// Sets the target (expected) edge density in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `[0, 1]` or is NaN.
    pub fn density(mut self, density: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&density),
            "density must be within [0, 1], got {density}"
        );
        self.density = density;
        self
    }

    /// Selects the generation scenario (uniform / nonuniform).
    pub fn scenario(mut self, scenario: GraphScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the RNG seed; identical seeds produce identical graphs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the graph.
    pub fn build(&self) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.build_with_rng(&mut rng)
    }

    /// Generates the graph using a caller-provided RNG (useful when a single
    /// RNG stream must drive a whole experiment).
    pub fn build_with_rng<R: Rng + ?Sized>(&self, rng: &mut R) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(self.n_left, self.n_right);
        match self.scenario {
            GraphScenario::Uniform => {
                for l in 0..self.n_left {
                    for r in 0..self.n_right {
                        if rng.gen_bool(self.density.clamp(0.0, 1.0)) {
                            g.add_edge(l, r);
                        }
                    }
                }
            }
            GraphScenario::Nonuniform {
                hot_fraction,
                hot_boost,
            } => {
                let hot_left = hot_count(self.n_left, hot_fraction);
                let hot_right = hot_count(self.n_right, hot_fraction);
                // Choose a base probability for cold-cold pairs such that the
                // expected number of edges matches `density * n_left * n_right`.
                // Pair weights: cold-cold 1, hot-cold hot_boost, hot-hot hot_boost².
                let f_l = if self.n_left == 0 {
                    0.0
                } else {
                    hot_left as f64 / self.n_left as f64
                };
                let f_r = if self.n_right == 0 {
                    0.0
                } else {
                    hot_right as f64 / self.n_right as f64
                };
                let mean_weight = (1.0 - f_l) * (1.0 - f_r)
                    + (f_l * (1.0 - f_r) + f_r * (1.0 - f_l)) * hot_boost
                    + f_l * f_r * hot_boost * hot_boost;
                let base = if mean_weight > 0.0 {
                    self.density / mean_weight
                } else {
                    self.density
                };
                for l in 0..self.n_left {
                    for r in 0..self.n_right {
                        let mut p = base;
                        if l < hot_left {
                            p *= hot_boost;
                        }
                        if r < hot_right {
                            p *= hot_boost;
                        }
                        if rng.gen_bool(p.clamp(0.0, 1.0)) {
                            g.add_edge(l, r);
                        }
                    }
                }
            }
        }
        g
    }

    /// Generates the graph and returns its edges in a uniformly random order,
    /// simulating an online computation revealing events one at a time.
    ///
    /// The shuffle uses the same seeded RNG stream as the graph itself so a
    /// `(builder, seed)` pair fully determines the revealed sequence.
    pub fn build_edge_stream(&self) -> (BipartiteGraph, Vec<(usize, usize)>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let g = self.build_with_rng(&mut rng);
        let mut edges: Vec<(usize, usize)> = g.edges().collect();
        // Fisher-Yates shuffle driven by the same RNG stream.
        for i in (1..edges.len()).rev() {
            let j = rng.gen_range(0..=i);
            edges.swap(i, j);
        }
        (g, edges)
    }
}

fn hot_count(n: usize, fraction: f64) -> usize {
    if n == 0 {
        return 0;
    }
    ((n as f64 * fraction).round() as usize).clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let b = RandomGraphBuilder::new(20, 20).density(0.3).seed(99);
        assert_eq!(b.build(), b.build());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let a = RandomGraphBuilder::new(20, 20).density(0.3).seed(1).build();
        let b = RandomGraphBuilder::new(20, 20).density(0.3).seed(2).build();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_density_has_no_edges() {
        let g = RandomGraphBuilder::new(30, 30).density(0.0).seed(5).build();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn full_density_is_complete() {
        let g = RandomGraphBuilder::new(10, 12).density(1.0).seed(5).build();
        assert_eq!(g.edge_count(), 120);
    }

    #[test]
    #[should_panic(expected = "density must be within")]
    fn invalid_density_rejected() {
        let _ = RandomGraphBuilder::new(5, 5).density(1.5);
    }

    #[test]
    fn uniform_density_close_to_target() {
        let g = RandomGraphBuilder::new(100, 100)
            .density(0.2)
            .seed(7)
            .build();
        let observed = g.density();
        assert!(
            (observed - 0.2).abs() < 0.03,
            "observed density {observed} too far from 0.2"
        );
    }

    #[test]
    fn nonuniform_density_close_to_target() {
        let g = RandomGraphBuilder::new(100, 100)
            .density(0.1)
            .scenario(GraphScenario::default_nonuniform())
            .seed(11)
            .build();
        let observed = g.density();
        assert!(
            (observed - 0.1).abs() < 0.04,
            "observed density {observed} too far from 0.1"
        );
    }

    #[test]
    fn nonuniform_hot_vertices_have_higher_degree() {
        let g = RandomGraphBuilder::new(100, 100)
            .density(0.05)
            .scenario(GraphScenario::Nonuniform {
                hot_fraction: 0.1,
                hot_boost: 10.0,
            })
            .seed(3)
            .build();
        let hot: usize = (0..10).map(|l| g.degree_left(l)).sum();
        let cold: usize = (10..100).map(|l| g.degree_left(l)).sum();
        let hot_avg = hot as f64 / 10.0;
        let cold_avg = cold as f64 / 90.0;
        assert!(
            hot_avg > 2.0 * cold_avg,
            "hot average degree {hot_avg} not clearly above cold {cold_avg}"
        );
    }

    #[test]
    fn edge_stream_covers_exactly_the_graph() {
        let (g, stream) = RandomGraphBuilder::new(30, 30)
            .density(0.1)
            .seed(21)
            .build_edge_stream();
        assert_eq!(stream.len(), g.edge_count());
        for &(l, r) in &stream {
            assert!(g.has_edge(l, r));
        }
    }

    #[test]
    fn edge_stream_is_deterministic() {
        let b = RandomGraphBuilder::new(30, 30).density(0.1).seed(21);
        assert_eq!(b.build_edge_stream().1, b.build_edge_stream().1);
    }

    #[test]
    fn scenario_names() {
        assert_eq!(GraphScenario::Uniform.name(), "uniform");
        assert_eq!(GraphScenario::default_nonuniform().name(), "nonuniform");
        assert_eq!(GraphScenario::default(), GraphScenario::Uniform);
    }

    #[test]
    fn hot_count_bounds() {
        assert_eq!(hot_count(0, 0.2), 0);
        assert_eq!(hot_count(10, 0.2), 2);
        assert_eq!(hot_count(3, 0.01), 1, "at least one hot vertex when n > 0");
        assert_eq!(hot_count(4, 2.0), 4, "clamped to n");
    }
}
