//! Degree / density / popularity statistics over a bipartite graph.
//!
//! The online *Popularity* mechanism (Definition 1 in the paper) and the
//! evaluation harness both need cheap access to aggregate graph statistics;
//! this module centralises them.

use serde::{Deserialize, Serialize};

use crate::bipartite::{BipartiteGraph, Vertex};

/// Aggregate statistics of a bipartite graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of left vertices (threads) declared in the graph.
    pub n_left: usize,
    /// Number of right vertices (objects) declared in the graph.
    pub n_right: usize,
    /// Number of left vertices with at least one edge.
    pub active_left: usize,
    /// Number of right vertices with at least one edge.
    pub active_right: usize,
    /// Number of distinct edges.
    pub edges: usize,
    /// `edges / (n_left * n_right)`.
    pub density: f64,
    /// Maximum degree over left vertices.
    pub max_degree_left: usize,
    /// Maximum degree over right vertices.
    pub max_degree_right: usize,
    /// Mean degree over *active* left vertices (0 if none).
    pub mean_degree_left: f64,
    /// Mean degree over *active* right vertices (0 if none).
    pub mean_degree_right: f64,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn of(graph: &BipartiteGraph) -> Self {
        let active_left = graph.active_left().count();
        let active_right = graph.active_right().count();
        let max_degree_left = (0..graph.n_left())
            .map(|l| graph.degree_left(l))
            .max()
            .unwrap_or(0);
        let max_degree_right = (0..graph.n_right())
            .map(|r| graph.degree_right(r))
            .max()
            .unwrap_or(0);
        let total_degree_left: usize = (0..graph.n_left()).map(|l| graph.degree_left(l)).sum();
        let total_degree_right: usize = (0..graph.n_right()).map(|r| graph.degree_right(r)).sum();
        GraphStats {
            n_left: graph.n_left(),
            n_right: graph.n_right(),
            active_left,
            active_right,
            edges: graph.edge_count(),
            density: graph.density(),
            max_degree_left,
            max_degree_right,
            mean_degree_left: mean(total_degree_left, active_left),
            mean_degree_right: mean(total_degree_right, active_right),
        }
    }

    /// Size of the smaller *active* side — the best a traditional
    /// single-sided vector clock can achieve for this computation.
    pub fn naive_clock_size(&self) -> usize {
        self.active_left.min(self.active_right)
    }
}

fn mean(total: usize, count: usize) -> f64 {
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

/// Returns the vertex (thread or object) with the higher popularity,
/// breaking ties in favour of the *object* (right vertex).
///
/// The tie-break matches the intuition behind the Popularity mechanism:
/// objects touched by many threads tend to keep gaining edges, so preferring
/// the object is the safer bet when degrees are equal. The choice is made
/// explicit here so the evaluation is reproducible.
pub fn more_popular(graph: &BipartiteGraph, left: usize, right: usize) -> Vertex {
    let pop_left = graph.popularity(Vertex::Left(left));
    let pop_right = graph.popularity(Vertex::Right(right));
    if pop_left > pop_right {
        Vertex::Left(left)
    } else {
        Vertex::Right(right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::of(&BipartiteGraph::new(3, 4));
        assert_eq!(s.n_left, 3);
        assert_eq!(s.n_right, 4);
        assert_eq!(s.edges, 0);
        assert_eq!(s.active_left, 0);
        assert_eq!(s.active_right, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.mean_degree_left, 0.0);
        assert_eq!(s.naive_clock_size(), 0);
    }

    #[test]
    fn stats_of_small_graph() {
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (0, 1), (1, 0)]);
        let s = GraphStats::of(&g);
        assert_eq!(s.edges, 3);
        assert_eq!(s.active_left, 2);
        assert_eq!(s.active_right, 2);
        assert_eq!(s.max_degree_left, 2);
        assert_eq!(s.max_degree_right, 2);
        assert!((s.mean_degree_left - 1.5).abs() < 1e-12);
        assert!((s.density - 0.5).abs() < 1e-12);
        assert_eq!(s.naive_clock_size(), 2);
    }

    #[test]
    fn more_popular_prefers_higher_degree() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 0), (2, 0), (0, 1)]);
        // Object 0 has degree 3, thread 0 has degree 2.
        assert_eq!(more_popular(&g, 0, 0), Vertex::Right(0));
        // Thread 0 (degree 2) vs object 1 (degree 1).
        assert_eq!(more_popular(&g, 0, 1), Vertex::Left(0));
    }

    #[test]
    fn more_popular_tie_breaks_to_object() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]);
        assert_eq!(more_popular(&g, 0, 0), Vertex::Right(0));
    }
}
