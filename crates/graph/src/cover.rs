//! Minimum vertex cover of a bipartite graph (Kőnig–Egerváry).
//!
//! Algorithm 1 in the paper: given a maximum matching `M*`, let `S` be the set
//! of unmatched left (thread) vertices, and let `Z` be the set of vertices
//! reachable from `S` via alternating paths (unmatched edge from left to
//! right, matched edge from right to left).  Then
//!
//! ```text
//! C* = (T − Z) ∪ (O ∩ Z)
//! ```
//!
//! is a minimum vertex cover whose size equals `|M*|`.  The threads and
//! objects in the cover become the components of the optimal mixed vector
//! clock.

use std::collections::{HashSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::bipartite::{BipartiteGraph, Vertex};
use crate::matching::{hopcroft_karp, Matching};

/// A vertex cover of a bipartite graph: a set of vertices such that every
/// edge has at least one endpoint in the set.
///
/// In mixed-vector-clock terms: the set of threads and objects that will get
/// a component in the clock.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexCover {
    left: HashSet<usize>,
    right: HashSet<usize>,
}

impl VertexCover {
    /// Creates an empty cover (only a valid cover for an edgeless graph).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a cover from explicit left/right vertex sets.
    pub fn from_sets(
        left: impl IntoIterator<Item = usize>,
        right: impl IntoIterator<Item = usize>,
    ) -> Self {
        Self {
            left: left.into_iter().collect(),
            right: right.into_iter().collect(),
        }
    }

    /// Builds the trivial cover consisting of *all* left vertices with at
    /// least one edge (the thread-based vector clock of the computation).
    pub fn all_left(graph: &BipartiteGraph) -> Self {
        Self::from_sets(graph.active_left(), std::iter::empty())
    }

    /// Builds the trivial cover consisting of *all* right vertices with at
    /// least one edge (the object-based vector clock of the computation).
    pub fn all_right(graph: &BipartiteGraph) -> Self {
        Self::from_sets(std::iter::empty(), graph.active_right())
    }

    /// Number of vertices in the cover (= size of the mixed vector clock).
    pub fn size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Returns `true` if the cover has no vertices.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }

    /// Left-side (thread) members of the cover.
    pub fn left_members(&self) -> impl Iterator<Item = usize> + '_ {
        self.left.iter().copied()
    }

    /// Right-side (object) members of the cover.
    pub fn right_members(&self) -> impl Iterator<Item = usize> + '_ {
        self.right.iter().copied()
    }

    /// All members of the cover as [`Vertex`] values, left side first,
    /// each side in ascending index order (deterministic).
    pub fn members(&self) -> Vec<Vertex> {
        let mut left: Vec<_> = self.left.iter().copied().collect();
        left.sort_unstable();
        let mut right: Vec<_> = self.right.iter().copied().collect();
        right.sort_unstable();
        left.into_iter()
            .map(Vertex::Left)
            .chain(right.into_iter().map(Vertex::Right))
            .collect()
    }

    /// Returns `true` if the given left vertex is in the cover.
    pub fn contains_left(&self, l: usize) -> bool {
        self.left.contains(&l)
    }

    /// Returns `true` if the given right vertex is in the cover.
    pub fn contains_right(&self, r: usize) -> bool {
        self.right.contains(&r)
    }

    /// Returns `true` if the given vertex is in the cover.
    pub fn contains(&self, v: Vertex) -> bool {
        match v {
            Vertex::Left(l) => self.contains_left(l),
            Vertex::Right(r) => self.contains_right(r),
        }
    }

    /// Adds a vertex to the cover, returning `true` if it was newly inserted.
    pub fn insert(&mut self, v: Vertex) -> bool {
        match v {
            Vertex::Left(l) => self.left.insert(l),
            Vertex::Right(r) => self.right.insert(r),
        }
    }

    /// Checks the defining property: every edge of `graph` has at least one
    /// endpoint in the cover.
    pub fn covers_all_edges(&self, graph: &BipartiteGraph) -> bool {
        graph
            .edges()
            .all(|(l, r)| self.contains_left(l) || self.contains_right(r))
    }

    /// Checks whether a single edge is covered.
    pub fn covers_edge(&self, l: usize, r: usize) -> bool {
        self.contains_left(l) || self.contains_right(r)
    }
}

impl FromIterator<Vertex> for VertexCover {
    fn from_iter<I: IntoIterator<Item = Vertex>>(iter: I) -> Self {
        let mut cover = VertexCover::new();
        for v in iter {
            cover.insert(v);
        }
        cover
    }
}

/// Computes a minimum vertex cover from a maximum matching using the
/// constructive Kőnig–Egerváry argument (Algorithm 1 of the paper).
///
/// `matching` **must** be a maximum matching of `graph` (e.g. the output of
/// [`hopcroft_karp`]); otherwise the returned set is still a vertex cover but
/// not necessarily minimum.
///
/// ```
/// use mvc_graph::{BipartiteGraph, matching::hopcroft_karp, cover::minimum_vertex_cover};
/// let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]);
/// let m = hopcroft_karp(&g);
/// let c = minimum_vertex_cover(&g, &m);
/// assert_eq!(c.size(), 2);
/// assert!(c.covers_all_edges(&g));
/// ```
pub fn minimum_vertex_cover(graph: &BipartiteGraph, matching: &Matching) -> VertexCover {
    let n_left = graph.n_left();

    // Z := unmatched left vertices, plus everything reachable from them via
    // alternating paths (BFS: left->right over unmatched edges, right->left
    // over matched edges).
    let mut z_left = vec![false; n_left];
    let mut z_right = vec![false; graph.n_right()];
    let mut queue = VecDeque::new();

    for (l, in_z) in z_left.iter_mut().enumerate() {
        // Only consider left vertices that participate in the graph at all;
        // isolated threads are irrelevant to the cover.
        if graph.degree_left(l) > 0 && !matching.is_left_matched(l) {
            *in_z = true;
            queue.push_back(Vertex::Left(l));
        }
    }

    while let Some(v) = queue.pop_front() {
        match v {
            Vertex::Left(l) => {
                for &r in graph.neighbors_of_left(l) {
                    // Alternating path: from a left vertex we may only follow
                    // *unmatched* edges.
                    if !matching.contains_edge(l, r) && !z_right[r] {
                        z_right[r] = true;
                        queue.push_back(Vertex::Right(r));
                    }
                }
            }
            Vertex::Right(r) => {
                // From a right vertex we may only follow the *matched* edge.
                if let Some(l) = matching.partner_of_right(r) {
                    if !z_left[l] {
                        z_left[l] = true;
                        queue.push_back(Vertex::Left(l));
                    }
                }
            }
        }
    }

    // C* = (T − Z) ∪ (O ∩ Z), restricted to vertices with at least one edge.
    let left = (0..n_left).filter(|&l| graph.degree_left(l) > 0 && !z_left[l]);
    let right = (0..graph.n_right()).filter(|&r| z_right[r]);
    VertexCover::from_sets(left, right)
}

/// Convenience: compute a maximum matching with Hopcroft–Karp and convert it
/// to a minimum vertex cover in one call.
pub fn minimum_vertex_cover_of(graph: &BipartiteGraph) -> VertexCover {
    let matching = hopcroft_karp(graph);
    minimum_vertex_cover(graph, &matching)
}

/// A greedy 2-approximation of minimum vertex cover (pick an uncovered edge,
/// add both endpoints, repeat).
///
/// This is *not* used by the paper; it exists as an ablation baseline so the
/// benchmarks can show how much the exact Kőnig construction buys over a
/// cheap approximation.
pub fn greedy_vertex_cover(graph: &BipartiteGraph) -> VertexCover {
    let mut cover = VertexCover::new();
    for (l, r) in graph.edges() {
        if !cover.covers_edge(l, r) {
            cover.insert(Vertex::Left(l));
            cover.insert(Vertex::Right(r));
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{GraphScenario, RandomGraphBuilder};
    use proptest::prelude::*;

    fn cover_of(g: &BipartiteGraph) -> VertexCover {
        minimum_vertex_cover(g, &hopcroft_karp(g))
    }

    #[test]
    fn empty_graph_empty_cover() {
        let g = BipartiteGraph::new(4, 4);
        let c = cover_of(&g);
        assert!(c.is_empty());
        assert!(c.covers_all_edges(&g));
    }

    #[test]
    fn single_edge_cover_size_one() {
        let g = BipartiteGraph::from_edges(1, 1, &[(0, 0)]);
        let c = cover_of(&g);
        assert_eq!(c.size(), 1);
        assert!(c.covers_all_edges(&g));
    }

    #[test]
    fn star_graph_cover_is_center() {
        // One thread touching 10 objects: the optimal cover is just the thread.
        let mut g = BipartiteGraph::new(1, 10);
        for r in 0..10 {
            g.add_edge(0, r);
        }
        let c = cover_of(&g);
        assert_eq!(c.size(), 1);
        assert!(c.contains_left(0));
    }

    #[test]
    fn reverse_star_cover_is_center_object() {
        // Ten threads all touching one object: the optimal cover is the object.
        let mut g = BipartiteGraph::new(10, 1);
        for l in 0..10 {
            g.add_edge(l, 0);
        }
        let c = cover_of(&g);
        assert_eq!(c.size(), 1);
        assert!(c.contains_right(0));
    }

    #[test]
    fn paper_figure2_cover_is_t2_o2_o3() {
        // Threads T1..T4 are indices 0..3, objects O1..O4 are indices 0..3.
        // Edges from Fig. 1: T1-O2, T2-O1, T2-O2, T2-O3, T2-O4, T3-O3, T4-O3.
        let g = BipartiteGraph::from_edges(
            4,
            4,
            &[(0, 1), (1, 0), (1, 1), (1, 2), (1, 3), (2, 2), (3, 2)],
        );
        let c = cover_of(&g);
        assert_eq!(c.size(), 3, "paper reports a mixed clock of size 3");
        assert!(c.covers_all_edges(&g));
        // Every minimum cover of this graph contains T2 and O3; the third
        // component is either T1 or O2 (the paper picks {T2, O2, O3}).
        assert!(c.contains_left(1));
        assert!(c.contains_right(2));
        assert!(c.contains_right(1) || c.contains_left(0));
    }

    #[test]
    fn cover_size_never_exceeds_min_side() {
        for seed in 0..10 {
            let g = RandomGraphBuilder::new(20, 35)
                .density(0.3)
                .seed(seed)
                .build();
            let c = cover_of(&g);
            let active_left = g.active_left().count();
            let active_right = g.active_right().count();
            assert!(c.size() <= active_left.min(active_right));
        }
    }

    #[test]
    fn complete_graph_cover_is_smaller_side() {
        let mut g = BipartiteGraph::new(4, 9);
        for l in 0..4 {
            for r in 0..9 {
                g.add_edge(l, r);
            }
        }
        let c = cover_of(&g);
        assert_eq!(c.size(), 4);
        assert!(c.covers_all_edges(&g));
    }

    #[test]
    fn trivial_covers_cover_everything() {
        let g = RandomGraphBuilder::new(15, 15).density(0.2).seed(7).build();
        assert!(VertexCover::all_left(&g).covers_all_edges(&g));
        assert!(VertexCover::all_right(&g).covers_all_edges(&g));
    }

    #[test]
    fn greedy_cover_is_valid_and_at_most_twice_optimal() {
        for seed in 0..10 {
            let g = RandomGraphBuilder::new(25, 25)
                .density(0.15)
                .seed(seed)
                .build();
            let greedy = greedy_vertex_cover(&g);
            let optimal = cover_of(&g);
            assert!(greedy.covers_all_edges(&g));
            assert!(greedy.size() <= 2 * optimal.size().max(1));
        }
    }

    #[test]
    fn members_are_sorted_and_typed() {
        let cover = VertexCover::from_sets([2, 0], [1]);
        assert_eq!(
            cover.members(),
            vec![Vertex::Left(0), Vertex::Left(2), Vertex::Right(1)]
        );
        assert!(cover.contains(Vertex::Left(2)));
        assert!(!cover.contains(Vertex::Right(9)));
    }

    #[test]
    fn from_iterator_collects_vertices() {
        let cover: VertexCover = [Vertex::Left(1), Vertex::Right(3), Vertex::Left(1)]
            .into_iter()
            .collect();
        assert_eq!(cover.size(), 2);
    }

    proptest! {
        /// The heart of the Kőnig–Egerváry theorem: |minimum cover| == |maximum matching|,
        /// and the produced set indeed covers every edge.
        #[test]
        fn prop_konig_egervary(
            n_left in 1usize..35,
            n_right in 1usize..35,
            density in 0.0f64..1.0,
            seed in 0u64..1000,
        ) {
            let g = RandomGraphBuilder::new(n_left, n_right)
                .density(density)
                .seed(seed)
                .build();
            let m = hopcroft_karp(&g);
            let c = minimum_vertex_cover(&g, &m);
            prop_assert!(c.covers_all_edges(&g));
            prop_assert_eq!(c.size(), m.size());
        }

        /// Nonuniform graphs exercise the skewed generator path as well.
        #[test]
        fn prop_konig_egervary_nonuniform(
            n in 2usize..30,
            density in 0.0f64..0.6,
            seed in 0u64..500,
        ) {
            let g = RandomGraphBuilder::new(n, n)
                .density(density)
                .scenario(GraphScenario::Nonuniform { hot_fraction: 0.2, hot_boost: 8.0 })
                .seed(seed)
                .build();
            let m = hopcroft_karp(&g);
            let c = minimum_vertex_cover(&g, &m);
            prop_assert!(c.covers_all_edges(&g));
            prop_assert_eq!(c.size(), m.size());
        }

        /// No vertex cover can be smaller than a matching (weak duality), so the
        /// greedy cover must be at least the matching size.
        #[test]
        fn prop_weak_duality(
            n in 1usize..25,
            density in 0.0f64..1.0,
            seed in 0u64..300,
        ) {
            let g = RandomGraphBuilder::new(n, n).density(density).seed(seed).build();
            let m = hopcroft_karp(&g);
            let greedy = greedy_vertex_cover(&g);
            prop_assert!(greedy.size() >= m.size());
        }
    }
}
