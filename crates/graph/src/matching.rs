//! Maximum bipartite matching.
//!
//! The paper's offline algorithm (Algorithm 1) starts from a maximum matching
//! of the thread–object bipartite graph.  We provide two algorithms:
//!
//! * [`hopcroft_karp`] — the Hopcroft–Karp algorithm referenced by the paper
//!   (`O(E √V)`), which finds a *maximal set of shortest vertex-disjoint
//!   augmenting paths* per phase.
//! * [`simple_augmenting`] — the classic single-augmenting-path (Hungarian
//!   style) algorithm in `O(V · E)`, kept as an independently implemented
//!   baseline; the test-suite cross-checks that both report the same matching
//!   size on random graphs.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::bipartite::BipartiteGraph;

/// Sentinel meaning "unmatched" in the internal pair arrays.
const NIL: usize = usize::MAX;

/// A matching in a bipartite graph: a set of edges no two of which share an
/// endpoint.
///
/// Stored as two partner arrays, `pair_left[l] == Some(r)` iff edge `(l, r)`
/// is in the matching (and then `pair_right[r] == Some(l)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matching {
    pair_left: Vec<Option<usize>>,
    pair_right: Vec<Option<usize>>,
}

impl Matching {
    /// Creates an empty matching for a graph with the given side sizes.
    pub fn empty(n_left: usize, n_right: usize) -> Self {
        Self {
            pair_left: vec![None; n_left],
            pair_right: vec![None; n_right],
        }
    }

    /// Number of matched edges.
    pub fn size(&self) -> usize {
        self.pair_left.iter().filter(|p| p.is_some()).count()
    }

    /// The right partner matched with left vertex `l`, if any.
    pub fn partner_of_left(&self, l: usize) -> Option<usize> {
        self.pair_left.get(l).copied().flatten()
    }

    /// The left partner matched with right vertex `r`, if any.
    pub fn partner_of_right(&self, r: usize) -> Option<usize> {
        self.pair_right.get(r).copied().flatten()
    }

    /// Returns `true` if left vertex `l` is matched.
    pub fn is_left_matched(&self, l: usize) -> bool {
        self.partner_of_left(l).is_some()
    }

    /// Returns `true` if right vertex `r` is matched.
    pub fn is_right_matched(&self, r: usize) -> bool {
        self.partner_of_right(r).is_some()
    }

    /// Returns `true` if the edge `(l, r)` is in the matching.
    pub fn contains_edge(&self, l: usize, r: usize) -> bool {
        self.partner_of_left(l) == Some(r)
    }

    /// Iterator over matched edges as `(left, right)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pair_left
            .iter()
            .enumerate()
            .filter_map(|(l, r)| r.map(|r| (l, r)))
    }

    /// Adds the edge `(l, r)` to the matching.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is already matched to a *different* vertex —
    /// that would violate the matching property.
    pub fn insert(&mut self, l: usize, r: usize) {
        if let Some(existing) = self.pair_left[l] {
            assert_eq!(existing, r, "left vertex {l} already matched to {existing}");
        }
        if let Some(existing) = self.pair_right[r] {
            assert_eq!(
                existing, l,
                "right vertex {r} already matched to {existing}"
            );
        }
        self.pair_left[l] = Some(r);
        self.pair_right[r] = Some(l);
    }

    /// Validates the matching against a graph: every matched edge must exist
    /// in the graph and partner arrays must be mutually consistent.
    pub fn is_valid_for(&self, graph: &BipartiteGraph) -> bool {
        if self.pair_left.len() != graph.n_left() || self.pair_right.len() != graph.n_right() {
            return false;
        }
        for (l, r) in self.edges() {
            if !graph.has_edge(l, r) {
                return false;
            }
            if self.pair_right[r] != Some(l) {
                return false;
            }
        }
        for (r, l) in self.pair_right.iter().enumerate() {
            if let Some(l) = l {
                if self.pair_left[*l] != Some(r) {
                    return false;
                }
            }
        }
        true
    }
}

/// Computes a maximum matching using the Hopcroft–Karp algorithm.
///
/// Each phase runs a BFS from all unmatched left vertices to build a layered
/// graph of shortest alternating paths, then a DFS that augments along a
/// maximal set of vertex-disjoint shortest augmenting paths.  The number of
/// phases is `O(√V)`, giving the `O(E √V)` bound cited in the paper
/// (Hopcroft & Karp, 1973).
///
/// ```
/// use mvc_graph::{BipartiteGraph, matching::hopcroft_karp};
/// let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (2, 2)]);
/// assert_eq!(hopcroft_karp(&g).size(), 3);
/// ```
pub fn hopcroft_karp(graph: &BipartiteGraph) -> Matching {
    let n_left = graph.n_left();
    let n_right = graph.n_right();
    // pair arrays use NIL for unmatched to keep the hot loops index-based.
    let mut pair_left = vec![NIL; n_left];
    let mut pair_right = vec![NIL; n_right];
    let mut dist = vec![u64::MAX; n_left];

    loop {
        if !hk_bfs(graph, &pair_left, &pair_right, &mut dist) {
            break;
        }
        let mut augmented = false;
        for l in 0..n_left {
            if pair_left[l] == NIL && hk_dfs(graph, l, &mut pair_left, &mut pair_right, &mut dist) {
                augmented = true;
            }
        }
        if !augmented {
            break;
        }
    }

    let mut matching = Matching::empty(n_left, n_right);
    for (l, &r) in pair_left.iter().enumerate() {
        if r != NIL {
            matching.insert(l, r);
        }
    }
    matching
}

/// BFS phase: computes shortest alternating-path distances from unmatched left
/// vertices. Returns `true` if at least one augmenting path exists.
fn hk_bfs(
    graph: &BipartiteGraph,
    pair_left: &[usize],
    pair_right: &[usize],
    dist: &mut [u64],
) -> bool {
    let mut queue = VecDeque::new();
    for l in 0..graph.n_left() {
        if pair_left[l] == NIL {
            dist[l] = 0;
            queue.push_back(l);
        } else {
            dist[l] = u64::MAX;
        }
    }
    let mut found = false;
    while let Some(l) = queue.pop_front() {
        for &r in graph.neighbors_of_left(l) {
            let next = pair_right[r];
            if next == NIL {
                // An augmenting path of this BFS level exists.
                found = true;
            } else if dist[next] == u64::MAX {
                dist[next] = dist[l] + 1;
                queue.push_back(next);
            }
        }
    }
    found
}

/// DFS phase: tries to find an augmenting path starting at unmatched left
/// vertex `l` that respects the BFS layering, flipping matched edges along it.
fn hk_dfs(
    graph: &BipartiteGraph,
    l: usize,
    pair_left: &mut [usize],
    pair_right: &mut [usize],
    dist: &mut [u64],
) -> bool {
    for idx in 0..graph.neighbors_of_left(l).len() {
        let r = graph.neighbors_of_left(l)[idx];
        let next = pair_right[r];
        let reachable = if next == NIL {
            true
        } else if dist[next] == dist[l].saturating_add(1) {
            hk_dfs(graph, next, pair_left, pair_right, dist)
        } else {
            false
        };
        if reachable {
            pair_left[l] = r;
            pair_right[r] = l;
            return true;
        }
    }
    dist[l] = u64::MAX;
    false
}

/// Computes a maximum matching using the simple augmenting-path algorithm
/// (one DFS per left vertex, `O(V · E)`).
///
/// Kept as an independent implementation to cross-check [`hopcroft_karp`] and
/// as a baseline in the matching benchmarks.
pub fn simple_augmenting(graph: &BipartiteGraph) -> Matching {
    let n_left = graph.n_left();
    let n_right = graph.n_right();
    let mut pair_right = vec![NIL; n_right];

    fn try_augment(
        graph: &BipartiteGraph,
        l: usize,
        visited: &mut [bool],
        pair_right: &mut [usize],
    ) -> bool {
        for &r in graph.neighbors_of_left(l) {
            if visited[r] {
                continue;
            }
            visited[r] = true;
            if pair_right[r] == NIL || try_augment(graph, pair_right[r], visited, pair_right) {
                pair_right[r] = l;
                return true;
            }
        }
        false
    }

    for l in 0..n_left {
        let mut visited = vec![false; n_right];
        try_augment(graph, l, &mut visited, &mut pair_right);
    }

    let mut matching = Matching::empty(n_left, n_right);
    for (r, &l) in pair_right.iter().enumerate() {
        if l != NIL {
            matching.insert(l, r);
        }
    }
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{GraphScenario, RandomGraphBuilder};
    use proptest::prelude::*;

    fn perfect_matchable() -> BipartiteGraph {
        // A 4x4 graph with a perfect matching.
        BipartiteGraph::from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 1),
                (1, 2),
                (2, 2),
                (2, 3),
                (3, 3),
                (3, 0),
            ],
        )
    }

    #[test]
    fn empty_graph_has_empty_matching() {
        let g = BipartiteGraph::new(5, 5);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 0);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn single_edge() {
        let g = BipartiteGraph::from_edges(1, 1, &[(0, 0)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 1);
        assert!(m.contains_edge(0, 0));
        assert!(m.is_left_matched(0));
        assert!(m.is_right_matched(0));
    }

    #[test]
    fn perfect_matching_found() {
        let g = perfect_matchable();
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 4);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn star_graph_matching_is_one() {
        // One thread touching every object: max matching is 1.
        let mut g = BipartiteGraph::new(1, 10);
        for r in 0..10 {
            g.add_edge(0, r);
        }
        assert_eq!(hopcroft_karp(&g).size(), 1);
        assert_eq!(simple_augmenting(&g).size(), 1);
    }

    #[test]
    fn complete_bipartite_matching_is_min_side() {
        let mut g = BipartiteGraph::new(3, 7);
        for l in 0..3 {
            for r in 0..7 {
                g.add_edge(l, r);
            }
        }
        assert_eq!(hopcroft_karp(&g).size(), 3);
    }

    #[test]
    fn paper_figure2_graph() {
        // Thread-object graph of the paper's Fig. 1/2 computation:
        // T1 uses O2; T2 uses O1, O2, O3, O4; T3 uses O3; T4 uses O3.
        let g = BipartiteGraph::from_edges(
            4,
            4,
            &[(0, 1), (1, 0), (1, 1), (1, 2), (1, 3), (2, 2), (3, 2)],
        );
        let m = hopcroft_karp(&g);
        // Matching size 3 => minimum vertex cover of size 3 (T2, O2, O3).
        assert_eq!(m.size(), 3);
    }

    #[test]
    fn augmenting_path_needed() {
        // Greedy matching in edge order would get stuck without augmentation:
        // 0-0, then 1 can only take 0. Augmenting flips 0 to 1.
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        assert_eq!(hopcroft_karp(&g).size(), 2);
        assert_eq!(simple_augmenting(&g).size(), 2);
    }

    #[test]
    fn both_algorithms_agree_on_random_graphs() {
        for seed in 0..20 {
            let g = RandomGraphBuilder::new(30, 30)
                .density(0.1)
                .scenario(GraphScenario::Uniform)
                .seed(seed)
                .build();
            let hk = hopcroft_karp(&g);
            let simple = simple_augmenting(&g);
            assert!(hk.is_valid_for(&g));
            assert!(simple.is_valid_for(&g));
            assert_eq!(hk.size(), simple.size(), "seed {seed}");
        }
    }

    #[test]
    fn matching_insert_rejects_conflicts() {
        let mut m = Matching::empty(2, 2);
        m.insert(0, 0);
        let result = std::panic::catch_unwind(move || {
            m.insert(0, 1);
        });
        assert!(result.is_err());
    }

    #[test]
    fn matching_validity_detects_foreign_edges() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0)]);
        let mut m = Matching::empty(2, 2);
        m.insert(1, 1); // not an edge of g
        assert!(!m.is_valid_for(&g));
    }

    proptest! {
        #[test]
        fn prop_hopcroft_karp_is_valid_matching(
            n_left in 1usize..40,
            n_right in 1usize..40,
            density in 0.0f64..1.0,
            seed in 0u64..1000,
        ) {
            let g = RandomGraphBuilder::new(n_left, n_right)
                .density(density)
                .seed(seed)
                .build();
            let m = hopcroft_karp(&g);
            prop_assert!(m.is_valid_for(&g));
            // Matching size can never exceed either side.
            prop_assert!(m.size() <= n_left.min(n_right));
        }

        #[test]
        fn prop_matching_sizes_agree(
            n in 1usize..25,
            density in 0.0f64..1.0,
            seed in 0u64..500,
        ) {
            let g = RandomGraphBuilder::new(n, n).density(density).seed(seed).build();
            prop_assert_eq!(hopcroft_karp(&g).size(), simple_augmenting(&g).size());
        }

        #[test]
        fn prop_matching_maximality_no_free_edge(
            n in 1usize..25,
            density in 0.0f64..1.0,
            seed in 0u64..500,
        ) {
            // A maximum matching is in particular maximal: there is no edge with
            // both endpoints unmatched.
            let g = RandomGraphBuilder::new(n, n).density(density).seed(seed).build();
            let m = hopcroft_karp(&g);
            for (l, r) in g.edges() {
                prop_assert!(m.is_left_matched(l) || m.is_right_matched(r));
            }
        }
    }
}
