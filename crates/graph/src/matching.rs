//! Maximum bipartite matching.
//!
//! The paper's offline algorithm (Algorithm 1) starts from a maximum matching
//! of the thread–object bipartite graph.  We provide two batch algorithms
//! (plus the incremental maintenance in [`crate::incremental`], which reuses
//! the augmenting-path machinery defined here):
//!
//! * [`hopcroft_karp`] — the Hopcroft–Karp algorithm referenced by the paper
//!   (`O(E √V)`).  Each BFS phase records the level `dist_nil` at which a
//!   free right vertex is first reached and stops expanding beyond it, and
//!   the DFS phase accepts a free right vertex only at exactly that level, so
//!   every phase augments along a *maximal set of shortest vertex-disjoint
//!   augmenting paths* — the property the `O(√V)` phase bound depends on
//!   ([`hopcroft_karp_with_phases`] exposes the phase count so tests can hold
//!   the implementation to it).
//! * [`simple_augmenting`] — the classic single-augmenting-path (Hungarian
//!   style) algorithm in `O(V · E)`, kept as an independently implemented
//!   baseline; the test-suite cross-checks that both report the same matching
//!   size on random graphs.
//!
//! All augmenting-path searches use explicit stacks rather than recursion:
//! an adversarial alternating chain (e.g. a 2×n ladder with n in the tens of
//! thousands) would otherwise overflow the call stack.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::bipartite::BipartiteGraph;

/// Sentinel meaning "unmatched" in the internal pair arrays.
pub(crate) const NIL: usize = usize::MAX;

/// A matching in a bipartite graph: a set of edges no two of which share an
/// endpoint.
///
/// Stored as two partner arrays, `pair_left[l] == Some(r)` iff edge `(l, r)`
/// is in the matching (and then `pair_right[r] == Some(l)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matching {
    pair_left: Vec<Option<usize>>,
    pair_right: Vec<Option<usize>>,
}

impl Matching {
    /// Creates an empty matching for a graph with the given side sizes.
    pub fn empty(n_left: usize, n_right: usize) -> Self {
        Self {
            pair_left: vec![None; n_left],
            pair_right: vec![None; n_right],
        }
    }

    /// Number of matched edges.
    pub fn size(&self) -> usize {
        self.pair_left.iter().filter(|p| p.is_some()).count()
    }

    /// The right partner matched with left vertex `l`, if any.
    pub fn partner_of_left(&self, l: usize) -> Option<usize> {
        self.pair_left.get(l).copied().flatten()
    }

    /// The left partner matched with right vertex `r`, if any.
    pub fn partner_of_right(&self, r: usize) -> Option<usize> {
        self.pair_right.get(r).copied().flatten()
    }

    /// Returns `true` if left vertex `l` is matched.
    pub fn is_left_matched(&self, l: usize) -> bool {
        self.partner_of_left(l).is_some()
    }

    /// Returns `true` if right vertex `r` is matched.
    pub fn is_right_matched(&self, r: usize) -> bool {
        self.partner_of_right(r).is_some()
    }

    /// Returns `true` if the edge `(l, r)` is in the matching.
    pub fn contains_edge(&self, l: usize, r: usize) -> bool {
        self.partner_of_left(l) == Some(r)
    }

    /// Iterator over matched edges as `(left, right)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pair_left
            .iter()
            .enumerate()
            .filter_map(|(l, r)| r.map(|r| (l, r)))
    }

    /// Adds the edge `(l, r)` to the matching.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is already matched to a *different* vertex —
    /// that would violate the matching property.
    pub fn insert(&mut self, l: usize, r: usize) {
        if let Some(existing) = self.pair_left[l] {
            assert_eq!(existing, r, "left vertex {l} already matched to {existing}");
        }
        if let Some(existing) = self.pair_right[r] {
            assert_eq!(
                existing, l,
                "right vertex {r} already matched to {existing}"
            );
        }
        self.pair_left[l] = Some(r);
        self.pair_right[r] = Some(l);
    }

    /// Validates the matching against a graph: every matched edge must exist
    /// in the graph and partner arrays must be mutually consistent.
    pub fn is_valid_for(&self, graph: &BipartiteGraph) -> bool {
        if self.pair_left.len() != graph.n_left() || self.pair_right.len() != graph.n_right() {
            return false;
        }
        for (l, r) in self.edges() {
            if !graph.has_edge(l, r) {
                return false;
            }
            if self.pair_right[r] != Some(l) {
                return false;
            }
        }
        for (r, l) in self.pair_right.iter().enumerate() {
            if let Some(l) = l {
                if self.pair_left[*l] != Some(r) {
                    return false;
                }
            }
        }
        true
    }
}

/// Computes a maximum matching using the Hopcroft–Karp algorithm.
///
/// Each phase runs a BFS from all unmatched left vertices to build a layered
/// graph of shortest alternating paths, then a DFS that augments along a
/// maximal set of vertex-disjoint shortest augmenting paths.  The number of
/// phases is `O(√V)`, giving the `O(E √V)` bound cited in the paper
/// (Hopcroft & Karp, 1973).
///
/// ```
/// use mvc_graph::{BipartiteGraph, matching::hopcroft_karp};
/// let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (2, 2)]);
/// assert_eq!(hopcroft_karp(&g).size(), 3);
/// ```
pub fn hopcroft_karp(graph: &BipartiteGraph) -> Matching {
    hopcroft_karp_with_phases(graph).0
}

/// Like [`hopcroft_karp`], additionally reporting the number of BFS/DFS
/// phases the algorithm ran.
///
/// The phase count is the quantity the `O(E √V)` bound is about: it can only
/// stay `O(√V)` when every phase augments exclusively along *shortest*
/// augmenting paths, so the regression tests assert the count on adversarial
/// graphs.
pub fn hopcroft_karp_with_phases(graph: &BipartiteGraph) -> (Matching, usize) {
    let n_left = graph.n_left();
    let n_right = graph.n_right();
    // pair arrays use NIL for unmatched to keep the hot loops index-based.
    let mut pair_left = vec![NIL; n_left];
    let mut pair_right = vec![NIL; n_right];
    let mut dist = vec![u64::MAX; n_left];
    let mut queue = VecDeque::new();
    let mut stack = Vec::new();
    let mut phases = 0usize;

    loop {
        let dist_nil = hk_bfs(graph, &pair_left, &pair_right, &mut dist, &mut queue);
        if dist_nil == u64::MAX {
            break;
        }
        phases += 1;
        let mut augmented = false;
        for l in 0..n_left {
            if pair_left[l] == NIL
                && hk_dfs(
                    graph,
                    l,
                    &mut pair_left,
                    &mut pair_right,
                    &mut dist,
                    dist_nil,
                    &mut stack,
                )
            {
                augmented = true;
            }
        }
        debug_assert!(augmented, "BFS promised an augmenting path");
        if !augmented {
            break;
        }
    }

    let mut matching = Matching::empty(n_left, n_right);
    for (l, &r) in pair_left.iter().enumerate() {
        if r != NIL {
            matching.insert(l, r);
        }
    }
    (matching, phases)
}

/// BFS phase: computes shortest alternating-path distances from unmatched
/// left vertices.  Returns `dist_nil`, the level at which a free right vertex
/// is first reached (`u64::MAX` when no augmenting path exists).  Left
/// vertices at `dist_nil` or beyond are not expanded: paths through them
/// cannot be shortest, and the DFS phase must not use them.
fn hk_bfs(
    graph: &BipartiteGraph,
    pair_left: &[usize],
    pair_right: &[usize],
    dist: &mut [u64],
    queue: &mut VecDeque<usize>,
) -> u64 {
    queue.clear();
    for l in 0..graph.n_left() {
        if pair_left[l] == NIL {
            dist[l] = 0;
            queue.push_back(l);
        } else {
            dist[l] = u64::MAX;
        }
    }
    let mut dist_nil = u64::MAX;
    while let Some(l) = queue.pop_front() {
        if dist[l] >= dist_nil {
            // A free right vertex was already found at an earlier level:
            // everything from here on is a non-shortest path.
            continue;
        }
        for &r in graph.neighbors_of_left(l) {
            let next = pair_right[r];
            if next == NIL {
                // First free right vertex: record the shortest augmenting
                // path length; later levels must not extend past it.
                if dist_nil == u64::MAX {
                    dist_nil = dist[l] + 1;
                }
            } else if dist[next] == u64::MAX {
                dist[next] = dist[l] + 1;
                queue.push_back(next);
            }
        }
    }
    dist_nil
}

/// One frame of an explicit-stack augmenting-path search: a left vertex and
/// the index of the next neighbour to try.  `next - 1` is the edge through
/// which the search descended (or succeeded), which is exactly the edge to
/// flip when an augmenting path is found.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SearchFrame {
    vertex: usize,
    next: usize,
}

/// DFS phase: finds an augmenting path starting at unmatched left vertex `l`
/// that respects the BFS layering and ends at a free right vertex at exactly
/// level `dist_nil`, flipping matched edges along it.
///
/// Uses an explicit stack: shortest augmenting paths are bounded by the BFS
/// layering, but a single phase on a long alternating chain can still reach
/// depths that overflow the call stack.
fn hk_dfs(
    graph: &BipartiteGraph,
    l: usize,
    pair_left: &mut [usize],
    pair_right: &mut [usize],
    dist: &mut [u64],
    dist_nil: u64,
    stack: &mut Vec<SearchFrame>,
) -> bool {
    stack.clear();
    stack.push(SearchFrame { vertex: l, next: 0 });
    while let Some(top) = stack.last_mut() {
        let l = top.vertex;
        let Some(&r) = graph.neighbors_of_left(l).get(top.next) else {
            // Every neighbour failed: this left vertex is off all shortest
            // augmenting paths for the rest of the phase.
            dist[l] = u64::MAX;
            stack.pop();
            continue;
        };
        top.next += 1;
        let next = pair_right[r];
        if next == NIL {
            // Accept a free right vertex only at exactly the first free
            // level; deeper free vertices would augment a non-shortest path
            // and void the phase bound.
            if dist[l].saturating_add(1) == dist_nil {
                flip_stack(graph, stack, pair_left, pair_right);
                return true;
            }
        } else if dist[next] == dist[l].saturating_add(1) {
            stack.push(SearchFrame {
                vertex: next,
                next: 0,
            });
        }
    }
    false
}

/// Augments along the path recorded by a successful search: each frame's
/// last-tried neighbour is the right vertex its left vertex ends up matched
/// with.
fn flip_stack(
    graph: &BipartiteGraph,
    stack: &[SearchFrame],
    pair_left: &mut [usize],
    pair_right: &mut [usize],
) {
    for frame in stack {
        let r = graph.neighbors_of_left(frame.vertex)[frame.next - 1];
        pair_left[frame.vertex] = r;
        pair_right[r] = frame.vertex;
    }
}

/// Reusable scratch space for single augmenting-path searches, shared by
/// [`simple_augmenting`] and the incremental matching in
/// [`crate::incremental`].
///
/// Visited marks are epoch-stamped so clearing between searches is `O(1)`,
/// and the explicit stack is reused across searches so a search allocates
/// nothing once the buffers have grown to the graph size.
#[derive(Debug, Clone, Default)]
pub(crate) struct AugmentScratch {
    visited: Vec<u32>,
    epoch: u32,
    stack: Vec<SearchFrame>,
}

impl AugmentScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Starts a fresh search wave over `n` markable vertices: all visited
    /// marks are invalidated in `O(1)` (amortised).
    pub(crate) fn begin(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, self.epoch);
        }
        if self.epoch == u32::MAX {
            self.visited.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    fn mark(&mut self, v: usize) -> bool {
        if self.visited[v] == self.epoch {
            false
        } else {
            self.visited[v] = self.epoch;
            true
        }
    }

    /// Tries to find an augmenting path starting at the free left vertex
    /// `root`, flipping matched edges along it.  Right vertices visited in
    /// the current wave (since [`begin`](Self::begin)) are skipped: a failed
    /// search proves its alternating tree cannot lie on any augmenting path
    /// for the current matching, so later roots in the same wave may share
    /// the marks.
    pub(crate) fn augment_from_left(
        &mut self,
        graph: &BipartiteGraph,
        root: usize,
        pair_left: &mut [usize],
        pair_right: &mut [usize],
    ) -> bool {
        debug_assert_eq!(pair_left[root], NIL, "root must be free");
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        stack.push(SearchFrame {
            vertex: root,
            next: 0,
        });
        let mut found = false;
        while let Some(top) = stack.last_mut() {
            let l = top.vertex;
            let Some(&r) = graph.neighbors_of_left(l).get(top.next) else {
                stack.pop();
                continue;
            };
            top.next += 1;
            if !self.mark(r) {
                continue;
            }
            if pair_right[r] == NIL {
                flip_stack(graph, &stack, pair_left, pair_right);
                found = true;
                break;
            }
            stack.push(SearchFrame {
                vertex: pair_right[r],
                next: 0,
            });
        }
        self.stack = stack;
        found
    }

    /// Mirror image of [`augment_from_left`](Self::augment_from_left): walks
    /// from the free *right* vertex `root` towards a free left vertex,
    /// marking left vertices.  Needed by the incremental matching when the
    /// newly inserted edge's right endpoint is the only free endpoint.
    pub(crate) fn augment_from_right(
        &mut self,
        graph: &BipartiteGraph,
        root: usize,
        pair_left: &mut [usize],
        pair_right: &mut [usize],
    ) -> bool {
        debug_assert_eq!(pair_right[root], NIL, "root must be free");
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        stack.push(SearchFrame {
            vertex: root,
            next: 0,
        });
        let mut found = false;
        while let Some(top) = stack.last_mut() {
            let r = top.vertex;
            let Some(&l) = graph.neighbors_of_right(r).get(top.next) else {
                stack.pop();
                continue;
            };
            top.next += 1;
            if !self.mark(l) {
                continue;
            }
            if pair_left[l] == NIL {
                for frame in &stack {
                    let l = graph.neighbors_of_right(frame.vertex)[frame.next - 1];
                    pair_right[frame.vertex] = l;
                    pair_left[l] = frame.vertex;
                }
                found = true;
                break;
            }
            stack.push(SearchFrame {
                vertex: pair_left[l],
                next: 0,
            });
        }
        self.stack = stack;
        found
    }
}

/// Computes a maximum matching using the simple augmenting-path algorithm
/// (one explicit-stack DFS per left vertex, `O(V · E)`).
///
/// Kept as an independent implementation to cross-check [`hopcroft_karp`] and
/// as a baseline in the matching benchmarks.
pub fn simple_augmenting(graph: &BipartiteGraph) -> Matching {
    let n_left = graph.n_left();
    let n_right = graph.n_right();
    let mut pair_left = vec![NIL; n_left];
    let mut pair_right = vec![NIL; n_right];
    let mut scratch = AugmentScratch::new();

    for l in 0..n_left {
        scratch.begin(n_right);
        scratch.augment_from_left(graph, l, &mut pair_left, &mut pair_right);
    }

    let mut matching = Matching::empty(n_left, n_right);
    for (r, &l) in pair_right.iter().enumerate() {
        if l != NIL {
            matching.insert(l, r);
        }
    }
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{GraphScenario, RandomGraphBuilder};
    use proptest::prelude::*;

    fn perfect_matchable() -> BipartiteGraph {
        // A 4x4 graph with a perfect matching.
        BipartiteGraph::from_edges(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 1),
                (1, 2),
                (2, 2),
                (2, 3),
                (3, 3),
                (3, 0),
            ],
        )
    }

    #[test]
    fn empty_graph_has_empty_matching() {
        let g = BipartiteGraph::new(5, 5);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 0);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn single_edge() {
        let g = BipartiteGraph::from_edges(1, 1, &[(0, 0)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 1);
        assert!(m.contains_edge(0, 0));
        assert!(m.is_left_matched(0));
        assert!(m.is_right_matched(0));
    }

    #[test]
    fn perfect_matching_found() {
        let g = perfect_matchable();
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 4);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn star_graph_matching_is_one() {
        // One thread touching every object: max matching is 1.
        let mut g = BipartiteGraph::new(1, 10);
        for r in 0..10 {
            g.add_edge(0, r);
        }
        assert_eq!(hopcroft_karp(&g).size(), 1);
        assert_eq!(simple_augmenting(&g).size(), 1);
    }

    #[test]
    fn complete_bipartite_matching_is_min_side() {
        let mut g = BipartiteGraph::new(3, 7);
        for l in 0..3 {
            for r in 0..7 {
                g.add_edge(l, r);
            }
        }
        assert_eq!(hopcroft_karp(&g).size(), 3);
    }

    #[test]
    fn paper_figure2_graph() {
        // Thread-object graph of the paper's Fig. 1/2 computation:
        // T1 uses O2; T2 uses O1, O2, O3, O4; T3 uses O3; T4 uses O3.
        let g = BipartiteGraph::from_edges(
            4,
            4,
            &[(0, 1), (1, 0), (1, 1), (1, 2), (1, 3), (2, 2), (3, 2)],
        );
        let m = hopcroft_karp(&g);
        // Matching size 3 => minimum vertex cover of size 3 (T2, O2, O3).
        assert_eq!(m.size(), 3);
    }

    #[test]
    fn augmenting_path_needed() {
        // Greedy matching in edge order would get stuck without augmentation:
        // 0-0, then 1 can only take 0. Augmenting flips 0 to 1.
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        assert_eq!(hopcroft_karp(&g).size(), 2);
        assert_eq!(simple_augmenting(&g).size(), 2);
    }

    #[test]
    fn both_algorithms_agree_on_random_graphs() {
        for seed in 0..20 {
            let g = RandomGraphBuilder::new(30, 30)
                .density(0.1)
                .scenario(GraphScenario::Uniform)
                .seed(seed)
                .build();
            let hk = hopcroft_karp(&g);
            let simple = simple_augmenting(&g);
            assert!(hk.is_valid_for(&g));
            assert!(simple.is_valid_for(&g));
            assert_eq!(hk.size(), simple.size(), "seed {seed}");
        }
    }

    /// A long alternating chain: lefts `0..n` with edges `(i, i)` and
    /// `(i, i+1)`, plus one extra left `n` whose only edge points back at
    /// right `0`.  Greedy phase 1 matches `(i, i)`, so the final left can
    /// only augment along the full chain `n → 0 → 1 → … → n` — an
    /// augmenting path of ~`n` edges.
    fn alternating_chain(n: usize) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(n + 1, n + 1);
        for i in 0..n {
            g.add_edge(i, i);
            g.add_edge(i, i + 1);
        }
        g.add_edge(n, 0);
        g
    }

    #[test]
    fn long_alternating_chain_does_not_overflow_the_stack() {
        // Regression: the recursive hk_dfs / try_augment overflowed the call
        // stack on alternating chains of this length (one frame per vertex
        // along a ~50k-edge augmenting path).
        let n = 50_000;
        let g = alternating_chain(n);
        let (hk, phases) = hopcroft_karp_with_phases(&g);
        assert_eq!(hk.size(), n + 1, "the chain has a perfect matching");
        assert!(hk.is_valid_for(&g));
        assert_eq!(phases, 2, "greedy phase + one chain-long augmentation");
        let simple = simple_augmenting(&g);
        assert_eq!(simple.size(), n + 1);
        assert!(simple.is_valid_for(&g));
    }

    /// Upper bound on Hopcroft–Karp phases when every phase augments along
    /// shortest paths only: `2·⌈√m⌉ + 2` for matching size `m` (after `√m`
    /// phases the shortest augmenting path exceeds `√m`, leaving at most
    /// `√m` further augmentations, one phase each).
    fn phase_bound(matching_size: usize) -> usize {
        2 * (matching_size as f64).sqrt().ceil() as usize + 2
    }

    #[test]
    fn phase_count_stays_within_the_sqrt_bound() {
        // Regression for the hk_bfs bug that never recorded the level at
        // which a free right vertex was first found: the DFS could then
        // augment along non-shortest paths, voiding the O(√V) phase bound.
        // Random sparse graphs are adversarial enough to catch it — seeds
        // exist where the unfixed algorithm exceeds this bound.
        for seed in 0..40 {
            let g = RandomGraphBuilder::new(120, 120)
                .density(0.02)
                .scenario(GraphScenario::Uniform)
                .seed(seed)
                .build();
            let (m, phases) = hopcroft_karp_with_phases(&g);
            assert_eq!(m.size(), simple_augmenting(&g).size(), "seed {seed}");
            assert!(
                phases <= phase_bound(m.size()),
                "seed {seed}: {phases} phases for matching size {} exceeds the \
                 shortest-path bound {}",
                m.size(),
                phase_bound(m.size())
            );
        }
        for seed in 0..10 {
            let g = RandomGraphBuilder::new(150, 150)
                .density(0.05)
                .scenario(GraphScenario::default_nonuniform())
                .seed(seed)
                .build();
            let (m, phases) = hopcroft_karp_with_phases(&g);
            assert!(phases <= phase_bound(m.size()), "nonuniform seed {seed}");
        }
    }

    #[test]
    fn phase_count_on_adversarial_widget_is_exactly_two() {
        // Regression for the hk_bfs/hk_dfs shortest-path bug.  The widget is
        // built so that in phase 2 the DFS from thread A explores the branch
        // A→Y2→c2→z2→c3 first and finds the free object Z at level 3, while
        // the shortest augmenting paths (A→Y1→c1→X and B→W→c4→Z) have level
        // 2.  The unfixed DFS accepted Z at level 3, which stole Z from B's
        // shortest path and forced a third phase; the fixed algorithm rejects
        // the deep free vertex and finishes in exactly two phases.
        //
        // Lefts: c1=0, c2=1, c3=2, c4=3, A=4, B=5.
        // Rights: Y1=0, Y2=1, z2=2, W=3, X=4, Z=5.
        #[rustfmt::skip]
        let g = BipartiteGraph::from_edges(
            6,
            6,
            &[
                (0, 0), (0, 4), // c1: Y1, X
                (1, 1), (1, 2), // c2: Y2, z2
                (2, 2), (2, 5), // c3: z2, Z
                (3, 3), (3, 5), // c4: W, Z
                (4, 1), (4, 0), // A: Y2 (the trap branch first), Y1
                (5, 3),         // B: W
            ],
        );
        let (m, phases) = hopcroft_karp_with_phases(&g);
        assert_eq!(m.size(), 6, "the widget has a perfect matching");
        assert_eq!(
            phases, 2,
            "augmenting along non-shortest paths costs an extra phase here"
        );
    }

    #[test]
    fn phase_count_on_trivial_graphs() {
        let empty = BipartiteGraph::new(4, 4);
        assert_eq!(hopcroft_karp_with_phases(&empty).1, 0);
        let single = BipartiteGraph::from_edges(1, 1, &[(0, 0)]);
        assert_eq!(hopcroft_karp_with_phases(&single).1, 1);
    }

    #[test]
    fn matching_insert_rejects_conflicts() {
        let mut m = Matching::empty(2, 2);
        m.insert(0, 0);
        let result = std::panic::catch_unwind(move || {
            m.insert(0, 1);
        });
        assert!(result.is_err());
    }

    #[test]
    fn matching_validity_detects_foreign_edges() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0)]);
        let mut m = Matching::empty(2, 2);
        m.insert(1, 1); // not an edge of g
        assert!(!m.is_valid_for(&g));
    }

    proptest! {
        #[test]
        fn prop_hopcroft_karp_is_valid_matching(
            n_left in 1usize..40,
            n_right in 1usize..40,
            density in 0.0f64..1.0,
            seed in 0u64..1000,
        ) {
            let g = RandomGraphBuilder::new(n_left, n_right)
                .density(density)
                .seed(seed)
                .build();
            let m = hopcroft_karp(&g);
            prop_assert!(m.is_valid_for(&g));
            // Matching size can never exceed either side.
            prop_assert!(m.size() <= n_left.min(n_right));
        }

        #[test]
        fn prop_matching_sizes_agree(
            n in 1usize..25,
            density in 0.0f64..1.0,
            seed in 0u64..500,
        ) {
            let g = RandomGraphBuilder::new(n, n).density(density).seed(seed).build();
            prop_assert_eq!(hopcroft_karp(&g).size(), simple_augmenting(&g).size());
        }

        #[test]
        fn prop_matching_maximality_no_free_edge(
            n in 1usize..25,
            density in 0.0f64..1.0,
            seed in 0u64..500,
        ) {
            // A maximum matching is in particular maximal: there is no edge with
            // both endpoints unmatched.
            let g = RandomGraphBuilder::new(n, n).density(density).seed(seed).build();
            let m = hopcroft_karp(&g);
            for (l, r) in g.edges() {
                prop_assert!(m.is_left_matched(l) || m.is_right_matched(r));
            }
        }
    }
}
