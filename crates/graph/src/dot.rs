//! Graphviz DOT export of thread–object bipartite graphs.
//!
//! Useful for debugging and for regenerating diagrams in the style of the
//! paper's Figure 2 (the bipartite graph with its minimum vertex cover
//! highlighted).

use std::fmt::Write as _;

use crate::bipartite::BipartiteGraph;
use crate::cover::VertexCover;

/// Renders the graph as a Graphviz DOT document.
///
/// Threads are drawn as boxes on the left rank, objects as ellipses on the
/// right rank. If `cover` is provided, vertices in the cover are filled —
/// mirroring the paper's Figure 2 where "filled vertices represent the
/// minimum vertex cover".
pub fn to_dot(graph: &BipartiteGraph, cover: Option<&VertexCover>) -> String {
    let mut out = String::new();
    // Writing to a String never fails, so the unwraps below are safe.
    writeln!(out, "graph thread_object {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    writeln!(out, "  subgraph cluster_threads {{ label=\"threads\";").unwrap();
    for l in 0..graph.n_left() {
        let filled = cover.is_some_and(|c| c.contains_left(l));
        let style = if filled {
            ",style=filled,fillcolor=gray"
        } else {
            ""
        };
        writeln!(out, "    t{l} [label=\"T{l}\",shape=box{style}];").unwrap();
    }
    writeln!(out, "  }}").unwrap();
    writeln!(out, "  subgraph cluster_objects {{ label=\"objects\";").unwrap();
    for r in 0..graph.n_right() {
        let filled = cover.is_some_and(|c| c.contains_right(r));
        let style = if filled {
            ",style=filled,fillcolor=gray"
        } else {
            ""
        };
        writeln!(out, "    o{r} [label=\"O{r}\",shape=ellipse{style}];").unwrap();
    }
    writeln!(out, "  }}").unwrap();
    for (l, r) in graph.edges() {
        writeln!(out, "  t{l} -- o{r};").unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::minimum_vertex_cover_of;

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]);
        let dot = to_dot(&g, None);
        assert!(dot.contains("t0 [label=\"T0\""));
        assert!(dot.contains("o1 [label=\"O1\""));
        assert!(dot.contains("t0 -- o0;"));
        assert!(dot.contains("t1 -- o1;"));
        assert!(dot.starts_with("graph thread_object {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn cover_members_are_filled() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0)]);
        let cover = minimum_vertex_cover_of(&g);
        let dot = to_dot(&g, Some(&cover));
        // The unique minimum cover is {O0}; it must be drawn filled.
        assert!(dot.contains("o0 [label=\"O0\",shape=ellipse,style=filled"));
        assert!(!dot.contains("t0 [label=\"T0\",shape=box,style=filled"));
    }
}
