//! Bipartite graph substrate for the mixed-vector-clock algorithms.
//!
//! A computation of threads operating on shared objects induces a
//! *thread–object bipartite graph*: left vertices are threads, right vertices
//! are objects, and an edge `(t, o)` exists iff thread `t` performed at least
//! one operation on object `o`.  The paper's central observation is that any
//! set of mixed-vector-clock components must be a *vertex cover* of this
//! graph, and that a *minimum* vertex cover — computable in polynomial time
//! via the Kőnig–Egerváry theorem — yields the optimal (smallest) valid mixed
//! vector clock.
//!
//! This crate provides:
//!
//! * [`BipartiteGraph`] — a compact adjacency-list bipartite graph with
//!   incremental edge insertion (used both offline and online).
//! * [`matching`] — maximum bipartite matching: the Hopcroft–Karp algorithm
//!   (`O(E √V)`) and a simple augmenting-path baseline (`O(V·E)`).
//! * [`incremental`] — maintenance of a maximum matching and the offline
//!   optimum under single edge insertions (one augmenting-path attempt per
//!   edge, `O(1)` cover size between insertions) — the engine behind the
//!   competitive-trajectory experiments.
//! * [`cover`] — minimum vertex cover via the constructive Kőnig–Egerváry
//!   proof, plus a greedy 2-approximation baseline.
//! * [`generate`] — random graph generators for the paper's *Uniform* and
//!   *Nonuniform* evaluation scenarios.
//! * [`stats`] — density, degree and popularity statistics (popularity drives
//!   the online *Popularity* mechanism).
//! * [`dot`] — Graphviz DOT export for visualisation and debugging.
//!
//! # Example
//!
//! ```
//! use mvc_graph::{BipartiteGraph, matching::hopcroft_karp, cover::minimum_vertex_cover};
//!
//! // The thread–object graph of the paper's Figure 1 computation.
//! let mut g = BipartiteGraph::new(4, 4);
//! for &(t, o) in &[(0, 1), (1, 0), (1, 1), (1, 2), (1, 3), (2, 2), (3, 2), (2, 1)] {
//!     g.add_edge(t, o);
//! }
//! let matching = hopcroft_karp(&g);
//! let cover = minimum_vertex_cover(&g, &matching);
//! assert_eq!(cover.size(), matching.size());
//! assert!(cover.covers_all_edges(&g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod cover;
pub mod dot;
pub mod generate;
pub mod incremental;
pub mod matching;
pub mod stats;

pub use bipartite::{BipartiteGraph, EdgeIter, LeftVertex, RightVertex, Vertex};
pub use cover::{minimum_vertex_cover, VertexCover};
pub use generate::{GraphScenario, RandomGraphBuilder};
pub use incremental::{IncrementalMatching, IncrementalOptimum};
pub use matching::{hopcroft_karp, hopcroft_karp_with_phases, Matching};
pub use stats::GraphStats;
