//! The [`BipartiteGraph`] data structure.
//!
//! Left vertices model threads and right vertices model objects, but the type
//! is agnostic to that interpretation: it is a plain undirected bipartite
//! graph with O(1) amortised incremental edge insertion and O(1) edge-presence
//! queries, which is exactly what both the offline optimizer (build once,
//! solve once) and the online mechanisms (edges revealed one at a time) need.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A vertex on the left side of a bipartite graph (a *thread* in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LeftVertex(pub usize);

/// A vertex on the right side of a bipartite graph (an *object* in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RightVertex(pub usize);

/// Either side of the bipartition.
///
/// A [`crate::cover::VertexCover`] is a set of `Vertex` values; when the graph
/// is a thread–object graph, `Left` members are threads chosen as clock
/// components and `Right` members are objects chosen as clock components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Vertex {
    /// A left-side vertex (thread).
    Left(usize),
    /// A right-side vertex (object).
    Right(usize),
}

impl Vertex {
    /// Returns the raw index of the vertex within its own side.
    pub fn index(&self) -> usize {
        match *self {
            Vertex::Left(i) | Vertex::Right(i) => i,
        }
    }

    /// Returns `true` if this is a left-side (thread) vertex.
    pub fn is_left(&self) -> bool {
        matches!(self, Vertex::Left(_))
    }

    /// Returns `true` if this is a right-side (object) vertex.
    pub fn is_right(&self) -> bool {
        matches!(self, Vertex::Right(_))
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vertex::Left(i) => write!(f, "T{i}"),
            Vertex::Right(i) => write!(f, "O{i}"),
        }
    }
}

impl From<LeftVertex> for Vertex {
    fn from(v: LeftVertex) -> Self {
        Vertex::Left(v.0)
    }
}

impl From<RightVertex> for Vertex {
    fn from(v: RightVertex) -> Self {
        Vertex::Right(v.0)
    }
}

/// An undirected bipartite graph with `n_left` left vertices and `n_right`
/// right vertices.
///
/// Edges are stored as adjacency lists on both sides plus a hash set for O(1)
/// membership tests, so that repeatedly "revealing" the same thread–object
/// pair (as happens in an online computation where a thread touches the same
/// object many times) does not create parallel edges.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BipartiteGraph {
    n_left: usize,
    n_right: usize,
    adj_left: Vec<Vec<usize>>,
    adj_right: Vec<Vec<usize>>,
    edge_set: HashSet<(usize, usize)>,
    // Maintained incrementally so per-event consumers (the Adaptive online
    // mechanism, the incremental matcher's augmentation guard) get O(1)
    // active-vertex counts instead of O(V) scans.
    active_left_count: usize,
    active_right_count: usize,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph with `n_left` left vertices and
    /// `n_right` right vertices and no edges.
    ///
    /// ```
    /// use mvc_graph::BipartiteGraph;
    /// let g = BipartiteGraph::new(3, 5);
    /// assert_eq!(g.n_left(), 3);
    /// assert_eq!(g.n_right(), 5);
    /// assert_eq!(g.edge_count(), 0);
    /// ```
    pub fn new(n_left: usize, n_right: usize) -> Self {
        Self {
            n_left,
            n_right,
            adj_left: vec![Vec::new(); n_left],
            adj_right: vec![Vec::new(); n_right],
            edge_set: HashSet::new(),
            active_left_count: 0,
            active_right_count: 0,
        }
    }

    /// Creates a graph from an explicit edge list.
    ///
    /// Vertex counts are given explicitly so that isolated vertices at the
    /// high end of either side are representable. Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any edge references a vertex out of range.
    pub fn from_edges(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n_left, n_right);
        for &(l, r) in edges {
            g.add_edge(l, r);
        }
        g
    }

    /// Number of left-side vertices (threads).
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right-side vertices (objects).
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Total number of vertices on both sides.
    pub fn n_vertices(&self) -> usize {
        self.n_left + self.n_right
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edge_set.len()
    }

    /// Returns `true` if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edge_set.is_empty()
    }

    /// Grows the left side to at least `n` vertices (no-op if already larger).
    pub fn ensure_left(&mut self, n: usize) {
        if n > self.n_left {
            self.adj_left.resize_with(n, Vec::new);
            self.n_left = n;
        }
    }

    /// Grows the right side to at least `n` vertices (no-op if already larger).
    pub fn ensure_right(&mut self, n: usize) {
        if n > self.n_right {
            self.adj_right.resize_with(n, Vec::new);
            self.n_right = n;
        }
    }

    /// Adds the edge `(left, right)`, returning `true` if the edge was not
    /// already present.
    ///
    /// This is the operation an online computation performs when an event
    /// `(thread, object)` is revealed for a pair that may or may not have
    /// interacted before.
    ///
    /// # Panics
    ///
    /// Panics if `left >= n_left()` or `right >= n_right()`. Use
    /// [`ensure_left`](Self::ensure_left) / [`ensure_right`](Self::ensure_right)
    /// or [`add_edge_growing`](Self::add_edge_growing) for dynamically sized
    /// graphs.
    pub fn add_edge(&mut self, left: usize, right: usize) -> bool {
        assert!(
            left < self.n_left,
            "left vertex {left} out of range (n_left = {})",
            self.n_left
        );
        assert!(
            right < self.n_right,
            "right vertex {right} out of range (n_right = {})",
            self.n_right
        );
        if self.edge_set.insert((left, right)) {
            if self.adj_left[left].is_empty() {
                self.active_left_count += 1;
            }
            if self.adj_right[right].is_empty() {
                self.active_right_count += 1;
            }
            self.adj_left[left].push(right);
            self.adj_right[right].push(left);
            true
        } else {
            false
        }
    }

    /// Adds the edge `(left, right)`, growing either side as needed.
    ///
    /// Returns `true` if the edge is new.
    pub fn add_edge_growing(&mut self, left: usize, right: usize) -> bool {
        self.ensure_left(left + 1);
        self.ensure_right(right + 1);
        self.add_edge(left, right)
    }

    /// Returns `true` if the edge `(left, right)` is present.
    pub fn has_edge(&self, left: usize, right: usize) -> bool {
        self.edge_set.contains(&(left, right))
    }

    /// Neighbours (right-side indices) of a left vertex.
    pub fn neighbors_of_left(&self, left: usize) -> &[usize] {
        &self.adj_left[left]
    }

    /// Neighbours (left-side indices) of a right vertex.
    pub fn neighbors_of_right(&self, right: usize) -> &[usize] {
        &self.adj_right[right]
    }

    /// Degree of a left vertex.
    pub fn degree_left(&self, left: usize) -> usize {
        self.adj_left[left].len()
    }

    /// Degree of a right vertex.
    pub fn degree_right(&self, right: usize) -> usize {
        self.adj_right[right].len()
    }

    /// Degree of an arbitrary vertex.
    pub fn degree(&self, v: Vertex) -> usize {
        match v {
            Vertex::Left(i) => self.degree_left(i),
            Vertex::Right(i) => self.degree_right(i),
        }
    }

    /// Iterator over all edges as `(left, right)` pairs.
    ///
    /// Edges are produced grouped by left vertex in insertion order, which
    /// makes the iteration deterministic (important for reproducible
    /// evaluation runs).
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            left: 0,
            pos: 0,
        }
    }

    /// Density of the graph: `|E| / (n_left * n_right)`.
    ///
    /// This matches the paper's notion of "graph density" used on the x-axis
    /// of Figures 4 and 6. Returns 0.0 for a graph with an empty side.
    pub fn density(&self) -> f64 {
        let cells = self.n_left * self.n_right;
        if cells == 0 {
            0.0
        } else {
            self.edge_count() as f64 / cells as f64
        }
    }

    /// Popularity of a vertex: `deg(v) / |E|` (Definition 1 in the paper).
    ///
    /// Returns 0.0 when the graph has no edges.
    pub fn popularity(&self, v: Vertex) -> f64 {
        let e = self.edge_count();
        if e == 0 {
            0.0
        } else {
            self.degree(v) as f64 / e as f64
        }
    }

    /// Left vertices with at least one incident edge.
    pub fn active_left(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n_left).filter(|&l| !self.adj_left[l].is_empty())
    }

    /// Right vertices with at least one incident edge.
    pub fn active_right(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n_right).filter(|&r| !self.adj_right[r].is_empty())
    }

    /// Number of left vertices with at least one incident edge, maintained
    /// incrementally (`O(1)`, unlike counting [`active_left`](Self::active_left)).
    pub fn active_left_count(&self) -> usize {
        self.active_left_count
    }

    /// Number of right vertices with at least one incident edge, maintained
    /// incrementally (`O(1)`, unlike counting [`active_right`](Self::active_right)).
    pub fn active_right_count(&self) -> usize {
        self.active_right_count
    }
}

/// Iterator over the edges of a [`BipartiteGraph`], created by
/// [`BipartiteGraph::edges`].
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    graph: &'a BipartiteGraph,
    left: usize,
    pos: usize,
}

impl<'a> Iterator for EdgeIter<'a> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<Self::Item> {
        while self.left < self.graph.n_left {
            if self.pos < self.graph.adj_left[self.left].len() {
                let r = self.graph.adj_left[self.left][self.pos];
                self.pos += 1;
                return Some((self.left, r));
            }
            self.left += 1;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(0, 0);
        assert_eq!(g.n_vertices(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.density(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = BipartiteGraph::new(3, 3);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(0, 1), "duplicate edge must be ignored");
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 1));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree_left(0), 1);
        assert_eq!(g.degree_right(2), 1);
        assert_eq!(g.degree(Vertex::Left(1)), 1);
        assert_eq!(g.degree(Vertex::Right(0)), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_left_panics() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_right_panics() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 5);
    }

    #[test]
    fn growing_insertion() {
        let mut g = BipartiteGraph::new(0, 0);
        assert!(g.add_edge_growing(2, 3));
        assert_eq!(g.n_left(), 3);
        assert_eq!(g.n_right(), 4);
        assert!(g.has_edge(2, 3));
        // Growing never shrinks.
        g.ensure_left(1);
        assert_eq!(g.n_left(), 3);
    }

    #[test]
    fn from_edges_matches_manual_insertion() {
        let edges = [(0, 0), (0, 1), (1, 1), (2, 0)];
        let g = BipartiteGraph::from_edges(3, 2, &edges);
        let mut h = BipartiteGraph::new(3, 2);
        for &(l, r) in &edges {
            h.add_edge(l, r);
        }
        assert_eq!(g, h);
    }

    #[test]
    fn density_and_popularity() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        assert!((g.density() - 0.75).abs() < 1e-12);
        assert!((g.popularity(Vertex::Left(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((g.popularity(Vertex::Right(1)) - 1.0 / 3.0).abs() < 1e-12);
        let empty = BipartiteGraph::new(2, 2);
        assert_eq!(empty.popularity(Vertex::Left(0)), 0.0);
    }

    #[test]
    fn edge_iterator_yields_all_edges() {
        let edges = [(0, 0), (0, 2), (1, 1), (2, 0)];
        let g = BipartiteGraph::from_edges(3, 3, &edges);
        let collected: Vec<_> = g.edges().collect();
        assert_eq!(collected.len(), 4);
        for e in &edges {
            assert!(collected.contains(e));
        }
    }

    #[test]
    fn active_vertices() {
        let g = BipartiteGraph::from_edges(4, 4, &[(1, 2)]);
        assert_eq!(g.active_left().collect::<Vec<_>>(), vec![1]);
        assert_eq!(g.active_right().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn active_counts_track_the_iterators() {
        let mut g = BipartiteGraph::new(0, 0);
        assert_eq!(g.active_left_count(), 0);
        assert_eq!(g.active_right_count(), 0);
        for (l, r) in [(0, 0), (0, 1), (2, 1), (2, 1), (5, 0)] {
            g.add_edge_growing(l, r);
            assert_eq!(g.active_left_count(), g.active_left().count());
            assert_eq!(g.active_right_count(), g.active_right().count());
        }
        assert_eq!(g.active_left_count(), 3);
        assert_eq!(g.active_right_count(), 2);
        // Growing a side does not activate the new (isolated) vertices.
        g.ensure_left(20);
        g.ensure_right(20);
        assert_eq!(g.active_left_count(), 3);
        assert_eq!(g.active_right_count(), 2);
    }

    #[test]
    fn vertex_display_and_accessors() {
        assert_eq!(Vertex::Left(3).to_string(), "T3");
        assert_eq!(Vertex::Right(0).to_string(), "O0");
        assert!(Vertex::Left(1).is_left());
        assert!(Vertex::Right(1).is_right());
        assert_eq!(Vertex::Right(7).index(), 7);
        assert_eq!(Vertex::from(LeftVertex(2)), Vertex::Left(2));
        assert_eq!(Vertex::from(RightVertex(5)), Vertex::Right(5));
    }
}
