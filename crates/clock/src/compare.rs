//! Vector timestamps and their partial order.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

/// Outcome of comparing two vector timestamps under the component-wise
/// partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClockOrd {
    /// The left timestamp is strictly less than the right (`s.v < t.v`).
    Before,
    /// The left timestamp is strictly greater than the right.
    After,
    /// The timestamps are equal in every component.
    Equal,
    /// The timestamps are incomparable: the events are concurrent.
    Concurrent,
}

impl ClockOrd {
    /// Returns `true` for [`ClockOrd::Before`].
    pub fn is_before(self) -> bool {
        self == ClockOrd::Before
    }

    /// Returns `true` for [`ClockOrd::Concurrent`].
    pub fn is_concurrent(self) -> bool {
        self == ClockOrd::Concurrent
    }
}

impl fmt::Display for ClockOrd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClockOrd::Before => "before",
            ClockOrd::After => "after",
            ClockOrd::Equal => "equal",
            ClockOrd::Concurrent => "concurrent",
        };
        f.write_str(s)
    }
}

/// A vector timestamp: a fixed-length vector of event counters.
///
/// The *meaning* of each component (which thread, object or chain it counts)
/// is determined by the assigner that produced the timestamp; two timestamps
/// may only be compared when they were produced by the same assigner over the
/// same computation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorTimestamp {
    components: Vec<u64>,
}

impl VectorTimestamp {
    /// Creates the zero timestamp with `len` components.
    pub fn zeros(len: usize) -> Self {
        Self {
            components: vec![0; len],
        }
    }

    /// Creates a timestamp from explicit component values.
    pub fn from_components(components: Vec<u64>) -> Self {
        Self { components }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if the timestamp has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.components
    }

    /// The value of component `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn component(&self, i: usize) -> u64 {
        self.components[i]
    }

    /// Increments component `i` by one.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn increment(&mut self, i: usize) {
        self.components[i] += 1;
    }

    /// Sets this timestamp to the component-wise maximum of itself and
    /// `other` (the `max(p.v, q.v)` step of every vector clock protocol).
    ///
    /// # Panics
    ///
    /// Panics if the two timestamps have different lengths.
    pub fn merge_max(&mut self, other: &VectorTimestamp) {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot merge timestamps of different widths"
        );
        for (a, b) in self.components.iter_mut().zip(other.components.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Compares two timestamps under the component-wise partial order.
    ///
    /// # Panics
    ///
    /// Panics if the two timestamps have different lengths.
    pub fn compare(&self, other: &VectorTimestamp) -> ClockOrd {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot compare timestamps of different widths"
        );
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.components.iter().zip(other.components.iter()) {
            match a.cmp(b) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
        }
        match (less, greater) {
            (false, false) => ClockOrd::Equal,
            (true, false) => ClockOrd::Before,
            (false, true) => ClockOrd::After,
            (true, true) => ClockOrd::Concurrent,
        }
    }

    /// Returns `true` iff `self < other` in the strict component-wise order
    /// (the vector clock condition's right-hand side).
    pub fn strictly_less_than(&self, other: &VectorTimestamp) -> bool {
        self.compare(other) == ClockOrd::Before
    }

    /// Sum of all components — a cheap upper bound on the number of events
    /// this timestamp is aware of; used only for diagnostics.
    pub fn magnitude(&self) -> u64 {
        self.components.iter().sum()
    }

    /// Returns a copy padded with zeros to `width` components.
    ///
    /// A timestamp taken while a growing clock was still narrow misses the
    /// components added later; those counters were zero at the time, so
    /// zero-padding makes the timestamp directly comparable with wider ones
    /// from the same run.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the current length — truncation
    /// would silently discard counters.
    pub fn padded_to(&self, width: usize) -> VectorTimestamp {
        assert!(
            width >= self.len(),
            "cannot pad a width-{} timestamp down to {width} components",
            self.len()
        );
        let mut components = self.components.clone();
        components.resize(width, 0);
        Self { components }
    }

    /// The by-value form of [`padded_to`](Self::padded_to): pads in place,
    /// so a timestamp already at `width` — the common case when replaying
    /// with a fixed component map — passes through without cloning.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the current length — truncation
    /// would silently discard counters.
    pub fn into_padded_to(mut self, width: usize) -> VectorTimestamp {
        assert!(
            width >= self.len(),
            "cannot pad a width-{} timestamp down to {width} components",
            self.len()
        );
        self.components.resize(width, 0);
        self
    }
}

impl Index<usize> for VectorTimestamp {
    type Output = u64;

    fn index(&self, index: usize) -> &Self::Output {
        &self.components[index]
    }
}

impl From<Vec<u64>> for VectorTimestamp {
    fn from(components: Vec<u64>) -> Self {
        Self::from_components(components)
    }
}

impl fmt::Display for VectorTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_accessors() {
        let t = VectorTimestamp::zeros(3);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.as_slice(), &[0, 0, 0]);
        assert_eq!(t.component(1), 0);
        assert_eq!(t[2], 0);
        assert_eq!(t.magnitude(), 0);
        assert!(VectorTimestamp::zeros(0).is_empty());
    }

    #[test]
    fn increment_and_merge() {
        let mut a = VectorTimestamp::zeros(3);
        a.increment(0);
        a.increment(0);
        a.increment(2);
        let b = VectorTimestamp::from_components(vec![1, 5, 0]);
        a.merge_max(&b);
        assert_eq!(a.as_slice(), &[2, 5, 1]);
        assert_eq!(a.magnitude(), 8);
    }

    #[test]
    fn comparison_outcomes() {
        let a = VectorTimestamp::from(vec![1, 2, 3]);
        let b = VectorTimestamp::from(vec![2, 2, 4]);
        let c = VectorTimestamp::from(vec![0, 9, 0]);
        assert_eq!(a.compare(&b), ClockOrd::Before);
        assert_eq!(b.compare(&a), ClockOrd::After);
        assert_eq!(a.compare(&a.clone()), ClockOrd::Equal);
        assert_eq!(a.compare(&c), ClockOrd::Concurrent);
        assert!(a.strictly_less_than(&b));
        assert!(!a.strictly_less_than(&a.clone()));
        assert!(ClockOrd::Before.is_before());
        assert!(ClockOrd::Concurrent.is_concurrent());
        assert!(!ClockOrd::Equal.is_before());
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn comparing_different_widths_panics() {
        let a = VectorTimestamp::zeros(2);
        let b = VectorTimestamp::zeros(3);
        let _ = a.compare(&b);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merging_different_widths_panics() {
        let mut a = VectorTimestamp::zeros(2);
        a.merge_max(&VectorTimestamp::zeros(1));
    }

    #[test]
    fn padded_to_extends_with_zeros() {
        let t = VectorTimestamp::from(vec![3, 1]);
        assert_eq!(t.padded_to(4).as_slice(), &[3, 1, 0, 0]);
        assert_eq!(t.padded_to(2), t, "padding to the current width is a copy");
        // Padding preserves comparability: the padded old stamp still sits
        // below a wider successor.
        let wide = VectorTimestamp::from(vec![3, 2, 1, 0]);
        assert!(t.padded_to(4).strictly_less_than(&wide));
    }

    #[test]
    #[should_panic(expected = "cannot pad")]
    fn padded_to_rejects_truncation() {
        let _ = VectorTimestamp::from(vec![1, 2, 3]).padded_to(2);
    }

    #[test]
    fn into_padded_to_matches_padded_to() {
        let t = VectorTimestamp::from(vec![3, 1]);
        assert_eq!(t.clone().into_padded_to(4), t.padded_to(4));
        assert_eq!(t.clone().into_padded_to(2), t, "same width passes through");
    }

    #[test]
    #[should_panic(expected = "cannot pad")]
    fn into_padded_to_rejects_truncation() {
        let _ = VectorTimestamp::from(vec![1, 2, 3]).into_padded_to(1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VectorTimestamp::from(vec![1, 0, 2]).to_string(), "[1,0,2]");
        assert_eq!(VectorTimestamp::zeros(0).to_string(), "[]");
        assert_eq!(ClockOrd::Concurrent.to_string(), "concurrent");
        assert_eq!(ClockOrd::Before.to_string(), "before");
    }
}
