//! Mapping from clock components (threads / objects) to vector indices.
//!
//! A mixed vector clock is defined by *which* threads and objects carry a
//! component.  The paper obtains that set as a vertex cover of the
//! thread–object bipartite graph; this module turns such a set into a dense
//! index map the timestamping protocol can use.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use mvc_graph::{Vertex, VertexCover};
use mvc_trace::{Event, ObjectId, ThreadId};

/// One component of a mixed vector clock: either a thread or an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Component {
    /// The component counts operations of this thread.
    Thread(ThreadId),
    /// The component counts operations on this object.
    Object(ObjectId),
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Thread(t) => write!(f, "{t}"),
            Component::Object(o) => write!(f, "{o}"),
        }
    }
}

impl From<Vertex> for Component {
    fn from(v: Vertex) -> Self {
        match v {
            Vertex::Left(i) => Component::Thread(ThreadId(i)),
            Vertex::Right(i) => Component::Object(ObjectId(i)),
        }
    }
}

/// A dense mapping from chosen threads/objects to vector component indices.
///
/// Component indices are assigned in the order components are added (or, when
/// built from a [`VertexCover`], threads in ascending id order followed by
/// objects in ascending id order), so a given cover always produces the same
/// layout.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentMap {
    components: Vec<Component>,
    thread_index: HashMap<usize, usize>,
    object_index: HashMap<usize, usize>,
}

impl ComponentMap {
    /// Creates an empty component map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a component map from a vertex cover of the thread–object graph.
    ///
    /// ```
    /// use mvc_graph::{BipartiteGraph, cover::minimum_vertex_cover_of};
    /// use mvc_clock::ComponentMap;
    /// let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0)]);
    /// let map = ComponentMap::from_cover(&minimum_vertex_cover_of(&g));
    /// assert_eq!(map.len(), 1); // the single object O0 covers both edges
    /// ```
    pub fn from_cover(cover: &VertexCover) -> Self {
        let mut map = Self::new();
        for v in cover.members() {
            map.push(Component::from(v));
        }
        map
    }

    /// Builds the thread-based component map for threads `0..n` (the
    /// traditional thread vector clock layout).
    pub fn all_threads(n: usize) -> Self {
        let mut map = Self::new();
        for t in 0..n {
            map.push(Component::Thread(ThreadId(t)));
        }
        map
    }

    /// Builds the object-based component map for objects `0..n`.
    pub fn all_objects(n: usize) -> Self {
        let mut map = Self::new();
        for o in 0..n {
            map.push(Component::Object(ObjectId(o)));
        }
        map
    }

    /// Appends a component, returning its index. Adding a component that is
    /// already present returns the existing index and does not grow the map.
    pub fn push(&mut self, component: Component) -> usize {
        match component {
            Component::Thread(t) => {
                if let Some(&i) = self.thread_index.get(&t.index()) {
                    return i;
                }
                let i = self.components.len();
                self.thread_index.insert(t.index(), i);
                self.components.push(component);
                i
            }
            Component::Object(o) => {
                if let Some(&i) = self.object_index.get(&o.index()) {
                    return i;
                }
                let i = self.components.len();
                self.object_index.insert(o.index(), i);
                self.components.push(component);
                i
            }
        }
    }

    /// Number of components (the size of the mixed vector clock).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if no components have been selected.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The components in index order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The component index assigned to a thread, if the thread is a component.
    pub fn thread_component(&self, thread: ThreadId) -> Option<usize> {
        self.thread_index.get(&thread.index()).copied()
    }

    /// The component index assigned to an object, if the object is a component.
    pub fn object_component(&self, object: ObjectId) -> Option<usize> {
        self.object_index.get(&object.index()).copied()
    }

    /// Returns `true` if the thread carries a component.
    pub fn contains_thread(&self, thread: ThreadId) -> bool {
        self.thread_index.contains_key(&thread.index())
    }

    /// Returns `true` if the object carries a component.
    pub fn contains_object(&self, object: ObjectId) -> bool {
        self.object_index.contains_key(&object.index())
    }

    /// Returns `true` if the event's thread or object (or both) carries a
    /// component — the coverage requirement every event must satisfy for the
    /// mixed clock to be valid.
    pub fn covers_event(&self, event: &Event) -> bool {
        self.contains_thread(event.thread) || self.contains_object(event.object)
    }

    /// The component index the paper designates as `e.c` for an event:
    /// the event's *object* component if the object is in the clock, otherwise
    /// the event's *thread* component.
    ///
    /// Returns `None` when neither endpoint is a component (the event is not
    /// covered — the resulting clock would not be valid).
    pub fn event_component(&self, event: &Event) -> Option<usize> {
        self.object_component(event.object)
            .or_else(|| self.thread_component(event.thread))
    }
}

impl FromIterator<Component> for ComponentMap {
    fn from_iter<I: IntoIterator<Item = Component>>(iter: I) -> Self {
        let mut map = ComponentMap::new();
        for c in iter {
            map.push(c);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_graph::cover::minimum_vertex_cover_of;
    use mvc_graph::BipartiteGraph;
    use mvc_trace::{EventId, OpKind};

    fn event(t: usize, o: usize) -> Event {
        Event {
            id: EventId(0),
            thread: ThreadId(t),
            object: ObjectId(o),
            kind: OpKind::Op,
            thread_seq: 0,
            object_seq: 0,
        }
    }

    #[test]
    fn empty_map() {
        let m = ComponentMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(!m.covers_event(&event(0, 0)));
        assert_eq!(m.event_component(&event(0, 0)), None);
    }

    #[test]
    fn push_deduplicates() {
        let mut m = ComponentMap::new();
        let a = m.push(Component::Thread(ThreadId(3)));
        let b = m.push(Component::Object(ObjectId(3)));
        let c = m.push(Component::Thread(ThreadId(3)));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(c, 0, "re-adding an existing component returns its index");
        assert_eq!(m.len(), 2);
        assert_eq!(m.thread_component(ThreadId(3)), Some(0));
        assert_eq!(m.object_component(ObjectId(3)), Some(1));
        assert_eq!(m.thread_component(ThreadId(0)), None);
    }

    #[test]
    fn all_threads_and_all_objects_layouts() {
        let t = ComponentMap::all_threads(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.thread_component(ThreadId(2)), Some(2));
        assert!(!t.contains_object(ObjectId(0)));

        let o = ComponentMap::all_objects(2);
        assert_eq!(o.len(), 2);
        assert_eq!(o.object_component(ObjectId(1)), Some(1));
        assert!(!o.contains_thread(ThreadId(0)));
    }

    #[test]
    fn from_cover_is_deterministic_and_ordered() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]);
        let cover = minimum_vertex_cover_of(&g);
        let map = ComponentMap::from_cover(&cover);
        assert_eq!(map.len(), cover.size());
        // The layout is reproducible: building twice gives the same map.
        assert_eq!(map, ComponentMap::from_cover(&cover));
    }

    #[test]
    fn event_component_prefers_object() {
        let mut m = ComponentMap::new();
        m.push(Component::Thread(ThreadId(0)));
        m.push(Component::Object(ObjectId(1)));
        // Event covered by both endpoints: the object component is e.c.
        assert_eq!(m.event_component(&event(0, 1)), Some(1));
        // Covered only by the thread.
        assert_eq!(m.event_component(&event(0, 5)), Some(0));
        // Covered only by the object.
        assert_eq!(m.event_component(&event(7, 1)), Some(1));
        assert!(m.covers_event(&event(7, 1)));
        assert!(!m.covers_event(&event(7, 5)));
    }

    #[test]
    fn component_display_and_conversion() {
        assert_eq!(Component::Thread(ThreadId(2)).to_string(), "T2");
        assert_eq!(Component::Object(ObjectId(0)).to_string(), "O0");
        assert_eq!(
            Component::from(Vertex::Left(4)),
            Component::Thread(ThreadId(4))
        );
        assert_eq!(
            Component::from(Vertex::Right(9)),
            Component::Object(ObjectId(9))
        );
    }

    #[test]
    fn from_iterator_collects() {
        let m: ComponentMap = [
            Component::Thread(ThreadId(1)),
            Component::Object(ObjectId(2)),
            Component::Thread(ThreadId(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(m.len(), 2);
        assert_eq!(
            m.components(),
            &[
                Component::Thread(ThreadId(1)),
                Component::Object(ObjectId(2))
            ]
        );
    }
}
