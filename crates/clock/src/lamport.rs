//! Scalar Lamport clocks.
//!
//! A Lamport clock is the cheapest causality mechanism: a single integer per
//! thread/object, merged with `max` and incremented on every event.  It is
//! *consistent* with happened-before (`s → t ⇒ s.c < t.c`) but does not
//! characterise it — concurrent events may still get ordered scalar values.
//! It is included as the size-1 extreme of the size/precision trade-off that
//! the evaluation harness reports alongside the vector clocks.

use mvc_trace::Computation;

/// Assigns a scalar Lamport timestamp to every event of a computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LamportClockAssigner;

impl LamportClockAssigner {
    /// Creates the assigner.
    pub fn new() -> Self {
        Self
    }

    /// Assigns Lamport timestamps in append order.
    ///
    /// The timestamp of an event is `max(thread clock, object clock) + 1`;
    /// both the thread and the object then adopt it.
    pub fn assign(&self, computation: &Computation) -> Vec<u64> {
        let mut thread_clock = vec![0u64; computation.thread_index_bound()];
        let mut object_clock = vec![0u64; computation.object_index_bound()];
        let mut stamps = Vec::with_capacity(computation.len());
        for e in computation.events() {
            let t = e.thread.index();
            let o = e.object.index();
            let v = thread_clock[t].max(object_clock[o]) + 1;
            thread_clock[t] = v;
            object_clock[o] = v;
            stamps.push(v);
        }
        stamps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_trace::examples::paper_figure1;
    use mvc_trace::{ObjectId, ThreadId, WorkloadBuilder};
    use proptest::prelude::*;

    #[test]
    fn empty_computation() {
        assert!(LamportClockAssigner::new()
            .assign(&Computation::new())
            .is_empty());
    }

    #[test]
    fn sequential_events_count_up() {
        let mut c = Computation::new();
        for _ in 0..4 {
            c.record(ThreadId(0), ObjectId(0));
        }
        assert_eq!(LamportClockAssigner::new().assign(&c), vec![1, 2, 3, 4]);
    }

    #[test]
    fn consistency_with_happened_before_on_figure1() {
        let c = paper_figure1();
        let stamps = LamportClockAssigner::new().assign(&c);
        let oracle = c.causality_oracle();
        for a in 0..c.len() {
            for b in 0..c.len() {
                if oracle.happened_before(mvc_trace::EventId(a), mvc_trace::EventId(b)) {
                    assert!(stamps[a] < stamps[b]);
                }
            }
        }
    }

    proptest! {
        /// The Lamport clock condition: s -> t implies s.c < t.c (but not the
        /// converse, which is exactly why vector clocks exist).
        #[test]
        fn prop_lamport_consistent_with_causality(
            threads in 1usize..6,
            objects in 1usize..6,
            ops in 1usize..100,
            seed in 0u64..200,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let stamps = LamportClockAssigner::new().assign(&c);
            let oracle = c.causality_oracle();
            for a in 0..c.len() {
                for b in 0..c.len() {
                    if oracle.happened_before(mvc_trace::EventId(a), mvc_trace::EventId(b)) {
                        prop_assert!(stamps[a] < stamps[b]);
                    }
                }
            }
        }
    }
}
