//! The paper's mixed-vector-clock timestamping protocol (Section III-C).
//!
//! Given a set of components (threads and objects chosen as a vertex cover of
//! the thread–object graph, represented by a [`ComponentMap`]), every thread
//! and every object carries a mixed vector.  When thread `p` performs
//! operation `e` on object `q`:
//!
//! ```text
//! e.v = max(p.v, q.v)
//! if q is a component: e.v[q]++
//! if p is a component: e.v[p]++
//! p.v = q.v = e.v
//! ```
//!
//! (When both endpoints are components the paper's pseudo-code increments the
//! event's component `e.c = e.q`; incrementing both is also correct but would
//! advance two counters per event.  We follow the paper and bump exactly one
//! component per event, preferring the object.)
//!
//! Validity requires every event to be *covered*: at least one endpoint must
//! be a component.  [`MixedVectorClockAssigner::assign_checked`] reports the
//! first uncovered event instead of producing an invalid clock.

use std::fmt;

use mvc_trace::{Computation, EventId};

use crate::chunked::{self, ChunkedRow};
use crate::compare::VectorTimestamp;
use crate::component::ComponentMap;
use crate::TimestampAssigner;

/// Error returned when a computation contains an event whose thread *and*
/// object both lack a component — the chosen component set is not a vertex
/// cover of the computation's bipartite graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UncoveredEventError {
    /// The first uncovered event encountered in append order.
    pub event: EventId,
}

impl fmt::Display for UncoveredEventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event {} is not covered by any mixed-clock component",
            self.event
        )
    }
}

impl std::error::Error for UncoveredEventError {}

/// Assigns mixed vector clocks driven by an explicit [`ComponentMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedVectorClockAssigner {
    components: ComponentMap,
}

impl MixedVectorClockAssigner {
    /// Creates an assigner over the given component map.
    pub fn new(components: ComponentMap) -> Self {
        Self { components }
    }

    /// The component map driving this assigner.
    pub fn components(&self) -> &ComponentMap {
        &self.components
    }

    /// Number of components in the mixed clock.
    pub fn width(&self) -> usize {
        self.components.len()
    }

    /// Assigns timestamps, returning an error if some event is not covered by
    /// the component map.
    ///
    /// # Errors
    ///
    /// Returns [`UncoveredEventError`] naming the first uncovered event.
    pub fn assign_checked(
        &self,
        computation: &Computation,
    ) -> Result<Vec<VectorTimestamp>, UncoveredEventError> {
        let width = self.width();
        let mut thread_clock = vec![ChunkedRow::new(); computation.thread_index_bound()];
        let mut object_clock = vec![ChunkedRow::new(); computation.object_index_bound()];
        let mut stamps = Vec::with_capacity(computation.len());
        for e in computation.events() {
            let component = self
                .components
                .event_component(e)
                .ok_or(UncoveredEventError { event: e.id })?;
            let t = e.thread.index();
            let o = e.object.index();
            // The shared write-back kernel: both rows mutate in place and
            // only the emitted stamp is owned — no full-width row clones.
            let v = chunked::step(&mut thread_clock[t], &mut object_clock[o], component, width);
            stamps.push(VectorTimestamp::from_components(v));
        }
        Ok(stamps)
    }
}

impl TimestampAssigner for MixedVectorClockAssigner {
    fn name(&self) -> &'static str {
        "mixed-vector-clock"
    }

    fn clock_size(&self, _computation: &Computation) -> usize {
        self.width()
    }

    /// Assigns timestamps to every event.
    ///
    /// # Panics
    ///
    /// Panics if some event is not covered by the component map; use
    /// [`MixedVectorClockAssigner::assign_checked`] to handle that case
    /// gracefully.
    fn assign(&self, computation: &Computation) -> Vec<VectorTimestamp> {
        self.assign_checked(computation)
            .expect("component map does not cover the computation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use crate::validate::satisfies_vector_clock_condition;
    use crate::vector::ThreadVectorClockAssigner;
    use mvc_graph::cover::minimum_vertex_cover_of;
    use mvc_trace::examples::paper_figure1;
    use mvc_trace::{ObjectId, ThreadId, WorkloadBuilder};
    use proptest::prelude::*;

    fn optimal_assigner(c: &Computation) -> MixedVectorClockAssigner {
        let cover = minimum_vertex_cover_of(&c.bipartite_graph());
        MixedVectorClockAssigner::new(ComponentMap::from_cover(&cover))
    }

    #[test]
    fn empty_computation() {
        let c = Computation::new();
        let a = MixedVectorClockAssigner::new(ComponentMap::new());
        assert!(a.assign(&c).is_empty());
        assert_eq!(a.clock_size(&c), 0);
        assert_eq!(a.name(), "mixed-vector-clock");
    }

    #[test]
    fn paper_figure1_mixed_clock_is_size_three_and_valid() {
        let c = paper_figure1();
        let a = optimal_assigner(&c);
        assert_eq!(a.width(), 3, "Fig. 3 uses a 3-component mixed clock");
        let stamps = a.assign(&c);
        let oracle = c.causality_oracle();
        assert!(satisfies_vector_clock_condition(&c, &stamps, &oracle));
    }

    #[test]
    fn paper_claimed_ordering_holds_under_mixed_clock() {
        // The paper's §III-C argues [T2,O1] -> [T3,O3] is visible by comparing
        // mixed timestamps.
        let c = paper_figure1();
        let stamps = optimal_assigner(&c).assign(&c);
        let t2_o1 = 0; // first event in FIGURE1_OPS
        let t3_o3 = 4;
        assert!(stamps[t2_o1].strictly_less_than(&stamps[t3_o3]));
    }

    #[test]
    fn uncovered_event_is_reported() {
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        c.record(ThreadId(1), ObjectId(1));
        let mut map = ComponentMap::new();
        map.push(Component::Thread(ThreadId(0)));
        let a = MixedVectorClockAssigner::new(map);
        let err = a.assign_checked(&c).unwrap_err();
        assert_eq!(err.event, EventId(1));
        assert!(err.to_string().contains("e1"));
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn assign_panics_on_uncovered_event() {
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        let a = MixedVectorClockAssigner::new(ComponentMap::new());
        let _ = a.assign(&c);
    }

    #[test]
    fn all_thread_components_reduce_to_thread_clock() {
        // With every thread as a component, the mixed protocol increments the
        // thread component of each event whenever the object is not a
        // component — i.e. always — so it coincides with the thread clock.
        let c = WorkloadBuilder::new(5, 5).operations(150).seed(3).build();
        let mixed =
            MixedVectorClockAssigner::new(ComponentMap::all_threads(c.thread_index_bound()));
        let thread = ThreadVectorClockAssigner::new();
        assert_eq!(mixed.assign(&c), thread.assign(&c));
    }

    #[test]
    fn optimal_mixed_clock_never_larger_than_either_side() {
        for seed in 0..10 {
            let c = WorkloadBuilder::new(10, 14)
                .operations(120)
                .seed(seed)
                .build();
            let a = optimal_assigner(&c);
            assert!(a.width() <= c.thread_count().min(c.object_count()));
        }
    }

    proptest! {
        /// The headline correctness theorem (Theorem 2): on arbitrary random
        /// workloads, the mixed clock built from a minimum vertex cover
        /// satisfies s -> t  <=>  s.v < t.v.
        #[test]
        fn prop_optimal_mixed_clock_is_valid(
            threads in 1usize..8,
            objects in 1usize..8,
            ops in 1usize..100,
            seed in 0u64..300,
        ) {
            let c = WorkloadBuilder::new(threads, objects)
                .operations(ops)
                .seed(seed)
                .build();
            let a = optimal_assigner(&c);
            let stamps = a.assign(&c);
            let oracle = c.causality_oracle();
            prop_assert!(satisfies_vector_clock_condition(&c, &stamps, &oracle));
        }

        /// Optimality bound (Theorem 3, one direction): the optimal mixed clock
        /// is never larger than min(#threads, #objects).
        #[test]
        fn prop_optimal_width_bounded_by_min_side(
            threads in 1usize..10,
            objects in 1usize..10,
            ops in 1usize..120,
            seed in 0u64..300,
        ) {
            let c = WorkloadBuilder::new(threads, objects)
                .operations(ops)
                .seed(seed)
                .build();
            let a = optimal_assigner(&c);
            prop_assert!(a.width() <= c.thread_count().min(c.object_count()));
        }
    }
}
