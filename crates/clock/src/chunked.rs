//! Chunked sparse stamp rows: the engines' wide-clock working format.
//!
//! The paper makes timestamps *small* (a minimum vertex cover instead of one
//! entry per thread plus one per object), but a dense `Vec<u64>` row still
//! pays O(width) per event even when almost every entry is zero — which is
//! exactly the wide-clock regime (thousands of components, a handful touched
//! per event) the Singhal–Kshemkalyani observation in the paper's Section VI
//! predicts.  This module keeps each per-thread / per-object row in fixed
//! [`CHUNK`]-entry chunks with a one-bit-per-chunk nonzero bitmap, so the
//! protocol's `max`-merge, increment, and comparison skip all-zero chunks
//! entirely and run tight 64-iteration inner loops over the rest.
//!
//! The representation is *internal*: engines emit ordinary dense
//! [`VectorTimestamp`](crate::VectorTimestamp) stamps, so `Timestamper`
//! impls, sinks, and the codec are untouched.  [`step`] is the shared
//! write-back kernel — one protocol step mutating the two rows in place and
//! emitting the event's dense stamp, with no full-width row clone anywhere.
//!
//! Invariant maintained by every method: a clear mask bit implies the whole
//! chunk is zero (a set bit implies at least one nonzero entry, so occupancy
//! numbers are exact, not conservative).

/// Entries per chunk.  64 keeps a chunk one cache-line pair (512 bytes of
/// `u64`s) and makes the bitmap arithmetic plain shifts.
pub const CHUNK: usize = 64;

/// One mixed-vector row (a thread's or an object's clock) in chunked form.
///
/// `values` is zero-padded to a whole number of chunks; bit `c % 64` of
/// `mask[c / 64]` is set iff chunk `c` contains a nonzero entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChunkedRow {
    values: Vec<u64>,
    mask: Vec<u64>,
}

/// Number of chunks needed to hold `width` entries.
#[inline]
fn chunks_for(width: usize) -> usize {
    width.div_ceil(CHUNK)
}

impl ChunkedRow {
    /// Creates an empty (zero-width) row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an all-zero row covering at least `width` entries.
    pub fn with_width(width: usize) -> Self {
        let mut row = Self::default();
        row.ensure_width(width);
        row
    }

    /// Grows the row (with zeros) so it covers at least `width` entries.
    /// Never shrinks: the clock only grows.
    pub fn ensure_width(&mut self, width: usize) {
        let chunks = chunks_for(width);
        if self.values.len() < chunks * CHUNK {
            self.values.resize(chunks * CHUNK, 0);
            self.mask.resize(chunks.div_ceil(64), 0);
        }
    }

    /// Entries the row currently covers (a multiple of [`CHUNK`]; entries
    /// beyond the logical clock width are zero padding).
    pub fn padded_width(&self) -> usize {
        self.values.len()
    }

    /// Number of chunks the row currently holds.
    pub fn chunk_count(&self) -> usize {
        self.values.len() / CHUNK
    }

    /// Number of chunks containing at least one nonzero entry.
    pub fn nonzero_chunks(&self) -> usize {
        self.mask.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of chunks that are nonzero (0.0 for an empty row): the
    /// per-row sparsity number the wide-clock bench reports.
    pub fn occupancy(&self) -> f64 {
        let chunks = self.chunk_count();
        if chunks == 0 {
            0.0
        } else {
            self.nonzero_chunks() as f64 / chunks as f64
        }
    }

    #[cfg(test)]
    fn mask_bit(&self, chunk: usize) -> bool {
        (self.mask[chunk / 64] >> (chunk % 64)) & 1 != 0
    }

    #[inline]
    fn set_mask_bit(&mut self, chunk: usize) {
        self.mask[chunk / 64] |= 1u64 << (chunk % 64);
    }

    /// Entry `k` (zero beyond the padded width).
    pub fn get(&self, k: usize) -> u64 {
        self.values.get(k).copied().unwrap_or(0)
    }

    /// Increments entry `k`, growing the row if needed.
    pub fn increment(&mut self, k: usize) {
        self.ensure_width(k + 1);
        self.values[k] += 1;
        self.set_mask_bit(k / CHUNK);
    }

    /// Elementwise `max` of `other` into `self`, visiting only `other`'s
    /// nonzero chunks (an all-zero chunk cannot raise anything).
    pub fn merge_max(&mut self, other: &ChunkedRow) {
        self.ensure_width(other.values.len());
        for (word, &obits) in other.mask.iter().enumerate() {
            let mut bits = obits;
            while bits != 0 {
                let chunk = word * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let base = chunk * CHUNK;
                let dst = &mut self.values[base..base + CHUNK];
                let src = &other.values[base..base + CHUNK];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = (*d).max(s);
                }
            }
            self.mask[word] |= obits;
        }
    }

    /// `self < other` in the vector-clock order: every entry `<=` and at
    /// least one `<`.  Chunks zero on both sides are skipped; a chunk
    /// nonzero only in `self` refutes `<=` without touching its entries.
    pub fn strictly_less_than(&self, other: &ChunkedRow) -> bool {
        let words = self.mask.len().max(other.mask.len());
        let mut strict = false;
        for word in 0..words {
            let sbits = self.mask.get(word).copied().unwrap_or(0);
            let obits = other.mask.get(word).copied().unwrap_or(0);
            // A chunk nonzero in self but all-zero in other has some entry
            // greater than other's zero.
            if sbits & !obits != 0 {
                return false;
            }
            // Chunks nonzero only in other make the comparison strict.
            if obits & !sbits != 0 {
                strict = true;
            }
            let mut bits = sbits & obits;
            while bits != 0 {
                let chunk = word * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let base = chunk * CHUNK;
                for (s, o) in self.values[base..base + CHUNK]
                    .iter()
                    .zip(&other.values[base..base + CHUNK])
                {
                    if s > o {
                        return false;
                    }
                    if s < o {
                        strict = true;
                    }
                }
            }
        }
        strict
    }

    /// Makes `self` bit-identical to `src`, copying only chunks that are
    /// nonzero on either side (both rows' zero chunks already agree).
    pub fn copy_from(&mut self, src: &ChunkedRow) {
        self.ensure_width(src.values.len());
        for word in 0..self.mask.len() {
            let sbits = src.mask.get(word).copied().unwrap_or(0);
            let mut bits = sbits | self.mask[word];
            while bits != 0 {
                let chunk = word * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let base = chunk * CHUNK;
                if (sbits >> (chunk % 64)) & 1 != 0 {
                    let (dst, s) = (&mut self.values[base..base + CHUNK], &src.values);
                    dst.copy_from_slice(&s[base..base + CHUNK]);
                } else {
                    self.values[base..base + CHUNK].fill(0);
                }
            }
            self.mask[word] = sbits;
        }
    }

    /// The row as a dense vector truncated/padded to exactly `width`
    /// entries.  Two strategies, picked by occupancy: a mostly-zero row
    /// zero-fills once and scatters its few nonzero chunks (one big
    /// `calloc`-backed memset beats many segmented ones); a mostly-live row
    /// is built chunk by chunk so every output byte is written exactly once
    /// (zero-filling first would write the live chunks twice, a measurable
    /// tax at full occupancy).
    pub fn to_dense(&self, width: usize) -> Vec<u64> {
        if 2 * self.nonzero_chunks() < chunks_for(width) {
            let mut out = vec![0u64; width];
            for (word, &bits) in self.mask.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let chunk = word * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let base = chunk * CHUNK;
                    if base >= width {
                        continue;
                    }
                    let len = CHUNK.min(width - base);
                    out[base..base + len].copy_from_slice(&self.values[base..base + len]);
                }
            }
            return out;
        }
        let mut out = Vec::with_capacity(width);
        let covered = self.chunk_count();
        for chunk in 0..chunks_for(width) {
            let base = chunk * CHUNK;
            let len = CHUNK.min(width - base);
            let nonzero = chunk < covered && (self.mask[chunk / 64] >> (chunk % 64)) & 1 != 0;
            if nonzero {
                out.extend_from_slice(&self.values[base..base + len]);
            } else {
                out.resize(out.len() + len, 0);
            }
        }
        out
    }

    /// Builds a row from a dense slice.
    pub fn from_dense(dense: &[u64]) -> Self {
        let mut row = Self::with_width(dense.len());
        for (chunk, window) in dense.chunks(CHUNK).enumerate() {
            if window.iter().any(|&v| v != 0) {
                let base = chunk * CHUNK;
                row.values[base..base + window.len()].copy_from_slice(window);
                row.set_mask_bit(chunk);
            }
        }
        row
    }
}

/// One write-back protocol step (the paper's Section III-C update) over
/// chunked rows: merge the object's row into the thread's, increment the
/// event's component, copy the result back to the object, and return the
/// event's dense stamp.  The only full-width work is zero-filling the
/// emitted stamp; everything else is proportional to the rows' nonzero
/// chunks, and neither row is ever cloned.
///
/// `thread` and `object` must be distinct rows (they live in distinct
/// per-thread / per-object tables).
pub fn step(
    thread: &mut ChunkedRow,
    object: &mut ChunkedRow,
    component: usize,
    width: usize,
) -> Vec<u64> {
    thread.ensure_width(width);
    thread.merge_max(object);
    thread.increment(component);
    object.copy_from(thread);
    thread.to_dense(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dense_strictly_less(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().max(b.len());
        let at = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        (0..n).all(|i| at(a, i) <= at(b, i)) && (0..n).any(|i| at(a, i) < at(b, i))
    }

    fn assert_mask_exact(row: &ChunkedRow) {
        for chunk in 0..row.chunk_count() {
            let nonzero = row.values[chunk * CHUNK..(chunk + 1) * CHUNK]
                .iter()
                .any(|&v| v != 0);
            assert_eq!(row.mask_bit(chunk), nonzero, "chunk {chunk}");
        }
    }

    #[test]
    fn roundtrip_and_padding() {
        let dense = vec![0, 3, 0, 0, 1];
        let row = ChunkedRow::from_dense(&dense);
        assert_eq!(row.padded_width(), CHUNK);
        assert_eq!(row.to_dense(5), dense);
        assert_eq!(row.to_dense(3), vec![0, 3, 0], "truncation");
        assert_eq!(row.to_dense(70)[5..], vec![0u64; 65][..], "zero padding");
        assert_mask_exact(&row);
    }

    #[test]
    fn empty_row_is_all_zero_chunks() {
        let row = ChunkedRow::with_width(200);
        assert_eq!(row.chunk_count(), 4);
        assert_eq!(row.nonzero_chunks(), 0);
        assert_eq!(row.occupancy(), 0.0);
        assert_eq!(ChunkedRow::new().occupancy(), 0.0);
        assert_eq!(row.get(199), 0);
        assert_eq!(row.get(10_000), 0, "reads beyond the padding are zero");
    }

    #[test]
    fn increment_grows_and_sets_exactly_one_chunk() {
        let mut row = ChunkedRow::new();
        row.increment(130);
        assert_eq!(row.get(130), 1);
        assert_eq!(row.chunk_count(), 3);
        assert_eq!(row.nonzero_chunks(), 1);
        assert!((row.occupancy() - 1.0 / 3.0).abs() < 1e-12);
        assert_mask_exact(&row);
    }

    #[test]
    fn merge_skips_zero_chunks_but_matches_dense_max() {
        let mut a = ChunkedRow::from_dense(&[1, 0, 0, 7]);
        let mut wide = vec![0u64; 300];
        wide[290] = 5;
        wide[2] = 9;
        let b = ChunkedRow::from_dense(&wide);
        a.merge_max(&b);
        assert_eq!(a.get(0), 1);
        assert_eq!(a.get(2), 9);
        assert_eq!(a.get(3), 7);
        assert_eq!(a.get(290), 5);
        assert_eq!(a.nonzero_chunks(), 2, "chunk 0 and chunk 4 only");
        assert_mask_exact(&a);
    }

    #[test]
    fn strict_order_matches_dense_semantics() {
        let zero = ChunkedRow::with_width(64);
        let one = ChunkedRow::from_dense(&[0, 1]);
        assert!(zero.strictly_less_than(&one));
        assert!(!one.strictly_less_than(&zero));
        assert!(!one.strictly_less_than(&one), "irreflexive");
        // Incomparable: nonzero in disjoint chunks.
        let mut far = vec![0u64; 200];
        far[190] = 1;
        let far = ChunkedRow::from_dense(&far);
        assert!(!one.strictly_less_than(&far) || !far.strictly_less_than(&one));
        assert!(one.strictly_less_than(&{
            let mut m = one.clone();
            m.merge_max(&far);
            m
        }));
    }

    #[test]
    fn step_matches_the_dense_protocol_by_hand() {
        // Same arithmetic as slicing's single-shard test: three events over
        // a width-2 clock.
        let mut threads = vec![ChunkedRow::new(), ChunkedRow::new()];
        let mut objects = vec![ChunkedRow::new(), ChunkedRow::new()];
        let (t, o) = (&mut threads, &mut objects);
        assert_eq!(step(&mut t[0], &mut o[0], 0, 2), vec![1, 0]);
        assert_eq!(step(&mut t[1], &mut o[0], 0, 2), vec![2, 0]);
        assert_eq!(step(&mut t[0], &mut o[1], 1, 2), vec![1, 1]);
        assert_eq!(t[0].to_dense(2), vec![1, 1], "write-back reached the row");
        assert_eq!(o[0].to_dense(2), vec![2, 0]);
        for row in threads.iter().chain(objects.iter()) {
            assert_mask_exact(row);
        }
    }

    #[test]
    fn copy_from_clears_stale_chunks() {
        // After a merge the destination can only gain chunks, but copy_from
        // is written for arbitrary rows: chunks nonzero in the destination
        // and zero in the source must be wiped.
        let mut dst = ChunkedRow::from_dense(&[9, 9, 9]);
        let mut src_dense = vec![0u64; 128];
        src_dense[100] = 4;
        let src = ChunkedRow::from_dense(&src_dense);
        dst.copy_from(&src);
        assert_eq!(dst.to_dense(128), src.to_dense(128));
        assert_mask_exact(&dst);
    }

    proptest! {
        /// Chunked ops are bit-for-bit the dense ops, including across chunk
        /// boundaries and width growth.
        #[test]
        fn prop_chunked_ops_match_dense(
            a in proptest::collection::vec(0u64..5, 0..200),
            b in proptest::collection::vec(0u64..5, 0..200),
            c in 0usize..200,
        ) {
            let (ra, rb) = (ChunkedRow::from_dense(&a), ChunkedRow::from_dense(&b));
            prop_assert_eq!(ra.to_dense(a.len()), a.clone());

            let mut merged = ra.clone();
            merged.merge_max(&rb);
            let n = a.len().max(b.len());
            let expect: Vec<u64> = (0..n)
                .map(|i| a.get(i).copied().unwrap_or(0).max(b.get(i).copied().unwrap_or(0)))
                .collect();
            prop_assert_eq!(merged.to_dense(n), expect);
            assert_mask_exact(&merged);

            prop_assert_eq!(ra.strictly_less_than(&rb), dense_strictly_less(&a, &b));

            let mut inc = ra.clone();
            inc.increment(c);
            let mut expect = a.clone();
            expect.resize(expect.len().max(c + 1), 0);
            expect[c] += 1;
            prop_assert_eq!(inc.to_dense(expect.len()), expect);
            assert_mask_exact(&inc);
        }

        /// A random event sequence stepped through the chunked kernel equals
        /// the naive dense protocol, stamp by stamp and row by row.
        #[test]
        fn prop_step_matches_naive_dense_protocol(
            events in proptest::collection::vec((0usize..6, 0usize..6, 0usize..150), 1..60),
        ) {
            let width = 150;
            let mut threads = vec![ChunkedRow::new(); 6];
            let mut objects = vec![ChunkedRow::new(); 6];
            let mut dt = vec![vec![0u64; width]; 6];
            let mut dobj = vec![vec![0u64; width]; 6];
            for &(t, o, c) in &events {
                let stamp = step(&mut threads[t], &mut objects[o], c, width);
                let merged: Vec<u64> = (0..width)
                    .map(|k| dt[t][k].max(dobj[o][k]) + u64::from(k == c))
                    .collect();
                dt[t] = merged.clone();
                dobj[o] = merged.clone();
                prop_assert_eq!(&stamp, &merged);
            }
            for (row, dense) in threads.iter().zip(&dt).chain(objects.iter().zip(&dobj)) {
                prop_assert_eq!(row.to_dense(width), dense.clone());
                assert_mask_exact(row);
            }
        }
    }
}
