//! Differential timestamp compression (Singhal–Kshemkalyani technique).
//!
//! The paper's related work (Section VI) notes that the Singhal–Kshemkalyani
//! optimisation — send only the vector entries that changed since the last
//! message to the same destination — is orthogonal to the mixed clock and
//! "can also benefit our timestamping algorithm by reducing its overhead".
//! This module implements that optimisation for any stream of timestamps
//! produced by one source (a thread or an object): instead of shipping the
//! whole vector per event, ship `(component, value)` pairs for the entries
//! that changed.
//!
//! [`DeltaEncoder`] / [`DeltaDecoder`] form a matched pair: the decoder
//! reconstructs exactly the timestamps the encoder saw, and
//! [`CompressionStats`] reports how many component slots were actually
//! transmitted, which the evaluation uses to quantify the combined effect of
//! a smaller clock *and* differential encoding.

use serde::{Deserialize, Serialize};

use crate::compare::VectorTimestamp;

/// A differentially encoded timestamp: only the components that changed since
/// the previous timestamp of the same stream.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaTimestamp {
    /// `(component index, new value)` pairs, in ascending component order.
    pub changes: Vec<(usize, u64)>,
    /// Width of the full vector this delta applies to (the clock may have
    /// grown since the previous timestamp).
    pub width: usize,
}

impl DeltaTimestamp {
    /// Number of transmitted entries.
    pub fn transmitted_entries(&self) -> usize {
        self.changes.len()
    }
}

/// Encodes a stream of timestamps as deltas against the previously encoded
/// timestamp.
#[derive(Debug, Clone, Default)]
pub struct DeltaEncoder {
    last: Vec<u64>,
    stats: CompressionStats,
}

/// Decodes a stream of [`DeltaTimestamp`]s back into full timestamps.
#[derive(Debug, Clone, Default)]
pub struct DeltaDecoder {
    last: Vec<u64>,
}

/// Aggregate statistics of an encoding session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Number of timestamps encoded.
    pub timestamps: usize,
    /// Total component slots a full-vector encoding would have shipped.
    pub full_entries: usize,
    /// Component slots actually shipped by the differential encoding.
    pub delta_entries: usize,
}

impl CompressionStats {
    /// Fraction of entries actually transmitted (1.0 = no savings, lower is
    /// better). Returns 1.0 when nothing was encoded.
    pub fn transmission_ratio(&self) -> f64 {
        if self.full_entries == 0 {
            1.0
        } else {
            self.delta_entries as f64 / self.full_entries as f64
        }
    }
}

impl DeltaEncoder {
    /// Creates an encoder with an all-zero reference timestamp.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes the next timestamp of the stream.
    ///
    /// Timestamps may grow in width over time (the online mechanisms add
    /// components); components beyond the previous width are treated as
    /// previously zero, so only non-zero new components are shipped.
    pub fn encode(&mut self, timestamp: &VectorTimestamp) -> DeltaTimestamp {
        let width = timestamp.len();
        if self.last.len() < width {
            self.last.resize(width, 0);
        }
        let mut changes = Vec::new();
        for (i, &value) in timestamp.as_slice().iter().enumerate() {
            if self.last[i] != value {
                changes.push((i, value));
                self.last[i] = value;
            }
        }
        self.stats.timestamps += 1;
        self.stats.full_entries += width;
        self.stats.delta_entries += changes.len();
        DeltaTimestamp { changes, width }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CompressionStats {
        self.stats
    }
}

impl DeltaDecoder {
    /// Creates a decoder with an all-zero reference timestamp.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs the full timestamp for the next delta of the stream.
    ///
    /// # Panics
    ///
    /// Panics if a delta references a component at or beyond its own declared
    /// width — that indicates the delta was corrupted or re-ordered.
    pub fn decode(&mut self, delta: &DeltaTimestamp) -> VectorTimestamp {
        if self.last.len() < delta.width {
            self.last.resize(delta.width, 0);
        }
        for &(component, value) in &delta.changes {
            assert!(
                component < delta.width,
                "delta references component {component} beyond width {}",
                delta.width
            );
            self.last[component] = value;
        }
        VectorTimestamp::from_components(self.last[..delta.width].to_vec())
    }
}

/// Encodes a whole per-source timestamp stream and returns the deltas plus
/// aggregate statistics.
pub fn encode_stream(timestamps: &[VectorTimestamp]) -> (Vec<DeltaTimestamp>, CompressionStats) {
    let mut encoder = DeltaEncoder::new();
    let deltas = timestamps.iter().map(|t| encoder.encode(t)).collect();
    (deltas, encoder.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::ThreadVectorClockAssigner;
    use crate::TimestampAssigner;
    use mvc_trace::{ThreadId, WorkloadBuilder};
    use proptest::prelude::*;

    fn ts(v: &[u64]) -> VectorTimestamp {
        VectorTimestamp::from_components(v.to_vec())
    }

    #[test]
    fn empty_stream() {
        let (deltas, stats) = encode_stream(&[]);
        assert!(deltas.is_empty());
        assert_eq!(stats.transmission_ratio(), 1.0);
        assert_eq!(stats.timestamps, 0);
    }

    #[test]
    fn first_timestamp_ships_only_nonzero_entries() {
        let mut encoder = DeltaEncoder::new();
        let delta = encoder.encode(&ts(&[0, 3, 0, 1]));
        assert_eq!(delta.changes, vec![(1, 3), (3, 1)]);
        assert_eq!(delta.width, 4);
        assert_eq!(delta.transmitted_entries(), 2);
    }

    #[test]
    fn unchanged_components_are_not_retransmitted() {
        let mut encoder = DeltaEncoder::new();
        encoder.encode(&ts(&[1, 5, 2]));
        let second = encoder.encode(&ts(&[1, 6, 2]));
        assert_eq!(second.changes, vec![(1, 6)]);
        let stats = encoder.stats();
        assert_eq!(stats.timestamps, 2);
        assert_eq!(stats.full_entries, 6);
        assert_eq!(stats.delta_entries, 4);
        assert!((stats.transmission_ratio() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn decoder_reconstructs_the_original_stream() {
        let stream = vec![
            ts(&[1, 0, 0]),
            ts(&[1, 1, 0]),
            ts(&[2, 1, 3]),
            ts(&[2, 1, 3]),
        ];
        let (deltas, _) = encode_stream(&stream);
        let mut decoder = DeltaDecoder::new();
        let decoded: Vec<_> = deltas.iter().map(|d| decoder.decode(d)).collect();
        assert_eq!(decoded, stream);
    }

    #[test]
    fn growing_width_streams_round_trip() {
        // Simulates an online clock that gains components over time.
        let stream = vec![ts(&[1]), ts(&[1, 1]), ts(&[2, 1, 1])];
        let (deltas, stats) = encode_stream(&stream);
        assert_eq!(deltas[1].width, 2);
        let mut decoder = DeltaDecoder::new();
        let decoded: Vec<_> = deltas.iter().map(|d| decoder.decode(d)).collect();
        assert_eq!(decoded, stream);
        assert!(stats.delta_entries < stats.full_entries);
    }

    #[test]
    #[should_panic(expected = "beyond width")]
    fn corrupted_delta_is_rejected() {
        let mut decoder = DeltaDecoder::new();
        decoder.decode(&DeltaTimestamp {
            changes: vec![(5, 1)],
            width: 2,
        });
    }

    #[test]
    fn per_thread_streams_compress_well_on_real_clocks() {
        // A thread's successive timestamps differ in only a few entries, so the
        // SK encoding ships far fewer than n entries per event.
        let c = WorkloadBuilder::new(16, 16).operations(800).seed(5).build();
        let stamps = ThreadVectorClockAssigner::new().assign(&c);
        let mut total = CompressionStats::default();
        for t in c.threads() {
            let stream: Vec<_> = c
                .thread_chain(ThreadId(t.index()))
                .iter()
                .map(|e| stamps[e.index()].clone())
                .collect();
            let (_, stats) = encode_stream(&stream);
            total.timestamps += stats.timestamps;
            total.full_entries += stats.full_entries;
            total.delta_entries += stats.delta_entries;
        }
        assert!(
            total.transmission_ratio() < 0.5,
            "expected at least 2x compression, got ratio {}",
            total.transmission_ratio()
        );
    }

    proptest! {
        /// Encode/decode is lossless for arbitrary non-decreasing streams.
        #[test]
        fn prop_round_trip(raw in proptest::collection::vec(
            proptest::collection::vec(0u64..50, 1..8), 0..30,
        )) {
            // Make the stream cumulative so it resembles real clock streams
            // (values never decrease), though the codec does not require it.
            let mut acc: Vec<u64> = Vec::new();
            let stream: Vec<VectorTimestamp> = raw
                .into_iter()
                .map(|v| {
                    if acc.len() < v.len() {
                        acc.resize(v.len(), 0);
                    }
                    for (i, x) in v.iter().enumerate() {
                        acc[i] += x;
                    }
                    VectorTimestamp::from_components(acc.clone())
                })
                .collect();
            let (deltas, stats) = encode_stream(&stream);
            let mut decoder = DeltaDecoder::new();
            let decoded: Vec<_> = deltas.iter().map(|d| decoder.decode(d)).collect();
            prop_assert_eq!(decoded, stream);
            prop_assert!(stats.delta_entries <= stats.full_entries);
        }
    }
}
