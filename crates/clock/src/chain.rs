//! A dynamic chain-clock baseline (Agarwal & Garg, PODC 2005).
//!
//! The closest related work (Section VI of the paper) generalises vector
//! clock components from *processes* to *chains* of the computation poset:
//! any chain decomposition yields a valid vector clock with one component per
//! chain.  The paper's mixed clock instead restricts components to whole
//! thread-chains and object-chains and optimises over that restricted space;
//! the chain clock is therefore the natural baseline for the extension
//! experiments in `mvc-eval`.
//!
//! The implementation here is the simple greedy *dynamic chain clock*: events
//! arrive in append order, and each event is appended to the first existing
//! chain whose last event happened before it (decided by comparing the
//! already-assigned timestamps); if no such chain exists a new chain — and a
//! new vector component — is created.  The greedy first-fit strategy is a
//! heuristic: it often uses far fewer chains than there are threads on
//! sparse computations, but unlike Agarwal & Garg's process-driven variant it
//! does not carry a worst-case `|P|` bound.  The resulting clock is always a
//! *valid* vector clock, which is what the property tests verify.

use mvc_trace::Computation;

use crate::compare::VectorTimestamp;
use crate::TimestampAssigner;

/// Assigns chain-clock timestamps using greedy online chain decomposition.
///
/// Unlike the fixed-width assigners, the number of components is only known
/// after a computation has been processed; [`ChainClockAssigner::decompose`]
/// exposes both the timestamps and the chain assignment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainClockAssigner;

/// Result of running the chain clock over a computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainDecomposition {
    /// Timestamp per event (width = number of chains, padded to the final
    /// width).
    pub timestamps: Vec<VectorTimestamp>,
    /// Chain index assigned to each event.
    pub chain_of_event: Vec<usize>,
    /// Number of chains used.
    pub chains: usize,
}

impl ChainClockAssigner {
    /// Creates the assigner.
    pub fn new() -> Self {
        Self
    }

    /// Runs the greedy chain decomposition and timestamping.
    pub fn decompose(&self, computation: &Computation) -> ChainDecomposition {
        // Working timestamps grow in width as new chains appear; they are
        // padded to the final width at the end.
        let mut thread_clock: Vec<Vec<u64>> = vec![Vec::new(); computation.thread_index_bound()];
        let mut object_clock: Vec<Vec<u64>> = vec![Vec::new(); computation.object_index_bound()];
        // Last timestamp appended to each chain.
        let mut chain_last: Vec<Vec<u64>> = Vec::new();
        let mut raw_stamps: Vec<Vec<u64>> = Vec::with_capacity(computation.len());
        let mut chain_of_event = Vec::with_capacity(computation.len());

        for e in computation.events() {
            let t = e.thread.index();
            let o = e.object.index();
            let mut v = merge(&thread_clock[t], &object_clock[o]);

            // Find a chain whose last event happened before this event: since
            // the last event's timestamp has already been incorporated into v
            // only if it is causally below, "last <= v" is the test.
            let chain = (0..chain_last.len())
                .find(|&c| dominated(&chain_last[c], &v))
                .unwrap_or_else(|| {
                    chain_last.push(Vec::new());
                    chain_last.len() - 1
                });

            if v.len() <= chain {
                v.resize(chain + 1, 0);
            }
            v[chain] += 1;
            chain_last[chain] = v.clone();
            thread_clock[t] = v.clone();
            object_clock[o] = v.clone();
            chain_of_event.push(chain);
            raw_stamps.push(v);
        }

        let width = chain_last.len();
        let timestamps = raw_stamps
            .into_iter()
            .map(|v| VectorTimestamp::from_components(v).padded_to(width))
            .collect();
        ChainDecomposition {
            timestamps,
            chain_of_event,
            chains: width,
        }
    }
}

impl TimestampAssigner for ChainClockAssigner {
    fn name(&self) -> &'static str {
        "chain-clock"
    }

    fn clock_size(&self, computation: &Computation) -> usize {
        self.decompose(computation).chains
    }

    fn assign(&self, computation: &Computation) -> Vec<VectorTimestamp> {
        self.decompose(computation).timestamps
    }
}

/// Component-wise max of two variable-width vectors.
fn merge(a: &[u64], b: &[u64]) -> Vec<u64> {
    let len = a.len().max(b.len());
    (0..len)
        .map(|i| {
            a.get(i)
                .copied()
                .unwrap_or(0)
                .max(b.get(i).copied().unwrap_or(0))
        })
        .collect()
}

/// Returns `true` iff `a <= b` component-wise (with missing components
/// treated as zero).
fn dominated(a: &[u64], b: &[u64]) -> bool {
    let len = a.len().max(b.len());
    (0..len).all(|i| a.get(i).copied().unwrap_or(0) <= b.get(i).copied().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::satisfies_vector_clock_condition;
    use mvc_trace::examples::paper_figure1;
    use mvc_trace::{ObjectId, ThreadId, WorkloadBuilder};
    use proptest::prelude::*;

    #[test]
    fn empty_computation() {
        let d = ChainClockAssigner::new().decompose(&Computation::new());
        assert_eq!(d.chains, 0);
        assert!(d.timestamps.is_empty());
        assert!(d.chain_of_event.is_empty());
    }

    #[test]
    fn single_thread_single_chain() {
        let mut c = Computation::new();
        for o in 0..5 {
            c.record(ThreadId(0), ObjectId(o));
        }
        let d = ChainClockAssigner::new().decompose(&c);
        assert_eq!(d.chains, 1, "a totally ordered computation needs one chain");
        assert_eq!(d.chain_of_event, vec![0; 5]);
    }

    #[test]
    fn independent_threads_get_separate_chains() {
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(0));
        c.record(ThreadId(1), ObjectId(1));
        c.record(ThreadId(2), ObjectId(2));
        let d = ChainClockAssigner::new().decompose(&c);
        assert_eq!(d.chains, 3);
    }

    #[test]
    fn chain_clock_valid_on_figure1() {
        let c = paper_figure1();
        let a = ChainClockAssigner::new();
        let stamps = a.assign(&c);
        let oracle = c.causality_oracle();
        assert!(satisfies_vector_clock_condition(&c, &stamps, &oracle));
        assert_eq!(a.name(), "chain-clock");
    }

    #[test]
    fn chain_count_bounded_by_events_and_at_least_width_one() {
        for seed in 0..10 {
            let c = WorkloadBuilder::new(6, 12)
                .operations(150)
                .seed(seed)
                .build();
            let d = ChainClockAssigner::new().decompose(&c);
            assert!(d.chains >= 1);
            assert!(d.chains <= c.len());
            // Every event must have been placed in a real chain.
            assert!(d.chain_of_event.iter().all(|&ch| ch < d.chains));
        }
    }

    #[test]
    fn events_in_same_chain_are_totally_ordered() {
        let c = WorkloadBuilder::new(5, 5).operations(80).seed(4).build();
        let d = ChainClockAssigner::new().decompose(&c);
        let oracle = c.causality_oracle();
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                if d.chain_of_event[i] == d.chain_of_event[j] {
                    assert!(oracle.comparable(mvc_trace::EventId(i), mvc_trace::EventId(j)));
                }
            }
        }
    }

    proptest! {
        /// The chain clock must itself be a valid vector clock.
        #[test]
        fn prop_chain_clock_valid(
            threads in 1usize..7,
            objects in 1usize..7,
            ops in 1usize..90,
            seed in 0u64..200,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let stamps = ChainClockAssigner::new().assign(&c);
            let oracle = c.causality_oracle();
            prop_assert!(satisfies_vector_clock_condition(&c, &stamps, &oracle));
        }

        /// Each chain is genuinely a chain: any two events assigned to the same
        /// chain are comparable under happened-before.
        #[test]
        fn prop_chains_are_chains(
            threads in 1usize..6,
            objects in 1usize..6,
            ops in 0usize..60,
            seed in 0u64..150,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let d = ChainClockAssigner::new().decompose(&c);
            let oracle = c.causality_oracle();
            for i in 0..c.len() {
                for j in (i + 1)..c.len() {
                    if d.chain_of_event[i] == d.chain_of_event[j] {
                        prop_assert!(oracle.comparable(mvc_trace::EventId(i), mvc_trace::EventId(j)));
                    }
                }
            }
        }
    }
}
