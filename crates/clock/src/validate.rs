//! Checking the vector clock condition of a timestamp assignment.
//!
//! A timestamp assignment is a *valid vector clock* (Theorem 2 of the paper)
//! iff for all distinct events `s`, `t`:
//!
//! ```text
//! s → t  ⇔  s.v < t.v
//! ```
//!
//! The checks here compare an assignment against the exact
//! [`CausalityOracle`] and are `O(n²)` in the number of events; they are the
//! backbone of the property-test suites in every clock crate and of the
//! end-to-end integration tests.

use mvc_trace::{CausalityOracle, Computation, EventId};

use crate::compare::VectorTimestamp;

/// A single violation of the vector clock condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `s → t` but `s.v < t.v` does not hold.
    MissingOrder {
        /// The causally earlier event.
        earlier: EventId,
        /// The causally later event.
        later: EventId,
    },
    /// `s.v < t.v` but `s → t` does not hold (the clock invents an ordering).
    SpuriousOrder {
        /// The event whose timestamp is smaller.
        smaller: EventId,
        /// The event whose timestamp is larger.
        larger: EventId,
    },
    /// The assignment does not contain a timestamp for every event.
    LengthMismatch {
        /// Number of events in the computation.
        events: usize,
        /// Number of timestamps supplied.
        timestamps: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MissingOrder { earlier, later } => {
                write!(
                    f,
                    "{earlier} happened before {later} but its timestamp is not smaller"
                )
            }
            Violation::SpuriousOrder { smaller, larger } => {
                write!(
                    f,
                    "timestamp of {smaller} is smaller than {larger} but they are not ordered"
                )
            }
            Violation::LengthMismatch { events, timestamps } => {
                write!(
                    f,
                    "computation has {events} events but {timestamps} timestamps were supplied"
                )
            }
        }
    }
}

/// Returns every violation of the vector clock condition (empty if the
/// assignment is a valid vector clock).
pub fn violations(
    computation: &Computation,
    timestamps: &[VectorTimestamp],
    oracle: &CausalityOracle,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if timestamps.len() != computation.len() {
        out.push(Violation::LengthMismatch {
            events: computation.len(),
            timestamps: timestamps.len(),
        });
        return out;
    }
    let n = computation.len();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let hb = oracle.happened_before(EventId(a), EventId(b));
            let lt = timestamps[a].strictly_less_than(&timestamps[b]);
            match (hb, lt) {
                (true, false) => out.push(Violation::MissingOrder {
                    earlier: EventId(a),
                    later: EventId(b),
                }),
                (false, true) => out.push(Violation::SpuriousOrder {
                    smaller: EventId(a),
                    larger: EventId(b),
                }),
                _ => {}
            }
        }
    }
    out
}

/// Returns `true` iff the assignment satisfies the vector clock condition
/// `s → t ⇔ s.v < t.v` for every pair of distinct events.
pub fn satisfies_vector_clock_condition(
    computation: &Computation,
    timestamps: &[VectorTimestamp],
    oracle: &CausalityOracle,
) -> bool {
    if timestamps.len() != computation.len() {
        return false;
    }
    let n = computation.len();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let hb = oracle.happened_before(EventId(a), EventId(b));
            let lt = timestamps[a].strictly_less_than(&timestamps[b]);
            if hb != lt {
                return false;
            }
        }
    }
    true
}

/// Returns `true` iff the assignment is merely *consistent* with
/// happened-before (`s → t ⇒ s.v < t.v`), the weaker Lamport-clock property.
pub fn consistent_with_causality(
    computation: &Computation,
    timestamps: &[VectorTimestamp],
    oracle: &CausalityOracle,
) -> bool {
    if timestamps.len() != computation.len() {
        return false;
    }
    let n = computation.len();
    for a in 0..n {
        for b in 0..n {
            if a != b
                && oracle.happened_before(EventId(a), EventId(b))
                && !timestamps[a].strictly_less_than(&timestamps[b])
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::ThreadVectorClockAssigner;
    use crate::TimestampAssigner;
    use mvc_trace::{ObjectId, ThreadId};

    fn two_thread_computation() -> Computation {
        [(0, 0), (1, 0), (0, 1), (1, 1)]
            .into_iter()
            .map(|(t, o)| (ThreadId(t), ObjectId(o)))
            .collect()
    }

    #[test]
    fn valid_assignment_passes() {
        let c = two_thread_computation();
        let stamps = ThreadVectorClockAssigner::new().assign(&c);
        let oracle = c.causality_oracle();
        assert!(satisfies_vector_clock_condition(&c, &stamps, &oracle));
        assert!(consistent_with_causality(&c, &stamps, &oracle));
        assert!(violations(&c, &stamps, &oracle).is_empty());
    }

    #[test]
    fn length_mismatch_detected() {
        let c = two_thread_computation();
        let oracle = c.causality_oracle();
        let stamps = vec![VectorTimestamp::zeros(2); 2];
        assert!(!satisfies_vector_clock_condition(&c, &stamps, &oracle));
        assert!(!consistent_with_causality(&c, &stamps, &oracle));
        assert_eq!(
            violations(&c, &stamps, &oracle),
            vec![Violation::LengthMismatch {
                events: 4,
                timestamps: 2
            }]
        );
    }

    #[test]
    fn missing_order_detected() {
        let c = two_thread_computation();
        let oracle = c.causality_oracle();
        // All-equal timestamps can never express any ordering.
        let stamps = vec![VectorTimestamp::zeros(2); c.len()];
        assert!(!satisfies_vector_clock_condition(&c, &stamps, &oracle));
        let v = violations(&c, &stamps, &oracle);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MissingOrder { .. })));
        // Equal stamps fail even the weaker Lamport-style consistency check:
        // ordered events must receive strictly increasing timestamps.
        assert!(!consistent_with_causality(&c, &stamps, &oracle));
    }

    #[test]
    fn spurious_order_detected() {
        let c = two_thread_computation();
        let oracle = c.causality_oracle();
        // Use the event id as a scalar in component 0: this totally orders all
        // events, inventing orderings between concurrent ones.
        let stamps: Vec<_> = (0..c.len())
            .map(|i| VectorTimestamp::from_components(vec![i as u64, 0]))
            .collect();
        let v = violations(&c, &stamps, &oracle);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::SpuriousOrder { .. })));
    }

    #[test]
    fn violation_display() {
        let m = Violation::MissingOrder {
            earlier: EventId(1),
            later: EventId(2),
        };
        let s = Violation::SpuriousOrder {
            smaller: EventId(3),
            larger: EventId(4),
        };
        let l = Violation::LengthMismatch {
            events: 5,
            timestamps: 4,
        };
        assert!(m.to_string().contains("happened before"));
        assert!(s.to_string().contains("not ordered"));
        assert!(l.to_string().contains("5 events"));
    }
}
