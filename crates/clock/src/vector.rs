//! Traditional thread-based and object-based vector clocks (Section II).
//!
//! Both protocols keep one vector per thread and one per object.  When thread
//! `p` performs operation `e` on object `q`:
//!
//! ```text
//! e.v = max(p.v, q.v);
//! e.v[e.thread]++        (thread-based)   or   e.v[e.object]++ (object-based)
//! p.v = q.v = e.v
//! ```
//!
//! These are the two baselines the mixed clock is compared against: the
//! thread-based clock has `n` components and the object-based clock has `m`
//! components, whereas the mixed clock needs only a minimum vertex cover of
//! the thread–object graph.

use mvc_trace::Computation;

use crate::compare::VectorTimestamp;
use crate::TimestampAssigner;

/// Assigns classic thread-indexed vector clocks (one component per thread).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadVectorClockAssigner;

impl ThreadVectorClockAssigner {
    /// Creates the assigner.
    pub fn new() -> Self {
        Self
    }
}

impl TimestampAssigner for ThreadVectorClockAssigner {
    fn name(&self) -> &'static str {
        "thread-vector-clock"
    }

    fn clock_size(&self, computation: &Computation) -> usize {
        computation.thread_index_bound()
    }

    fn assign(&self, computation: &Computation) -> Vec<VectorTimestamp> {
        assign_indexed(computation, self.clock_size(computation), |e| {
            e.thread.index()
        })
    }
}

/// Assigns classic object-indexed vector clocks (one component per object).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectVectorClockAssigner;

impl ObjectVectorClockAssigner {
    /// Creates the assigner.
    pub fn new() -> Self {
        Self
    }
}

impl TimestampAssigner for ObjectVectorClockAssigner {
    fn name(&self) -> &'static str {
        "object-vector-clock"
    }

    fn clock_size(&self, computation: &Computation) -> usize {
        computation.object_index_bound()
    }

    fn assign(&self, computation: &Computation) -> Vec<VectorTimestamp> {
        assign_indexed(computation, self.clock_size(computation), |e| {
            e.object.index()
        })
    }
}

/// Shared protocol body: one vector per thread and per object, with the
/// incremented component chosen by `component_of`.
fn assign_indexed(
    computation: &Computation,
    width: usize,
    component_of: impl Fn(&mvc_trace::Event) -> usize,
) -> Vec<VectorTimestamp> {
    let mut thread_clock = vec![VectorTimestamp::zeros(width); computation.thread_index_bound()];
    let mut object_clock = vec![VectorTimestamp::zeros(width); computation.object_index_bound()];
    let mut stamps = Vec::with_capacity(computation.len());
    for e in computation.events() {
        let t = e.thread.index();
        let o = e.object.index();
        let mut v = thread_clock[t].clone();
        v.merge_max(&object_clock[o]);
        v.increment(component_of(e));
        thread_clock[t] = v.clone();
        object_clock[o] = v.clone();
        stamps.push(v);
    }
    stamps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::satisfies_vector_clock_condition;
    use mvc_trace::examples::{paper_figure1, tiny};
    use mvc_trace::{EventId, ObjectId, ThreadId, WorkloadBuilder, WorkloadKind};
    use proptest::prelude::*;

    #[test]
    fn empty_computation_yields_no_stamps() {
        let c = Computation::new();
        assert!(ThreadVectorClockAssigner::new().assign(&c).is_empty());
        assert!(ObjectVectorClockAssigner::new().assign(&c).is_empty());
        assert_eq!(ThreadVectorClockAssigner::new().clock_size(&c), 0);
    }

    #[test]
    fn single_thread_counts_up() {
        let mut c = Computation::new();
        for _ in 0..3 {
            c.record(ThreadId(0), ObjectId(0));
        }
        let stamps = ThreadVectorClockAssigner::new().assign(&c);
        assert_eq!(stamps[0].as_slice(), &[1]);
        assert_eq!(stamps[1].as_slice(), &[2]);
        assert_eq!(stamps[2].as_slice(), &[3]);
    }

    #[test]
    fn thread_clock_width_is_thread_bound() {
        let mut c = Computation::new();
        c.record(ThreadId(4), ObjectId(0));
        let a = ThreadVectorClockAssigner::new();
        assert_eq!(a.clock_size(&c), 5);
        assert_eq!(a.assign(&c)[0].len(), 5);
        assert_eq!(a.name(), "thread-vector-clock");
    }

    #[test]
    fn object_clock_width_is_object_bound() {
        let mut c = Computation::new();
        c.record(ThreadId(0), ObjectId(7));
        let a = ObjectVectorClockAssigner::new();
        assert_eq!(a.clock_size(&c), 8);
        assert_eq!(a.assign(&c)[0].len(), 8);
        assert_eq!(a.name(), "object-vector-clock");
    }

    #[test]
    fn concurrent_events_get_incomparable_stamps() {
        let c = tiny();
        let stamps = ThreadVectorClockAssigner::new().assign(&c);
        // Events 0 and 1 are on different threads and different objects.
        assert!(stamps[0].compare(&stamps[1]).is_concurrent());
    }

    #[test]
    fn ordered_events_get_ordered_stamps() {
        let c = tiny();
        let stamps = ThreadVectorClockAssigner::new().assign(&c);
        assert!(stamps[0].strictly_less_than(&stamps[2]));
        assert!(stamps[1].strictly_less_than(&stamps[3]));
    }

    #[test]
    fn paper_figure1_both_clocks_valid() {
        let c = paper_figure1();
        let oracle = c.causality_oracle();
        for assigner in [
            &ThreadVectorClockAssigner::new() as &dyn TimestampAssigner,
            &ObjectVectorClockAssigner::new(),
        ] {
            let stamps = assigner.assign(&c);
            assert!(
                satisfies_vector_clock_condition(&c, &stamps, &oracle),
                "{} is not valid on figure 1",
                assigner.name()
            );
        }
    }

    #[test]
    fn thread_and_object_clocks_induce_identical_order() {
        let c = WorkloadBuilder::new(6, 6).operations(200).seed(5).build();
        let t = ThreadVectorClockAssigner::new().assign(&c);
        let o = ObjectVectorClockAssigner::new().assign(&c);
        for i in 0..c.len() {
            for j in 0..c.len() {
                if i == j {
                    continue;
                }
                assert_eq!(
                    t[i].strictly_less_than(&t[j]),
                    o[i].strictly_less_than(&o[j]),
                    "events {i} and {j} ordered differently by the two clocks"
                );
            }
        }
    }

    #[test]
    fn same_thread_events_always_ordered() {
        let c = WorkloadBuilder::new(4, 8).operations(100).seed(9).build();
        let stamps = ObjectVectorClockAssigner::new().assign(&c);
        for t in c.threads() {
            let chain = c.thread_chain(t);
            for w in chain.windows(2) {
                let (a, b) = (w[0], w[1]);
                assert!(stamps[a.index()].strictly_less_than(&stamps[b.index()]));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_thread_clock_valid_on_random_workloads(
            threads in 1usize..8,
            objects in 1usize..8,
            ops in 1usize..120,
            seed in 0u64..200,
        ) {
            let c = WorkloadBuilder::new(threads, objects)
                .operations(ops)
                .kind(WorkloadKind::Uniform)
                .seed(seed)
                .build();
            let oracle = c.causality_oracle();
            let stamps = ThreadVectorClockAssigner::new().assign(&c);
            prop_assert!(satisfies_vector_clock_condition(&c, &stamps, &oracle));
        }

        #[test]
        fn prop_object_clock_valid_on_random_workloads(
            threads in 1usize..8,
            objects in 1usize..8,
            ops in 1usize..120,
            seed in 0u64..200,
        ) {
            let c = WorkloadBuilder::new(threads, objects)
                .operations(ops)
                .seed(seed)
                .build();
            let oracle = c.causality_oracle();
            let stamps = ObjectVectorClockAssigner::new().assign(&c);
            prop_assert!(satisfies_vector_clock_condition(&c, &stamps, &oracle));
        }

        #[test]
        fn prop_event_stamp_dominates_predecessors(
            threads in 1usize..6,
            objects in 1usize..6,
            ops in 2usize..80,
            seed in 0u64..100,
        ) {
            let c = WorkloadBuilder::new(threads, objects).operations(ops).seed(seed).build();
            let stamps = ThreadVectorClockAssigner::new().assign(&c);
            for e in c.events() {
                if let Some(p) = c.thread_predecessor(e.id) {
                    prop_assert!(stamps[p.index()].strictly_less_than(&stamps[e.id.index()]));
                }
                if let Some(p) = c.object_predecessor(e.id) {
                    prop_assert!(stamps[p.index()].strictly_less_than(&stamps[e.id.index()]));
                }
            }
            let _ = EventId(0);
        }
    }
}
