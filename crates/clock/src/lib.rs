//! Logical clock substrate for thread–object computations.
//!
//! This crate provides the timestamp representation shared by every clock in
//! the repository and the classic clock algorithms the paper compares
//! against:
//!
//! * [`compare`] — [`VectorTimestamp`] (the vector value attached to an
//!   event) and [`ClockOrd`], the four-way outcome of comparing two
//!   timestamps.
//! * [`lamport`] — scalar Lamport clocks (consistent with, but not
//!   characterising, happened-before; included as the cheapest baseline).
//! * [`vector`] — the traditional thread-based and object-based vector clock
//!   assigners from Section II.
//! * [`component`] — [`ComponentMap`]: the mapping from a chosen set of
//!   threads/objects (a vertex cover of the thread–object graph) to vector
//!   components.
//! * [`mixed`] — the paper's mixed-vector-clock timestamping protocol
//!   (Section III-C), parameterised by a [`ComponentMap`].
//! * [`chunked`] — [`ChunkedRow`]: the wide-clock working format (fixed
//!   64-entry chunks with a nonzero-chunk bitmap) and the write-back
//!   protocol-step kernel shared by the timestamping engines.
//! * [`chain`] — a dynamic chain-clock baseline in the spirit of
//!   Agarwal & Garg (PODC 2005), the closest related work (Section VI).
//! * [`validate`] — checking the vector clock condition
//!   `s → t ⇔ s.v < t.v` of a timestamp assignment against the exact
//!   happened-before oracle.
//!
//! # Example
//!
//! ```
//! use mvc_clock::{vector::ThreadVectorClockAssigner, TimestampAssigner, validate};
//! use mvc_trace::examples::paper_figure1;
//!
//! let computation = paper_figure1();
//! let stamps = ThreadVectorClockAssigner::new().assign(&computation);
//! let oracle = computation.causality_oracle();
//! assert!(validate::satisfies_vector_clock_condition(&computation, &stamps, &oracle));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod chunked;
pub mod compare;
pub mod component;
pub mod compress;
pub mod lamport;
pub mod mixed;
pub mod validate;
pub mod vector;

pub use chunked::ChunkedRow;
pub use compare::{ClockOrd, VectorTimestamp};
pub use component::{Component, ComponentMap};
pub use mixed::MixedVectorClockAssigner;

use mvc_trace::Computation;

/// A timestamping algorithm: walks a computation in append order and produces
/// one [`VectorTimestamp`] per event.
///
/// Implementations must be deterministic: the same computation always yields
/// the same timestamps.
pub trait TimestampAssigner {
    /// A short, stable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Number of components in the vectors this assigner produces for the
    /// given computation.
    fn clock_size(&self, computation: &Computation) -> usize;

    /// Assigns a timestamp to every event of the computation, indexed by
    /// [`mvc_trace::EventId`] order.
    fn assign(&self, computation: &Computation) -> Vec<VectorTimestamp>;
}
