//! `mvc-net` — the timestamping pipeline as a networked multi-client
//! service.
//!
//! Producer processes stream length-delimited event frames to a server
//! that runs the library's merge → engine → sink pipeline and streams the
//! stamped results back.  The crate has three layers:
//!
//! * [`frame`] — the versioned wire format: `Hello`/`HelloAck` session
//!   handshake, `Events`, `Stamps`, `Credit` (explicit credit-based
//!   backpressure), `StampsAck`, `Goodbye` and `Error` frames, layered on
//!   the varint primitives of [`mvc_trace::codec`].
//! * [`transport`] — a [`Transport`] byte-pipe abstraction with blocking
//!   `std::net` TCP ([`TcpTransport`], thread-per-connection, no async
//!   runtime) and an in-process duplex pair ([`InProcTransport`]) for
//!   deterministic, network-free tests.
//! * [`server`] / [`client`] — the sans-I/O session server
//!   ([`NetServer`], multiplexing N clients into one pipeline drain loop,
//!   with reconnect-and-replay) and the producer state machine
//!   ([`ProducerClient`]).
//!
//! ## Why the result is exactly the batch result
//!
//! The server draws each event's per-object serialization ticket at
//! ingress, in arrival order, under one lock — so the ticket sequence of
//! every object is dense and published in order, and the order-preserving
//! merge reassembles one faithful interleaving no matter how many
//! connections fed it.  Mixed-vector-clock stamps depend only on each
//! event's causal history (its thread and object predecessors), so the
//! stamps of that interleaving equal those of a sequential batch replay —
//! bit for bit, including across a client disconnect, because replayed
//! events below the ingest watermark are never re-ingested.
//!
//! ```
//! use mvc_core::{MemoryRecorder, TimestampingEngine};
//! use mvc_net::{ClientConfig, InProcTransport, NetServer, ProducerClient, ServerConfig};
//! use mvc_trace::OpKind;
//! use std::time::Duration;
//!
//! let mut server = NetServer::new(
//!     TimestampingEngine::new(),
//!     Box::new(MemoryRecorder::new()),
//!     ServerConfig::default(),
//! );
//! let (near, far) = InProcTransport::pair();
//! let conn = server.connect();
//! let mut client = ProducerClient::connect(
//!     near,
//!     ClientConfig::new(vec!["t0".into()], vec!["x".into()], true),
//! )?;
//! let mut far = far;
//! client.record(0, 0, OpKind::Write);
//! client.record(0, 0, OpKind::Read);
//! client.request_finish();
//! while !client.is_finished() {
//!     server.service(conn, &mut far)?;
//!     client.step(Some(Duration::ZERO))?;
//! }
//! let run = client.into_run()?;
//! assert_eq!(run.stamps.len(), 2);
//! let server_run = server.finish()?;
//! assert_eq!(server_run.report.events, 2);
//! # Ok::<(), mvc_net::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;
pub mod transport;

pub use client::{ClientConfig, ClientRun, ProducerClient};
pub use frame::{Frame, FrameError, FrameReader, MAX_FRAME_LEN, NET_MAGIC, NET_VERSION};
pub use server::{
    serve_tcp, ConnId, NetServer, ServeEngine, ServerConfig, ServerRun, SessionSummary,
};
pub use transport::{InProcTransport, Recv, TcpTransport, Transport, TransportError};

/// Errors raised by the networked service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The framed stream was corrupt or spoke the wrong version.
    Frame(FrameError),
    /// The underlying transport failed or closed.
    Transport(TransportError),
    /// The peer violated the protocol state machine.
    Protocol(String),
    /// The server's timestamping pipeline failed.
    Pipeline(String),
    /// The peer reported an error frame (code, message).
    Remote(u8, String),
    /// A listener or socket operation failed.
    Io(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "framing error: {e}"),
            NetError::Transport(e) => write!(f, "transport error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Pipeline(msg) => write!(f, "pipeline failure: {msg}"),
            NetError::Remote(code, msg) => write!(f, "peer error (code {code}): {msg}"),
            NetError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<TransportError> for NetError {
    fn from(e: TransportError) -> Self {
        NetError::Transport(e)
    }
}
