//! Byte transports for the framed protocol.
//!
//! A [`Transport`] is a bidirectional, ordered, reliable byte pipe with
//! explicit close semantics — exactly what the framing layer assumes.  Two
//! implementations:
//!
//! * [`TcpTransport`] — blocking `std::net` TCP, one transport per
//!   connection (the server runs thread-per-connection; no async runtime).
//! * [`InProcTransport`] — an in-process duplex pair over plain mutexes
//!   and condition variables, for deterministic, network-free tests.  It
//!   can [sever](InProcTransport::sever_keeping) the link at an exact byte
//!   position, which is how the test suite forces mid-frame disconnects.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Errors surfaced by transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer closed the connection (or it was severed).
    Closed,
    /// An I/O error other than an orderly close.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::Io(msg) => write!(f, "transport I/O failure: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Outcome of a [`Transport::recv`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recv {
    /// `n` bytes were read into the buffer.
    Bytes(usize),
    /// No bytes were available within the timeout.
    Empty,
    /// The peer closed its sending direction; no more bytes will arrive.
    Closed,
}

/// A bidirectional, ordered, reliable byte pipe.
pub trait Transport: Send {
    /// Writes all of `bytes` to the peer.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] once the peer is gone; partial writes
    /// before the failure may or may not have been delivered (the framing
    /// layer recovers via reconnect-and-replay either way).
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError>;

    /// Reads available bytes into `buf`.
    ///
    /// `timeout` selects the blocking mode: `None` blocks until bytes
    /// arrive or the peer closes; `Some(Duration::ZERO)` polls without
    /// blocking; any other duration waits at most that long.  Returns
    /// [`Recv::Empty`] on timeout, [`Recv::Closed`] once the peer's stream
    /// has ended (after all pending bytes were drained).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] for failures other than an orderly close.
    fn recv(&mut self, buf: &mut [u8], timeout: Option<Duration>) -> Result<Recv, TransportError>;
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TcpMode {
    Blocking,
    Poll,
    Timeout(Duration),
}

/// Blocking TCP transport over a [`TcpStream`].
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    mode: Option<TcpMode>,
}

impl TcpTransport {
    /// Wraps an accepted or connected stream (enables `TCP_NODELAY`; the
    /// protocol is latency-sensitive credit/stamp chatter).
    pub fn new(stream: TcpStream) -> Self {
        stream.set_nodelay(true).ok();
        TcpTransport { stream, mode: None }
    }

    /// Connects to a server address.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(TcpTransport::new(stream))
    }

    fn set_mode(&mut self, mode: TcpMode) -> Result<(), TransportError> {
        if self.mode == Some(mode) {
            return Ok(());
        }
        let io = |e: std::io::Error| TransportError::Io(e.to_string());
        match mode {
            TcpMode::Poll => self.stream.set_nonblocking(true).map_err(io)?,
            TcpMode::Blocking => {
                self.stream.set_nonblocking(false).map_err(io)?;
                self.stream.set_read_timeout(None).map_err(io)?;
            }
            TcpMode::Timeout(d) => {
                self.stream.set_nonblocking(false).map_err(io)?;
                // set_read_timeout rejects a zero duration; Poll covers it.
                self.stream.set_read_timeout(Some(d)).map_err(io)?;
            }
        }
        self.mode = Some(mode);
        Ok(())
    }
}

fn is_disconnect(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::NotConnected
            | ErrorKind::UnexpectedEof
    )
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        // Writes must block regardless of the current read mode; a
        // nonblocking socket makes write_all fail spuriously, so drive the
        // partial-write loop by hand and wait out WouldBlock.
        let mut sent = 0;
        while sent < bytes.len() {
            match self.stream.write(&bytes[sent..]) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => sent += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(e) if is_disconnect(e.kind()) => return Err(TransportError::Closed),
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8], timeout: Option<Duration>) -> Result<Recv, TransportError> {
        let mode = match timeout {
            None => TcpMode::Blocking,
            Some(d) if d.is_zero() => TcpMode::Poll,
            Some(d) => TcpMode::Timeout(d),
        };
        self.set_mode(mode)?;
        match self.stream.read(buf) {
            Ok(0) => Ok(Recv::Closed),
            Ok(n) => Ok(Recv::Bytes(n)),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                Ok(Recv::Empty)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(Recv::Empty),
            Err(e) if is_disconnect(e.kind()) => Ok(Recv::Closed),
            Err(e) => Err(TransportError::Io(e.to_string())),
        }
    }
}

// ---------------------------------------------------------------------------
// In-process duplex pair
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    ready: Condvar,
}

impl Pipe {
    fn lock(&self) -> std::sync::MutexGuard<'_, PipeState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// One half of an in-process duplex byte pipe.
///
/// Clones share the same underlying pipes, so a test can keep a clone of
/// the client's half to [sever](Self::sever_keeping) the link while the
/// client owns the original.
#[derive(Debug, Clone)]
pub struct InProcTransport {
    /// Peer → us.
    incoming: Arc<Pipe>,
    /// Us → peer.
    outgoing: Arc<Pipe>,
}

impl InProcTransport {
    /// Creates a connected pair of transport halves.
    pub fn pair() -> (InProcTransport, InProcTransport) {
        let a = Arc::new(Pipe::default());
        let b = Arc::new(Pipe::default());
        (
            InProcTransport {
                incoming: Arc::clone(&a),
                outgoing: Arc::clone(&b),
            },
            InProcTransport {
                incoming: b,
                outgoing: a,
            },
        )
    }

    /// Bytes this half has sent that the peer has not yet read.
    pub fn pending(&self) -> usize {
        self.outgoing.lock().buf.len()
    }

    /// Severs the link as if the process died mid-write: of the bytes this
    /// half has sent but the peer has not yet read, only the first `keep`
    /// are delivered; both directions then read as closed (after draining
    /// whatever was already "on the wire").
    pub fn sever_keeping(&self, keep: usize) {
        {
            let mut out = self.outgoing.lock();
            out.buf.truncate(keep);
            out.closed = true;
            self.outgoing.ready.notify_all();
        }
        let mut inc = self.incoming.lock();
        inc.closed = true;
        self.incoming.ready.notify_all();
    }

    /// Orderly close: all sent bytes remain deliverable, then both
    /// directions read as closed.
    pub fn sever(&self) {
        let pending = self.pending();
        self.sever_keeping(pending);
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        let mut out = self.outgoing.lock();
        if out.closed {
            return Err(TransportError::Closed);
        }
        out.buf.extend(bytes.iter().copied());
        self.outgoing.ready.notify_all();
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8], timeout: Option<Duration>) -> Result<Recv, TransportError> {
        let mut state = self.incoming.lock();
        loop {
            if !state.buf.is_empty() {
                let n = buf.len().min(state.buf.len());
                for (slot, byte) in buf.iter_mut().zip(state.buf.drain(..n)) {
                    *slot = byte;
                }
                return Ok(Recv::Bytes(n));
            }
            if state.closed {
                return Ok(Recv::Closed);
            }
            match timeout {
                Some(d) if d.is_zero() => return Ok(Recv::Empty),
                Some(d) => {
                    let (next, result) = self
                        .incoming
                        .ready
                        .wait_timeout(state, d)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    state = next;
                    if result.timed_out() && state.buf.is_empty() && !state.closed {
                        return Ok(Recv::Empty);
                    }
                }
                None => {
                    state = self
                        .incoming
                        .ready
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_delivers_bytes_in_order_both_ways() {
        let (mut a, mut b) = InProcTransport::pair();
        a.send(b"hello").unwrap();
        b.send(b"world").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(b.recv(&mut buf, Some(Duration::ZERO)), Ok(Recv::Bytes(5)));
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(a.recv(&mut buf, Some(Duration::ZERO)), Ok(Recv::Bytes(5)));
        assert_eq!(&buf[..5], b"world");
        assert_eq!(a.recv(&mut buf, Some(Duration::ZERO)), Ok(Recv::Empty));
    }

    #[test]
    fn sever_keeping_truncates_unread_bytes_and_closes() {
        let (mut a, mut b) = InProcTransport::pair();
        a.send(b"0123456789").unwrap();
        assert_eq!(a.pending(), 10);
        a.sever_keeping(4);
        let mut buf = [0u8; 16];
        assert_eq!(b.recv(&mut buf, Some(Duration::ZERO)), Ok(Recv::Bytes(4)));
        assert_eq!(&buf[..4], b"0123");
        assert_eq!(b.recv(&mut buf, Some(Duration::ZERO)), Ok(Recv::Closed));
        assert_eq!(a.send(b"more"), Err(TransportError::Closed));
        assert_eq!(a.recv(&mut buf, Some(Duration::ZERO)), Ok(Recv::Closed));
    }

    #[test]
    fn blocking_recv_wakes_on_send_from_another_thread() {
        let (mut a, mut b) = InProcTransport::pair();
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 4];
            let got = b.recv(&mut buf, None).unwrap();
            (got, buf)
        });
        std::thread::sleep(Duration::from_millis(10));
        a.send(b"ping").unwrap();
        let (got, buf) = handle.join().unwrap();
        assert_eq!(got, Recv::Bytes(4));
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn timed_recv_returns_empty_after_the_deadline() {
        let (_a, mut b) = InProcTransport::pair();
        let mut buf = [0u8; 4];
        let got = b.recv(&mut buf, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(got, Recv::Empty);
    }
}
