//! Wire framing for the mvc-net protocol.
//!
//! The protocol is layered on the primitives of [`mvc_trace::codec`]: the
//! same 7-bit little-endian varints (decoded with
//! [`codec::peek_varint`](mvc_trace::codec::peek_varint)), the same
//! operation-kind tags, and the same magic-plus-version stream header
//! discipline, with the magic `MVN` ("mixed vector clocks, networked")
//! instead of the batch format's `MVC`.
//!
//! Each direction of a connection is an independent byte stream:
//!
//! ```text
//! stream    := header frame*
//! header    := "MVN" version            (4 bytes, version = 0x01)
//! frame     := varint(len) body         (len = |body|, body >= 1 byte)
//! body      := tag payload              (tag selects the Frame variant)
//! ```
//!
//! Frame bodies are only decoded once fully buffered, so a reader never
//! observes a partial payload: truncation by a dropped connection simply
//! leaves an incomplete frame in the buffer, which is discarded when the
//! [`FrameReader`] is replaced on reconnect.  `len` is bounded by
//! [`MAX_FRAME_LEN`]; anything larger is rejected before buffering.
//!
//! See `docs/PROTOCOL.md` for the full wire specification, including the
//! handshake and credit rules built on these frames.

use std::sync::OnceLock;

use mvc_clock::VectorTimestamp;
use mvc_trace::codec::{peek_varint, DecodeError};
use mvc_trace::OpKind;

/// Wire-level counters, shared by every connection in the process.
///
/// Instrumented here — at the single encode/decode choke point both roles
/// go through — so that in one process `net.frames_sent` equals
/// `net.frames_received` at quiescence: every frame written by one side
/// is decoded by the other.  Byte counters cover framed bytes only
/// (length prefix + body), not the 4-byte stream headers, so the same
/// parity holds for them.
struct WireMetrics {
    frames_sent: mvc_obs::Counter,
    frames_received: mvc_obs::Counter,
    bytes_sent: mvc_obs::Counter,
    bytes_received: mvc_obs::Counter,
}

fn wire_metrics() -> &'static WireMetrics {
    static METRICS: OnceLock<WireMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = mvc_obs::global();
        WireMetrics {
            frames_sent: registry.counter("net.frames_sent"),
            frames_received: registry.counter("net.frames_received"),
            bytes_sent: registry.counter("net.bytes_sent"),
            bytes_received: registry.counter("net.bytes_received"),
        }
    })
}

/// Magic bytes opening every mvc-net stream (one per direction).
pub const NET_MAGIC: [u8; 3] = *b"MVN";

/// Protocol version this build speaks, the fourth header byte.
pub const NET_VERSION: u8 = 1;

/// Size of the per-direction stream header in bytes.
pub const HEADER_LEN: usize = 4;

/// Upper bound on a frame body's length (16 MiB).  A peer announcing a
/// larger frame is corrupt or hostile and is rejected before any buffering.
pub const MAX_FRAME_LEN: u64 = 1 << 24;

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_EVENTS: u8 = 3;
const TAG_STAMPS: u8 = 4;
const TAG_CREDIT: u8 = 5;
const TAG_STAMPS_ACK: u8 = 6;
const TAG_GOODBYE: u8 = 7;
const TAG_ERROR: u8 = 8;

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: open (token 0) or resume (token from a previous
    /// [`Frame::HelloAck`]) a session, registering this producer's threads
    /// and the objects it will touch, by name.
    Hello {
        /// Session token; `0` asks for a fresh session.
        token: u64,
        /// Whether the server should stream stamped results back.
        want_stamps: bool,
        /// How many stamps this client has already received (resume only;
        /// the server restarts the stamp stream from here).
        stamps_received: u64,
        /// Names of the client's threads, defining its local thread ids.
        threads: Vec<String>,
        /// Names of the objects the client operates on, defining its local
        /// object ids.
        objects: Vec<String>,
    },
    /// Server → client: the session is open.
    HelloAck {
        /// Token identifying the session on reconnect.
        token: u64,
        /// Events of this session the server has already ingested; the
        /// client resumes sending from this index (replaying its log).
        watermark: u64,
        /// Initial send credit, in events.
        credit: u64,
        /// Global thread index for each registered local thread, in
        /// registration order.
        thread_ids: Vec<u64>,
        /// Global object index for each registered local object, in
        /// registration order.
        object_ids: Vec<u64>,
    },
    /// Client → server: a batch of events in program order.  Ids are the
    /// client's local indices; the server translates via the registrations
    /// carried by the handshake.
    Events {
        /// `(local thread, local object, kind)` per event.
        events: Vec<(u32, u32, OpKind)>,
    },
    /// Server → client: stamped results for this session's events
    /// `first..first + stamps.len()`, in the client's send order.
    Stamps {
        /// Index (in the client's event order) of the first stamp.
        first: u64,
        /// The timestamps.
        stamps: Vec<VectorTimestamp>,
    },
    /// Server → client: flow-control grant.  `acked` lets the client prune
    /// its replay log; `more` extends its send window.
    Credit {
        /// Events ingested so far (the replay watermark).
        acked: u64,
        /// Additional events the client may now send.
        more: u64,
    },
    /// Client → server: stamps received so far, letting the server prune
    /// its retransmit log.
    StampsAck {
        /// Total stamps the client has received.
        received: u64,
    },
    /// Either direction: orderly end of the session.  The client states how
    /// many events it sent in total; the server replies with its own
    /// `Goodbye` once everything is ingested (and, if requested, stamped).
    Goodbye {
        /// Total events in the session.
        events: u64,
    },
    /// Either direction: fatal session error; the connection closes after
    /// this frame.
    Error {
        /// Machine-readable error class (see [`error_code`]).
        code: u8,
        /// Human-readable description.
        message: String,
    },
}

/// Error classes carried by [`Frame::Error`].
pub mod error_code {
    /// The peer violated the protocol (bad frame sequence, credit overrun,
    /// unknown ids…).
    pub const PROTOCOL: u8 = 1;
    /// The server's timestamping pipeline failed.
    pub const PIPELINE: u8 = 2;
    /// The server is shutting down.
    pub const SHUTDOWN: u8 = 3;
}

/// Errors produced while decoding the framed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The stream does not begin with the `MVN` magic.
    BadMagic,
    /// The magic matched but the peer speaks a different protocol version.
    VersionMismatch(u8),
    /// A frame body carried an unknown tag.
    UnknownTag(u8),
    /// A frame body ended in the middle of a field — corruption, since
    /// bodies are only decoded once fully buffered.
    Truncated,
    /// A frame body had bytes left over after its last field (carries the
    /// frame's tag).
    TrailingBytes(u8),
    /// A frame announced a body longer than [`MAX_FRAME_LEN`].
    Oversize(u64),
    /// A length or count varint exceeded the maximum varint width.
    VarintOverflow,
    /// An operation-kind tag was not recognised.
    BadOpKind(u8),
    /// A name field was not valid UTF-8.
    BadUtf8,
    /// A local id field exceeded `u32::MAX`.
    IdOverflow,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "stream is not an mvc-net protocol stream"),
            FrameError::VersionMismatch(found) => write!(
                f,
                "peer speaks protocol version {found}, this build speaks version {NET_VERSION}"
            ),
            FrameError::UnknownTag(tag) => write!(f, "unknown frame tag {tag}"),
            FrameError::Truncated => write!(f, "frame body ended mid-field"),
            FrameError::TrailingBytes(tag) => {
                write!(f, "frame with tag {tag} has trailing bytes")
            }
            FrameError::Oversize(len) => write!(
                f,
                "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
            ),
            FrameError::VarintOverflow => write!(f, "varint exceeds maximum width"),
            FrameError::BadOpKind(tag) => write!(f, "unknown operation kind tag {tag}"),
            FrameError::BadUtf8 => write!(f, "name field is not valid UTF-8"),
            FrameError::IdOverflow => write!(f, "local id exceeds u32::MAX"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::VarintOverflow => FrameError::VarintOverflow,
            DecodeError::BadOpKind(tag) => FrameError::BadOpKind(tag),
            DecodeError::VersionMismatch(found) => FrameError::VersionMismatch(found),
            DecodeError::BadMagic => FrameError::BadMagic,
            DecodeError::UnexpectedEof => FrameError::Truncated,
        }
    }
}

/// Appends the per-direction stream header (`MVN` + version byte).
pub fn write_stream_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&NET_MAGIC);
    out.push(NET_VERSION);
}

/// Appends `value` as the same 7-bit little-endian varint
/// [`mvc_trace::codec`] uses (asserted equivalent in the tests below).
fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn op_kind_tag(kind: OpKind) -> u8 {
    // Same values as mvc_trace::codec's batch format.
    match kind {
        OpKind::Read => 0,
        OpKind::Write => 1,
        OpKind::Acquire => 2,
        OpKind::Release => 3,
        OpKind::Op => 4,
    }
}

fn op_kind_from_tag(tag: u8) -> Result<OpKind, FrameError> {
    Ok(match tag {
        0 => OpKind::Read,
        1 => OpKind::Write,
        2 => OpKind::Acquire,
        3 => OpKind::Release,
        4 => OpKind::Op,
        other => return Err(FrameError::BadOpKind(other)),
    })
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends `frame` to `out` as `varint(len) body`.
pub fn write_frame(out: &mut Vec<u8>, frame: &Frame) {
    let before = out.len();
    let mut body = Vec::with_capacity(32);
    encode_body(&mut body, frame);
    debug_assert!((body.len() as u64) <= MAX_FRAME_LEN, "frame body too large");
    put_varint(out, body.len() as u64);
    out.extend_from_slice(&body);
    let metrics = wire_metrics();
    metrics.frames_sent.inc();
    metrics.bytes_sent.add((out.len() - before) as u64);
}

fn encode_body(body: &mut Vec<u8>, frame: &Frame) {
    match frame {
        Frame::Hello {
            token,
            want_stamps,
            stamps_received,
            threads,
            objects,
        } => {
            body.push(TAG_HELLO);
            put_varint(body, *token);
            body.push(u8::from(*want_stamps));
            put_varint(body, *stamps_received);
            put_varint(body, threads.len() as u64);
            for name in threads {
                put_string(body, name);
            }
            put_varint(body, objects.len() as u64);
            for name in objects {
                put_string(body, name);
            }
        }
        Frame::HelloAck {
            token,
            watermark,
            credit,
            thread_ids,
            object_ids,
        } => {
            body.push(TAG_HELLO_ACK);
            put_varint(body, *token);
            put_varint(body, *watermark);
            put_varint(body, *credit);
            put_varint(body, thread_ids.len() as u64);
            for id in thread_ids {
                put_varint(body, *id);
            }
            put_varint(body, object_ids.len() as u64);
            for id in object_ids {
                put_varint(body, *id);
            }
        }
        Frame::Events { events } => {
            body.push(TAG_EVENTS);
            put_varint(body, events.len() as u64);
            for &(thread, object, kind) in events {
                put_varint(body, u64::from(thread));
                put_varint(body, u64::from(object));
                body.push(op_kind_tag(kind));
            }
        }
        Frame::Stamps { first, stamps } => {
            body.push(TAG_STAMPS);
            put_varint(body, *first);
            put_varint(body, stamps.len() as u64);
            for stamp in stamps {
                put_varint(body, stamp.len() as u64);
                for &component in stamp.as_slice() {
                    put_varint(body, component);
                }
            }
        }
        Frame::Credit { acked, more } => {
            body.push(TAG_CREDIT);
            put_varint(body, *acked);
            put_varint(body, *more);
        }
        Frame::StampsAck { received } => {
            body.push(TAG_STAMPS_ACK);
            put_varint(body, *received);
        }
        Frame::Goodbye { events } => {
            body.push(TAG_GOODBYE);
            put_varint(body, *events);
        }
        Frame::Error { code, message } => {
            body.push(TAG_ERROR);
            body.push(*code);
            put_string(body, message);
        }
    }
}

/// Sequential reader over a fully-buffered frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        let byte = *self.buf.get(self.pos).ok_or(FrameError::Truncated)?;
        self.pos += 1;
        Ok(byte)
    }

    fn varint(&mut self) -> Result<u64, FrameError> {
        match peek_varint(&self.buf[self.pos..])? {
            Some((value, used)) => {
                self.pos += used;
                Ok(value)
            }
            None => Err(FrameError::Truncated),
        }
    }

    fn local_id(&mut self) -> Result<u32, FrameError> {
        u32::try_from(self.varint()?).map_err(|_| FrameError::IdOverflow)
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.varint()? as usize;
        let end = self.pos.checked_add(len).ok_or(FrameError::Truncated)?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let s = std::str::from_utf8(&self.buf[self.pos..end]).map_err(|_| FrameError::BadUtf8)?;
        self.pos = end;
        Ok(s.to_owned())
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Capacity hint for `count` elements of at least `min_size` bytes
    /// each, clamped by the bytes actually present so a corrupt count
    /// cannot trigger a huge allocation.
    fn capacity_for(&self, count: u64, min_size: usize) -> usize {
        (count as usize).min(self.remaining() / min_size.max(1) + 1)
    }
}

/// Decodes one fully-buffered frame body (`tag payload`).
fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cursor::new(body);
    let tag = c.u8()?;
    let frame = match tag {
        TAG_HELLO => {
            let token = c.varint()?;
            let want_stamps = c.u8()? != 0;
            let stamps_received = c.varint()?;
            let thread_count = c.varint()?;
            let mut threads = Vec::with_capacity(c.capacity_for(thread_count, 1));
            for _ in 0..thread_count {
                threads.push(c.string()?);
            }
            let object_count = c.varint()?;
            let mut objects = Vec::with_capacity(c.capacity_for(object_count, 1));
            for _ in 0..object_count {
                objects.push(c.string()?);
            }
            Frame::Hello {
                token,
                want_stamps,
                stamps_received,
                threads,
                objects,
            }
        }
        TAG_HELLO_ACK => {
            let token = c.varint()?;
            let watermark = c.varint()?;
            let credit = c.varint()?;
            let thread_count = c.varint()?;
            let mut thread_ids = Vec::with_capacity(c.capacity_for(thread_count, 1));
            for _ in 0..thread_count {
                thread_ids.push(c.varint()?);
            }
            let object_count = c.varint()?;
            let mut object_ids = Vec::with_capacity(c.capacity_for(object_count, 1));
            for _ in 0..object_count {
                object_ids.push(c.varint()?);
            }
            Frame::HelloAck {
                token,
                watermark,
                credit,
                thread_ids,
                object_ids,
            }
        }
        TAG_EVENTS => {
            let count = c.varint()?;
            let mut events = Vec::with_capacity(c.capacity_for(count, 3));
            for _ in 0..count {
                let thread = c.local_id()?;
                let object = c.local_id()?;
                let kind = op_kind_from_tag(c.u8()?)?;
                events.push((thread, object, kind));
            }
            Frame::Events { events }
        }
        TAG_STAMPS => {
            let first = c.varint()?;
            let count = c.varint()?;
            let mut stamps = Vec::with_capacity(c.capacity_for(count, 1));
            for _ in 0..count {
                let width = c.varint()?;
                let mut components = Vec::with_capacity(c.capacity_for(width, 1));
                for _ in 0..width {
                    components.push(c.varint()?);
                }
                stamps.push(VectorTimestamp::from_components(components));
            }
            Frame::Stamps { first, stamps }
        }
        TAG_CREDIT => Frame::Credit {
            acked: c.varint()?,
            more: c.varint()?,
        },
        TAG_STAMPS_ACK => Frame::StampsAck {
            received: c.varint()?,
        },
        TAG_GOODBYE => Frame::Goodbye {
            events: c.varint()?,
        },
        TAG_ERROR => Frame::Error {
            code: c.u8()?,
            message: c.string()?,
        },
        other => return Err(FrameError::UnknownTag(other)),
    };
    if c.remaining() != 0 {
        return Err(FrameError::TrailingBytes(tag));
    }
    Ok(frame)
}

/// Incremental decoder for one direction of a connection: feed raw bytes in
/// any chunking, take complete frames out.
///
/// The reader first consumes the 4-byte stream header (rejecting a wrong
/// magic as soon as the prefix diverges and a wrong version at the fourth
/// byte), then yields frames one at a time.  A reader is connection-scoped:
/// on reconnect, replace it, which discards any half-received frame.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
    header_done: bool,
}

impl FrameReader {
    /// A fresh reader expecting a stream header.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete frame, or `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`] is fatal for the connection: framing has lost
    /// sync and the stream cannot be resynchronised.
    pub fn try_next(&mut self) -> Result<Option<Frame>, FrameError> {
        if !self.header_done {
            let unread = &self.buf[self.pos..];
            let probe = unread.len().min(NET_MAGIC.len());
            if unread[..probe] != NET_MAGIC[..probe] {
                return Err(FrameError::BadMagic);
            }
            if unread.len() < HEADER_LEN {
                return Ok(None);
            }
            if unread[NET_MAGIC.len()] != NET_VERSION {
                return Err(FrameError::VersionMismatch(unread[NET_MAGIC.len()]));
            }
            self.pos += HEADER_LEN;
            self.header_done = true;
        }
        let unread = &self.buf[self.pos..];
        let (len, used) = match peek_varint(unread)? {
            Some(pair) => pair,
            None => return Ok(None),
        };
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversize(len));
        }
        let total = used + len as usize;
        if unread.len() < total {
            return Ok(None);
        }
        let frame = decode_body(&unread[used..total])?;
        self.pos += total;
        self.compact();
        let metrics = wire_metrics();
        metrics.frames_received.inc();
        metrics.bytes_received.add(total as u64);
        Ok(Some(frame))
    }

    /// Reclaims consumed prefix bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                token: 0,
                want_stamps: true,
                stamps_received: 0,
                threads: vec!["loader".into(), "worker".into()],
                objects: vec!["queue".into()],
            },
            Frame::HelloAck {
                token: 7,
                watermark: 0,
                credit: 65_536,
                thread_ids: vec![0, 1],
                object_ids: vec![0],
            },
            Frame::Events {
                events: vec![
                    (0, 0, OpKind::Write),
                    (1, 0, OpKind::Read),
                    (0, 0, OpKind::Acquire),
                ],
            },
            Frame::Stamps {
                first: 3,
                stamps: vec![
                    VectorTimestamp::from_components(vec![1, 0, 2]),
                    VectorTimestamp::from_components(vec![1, 1, 300]),
                ],
            },
            Frame::Credit {
                acked: 3,
                more: 1024,
            },
            Frame::StampsAck { received: 5 },
            Frame::Goodbye { events: 12 },
            Frame::Error {
                code: error_code::PROTOCOL,
                message: "credit exceeded".into(),
            },
        ]
    }

    fn encode_stream(frames: &[Frame]) -> Vec<u8> {
        let mut out = Vec::new();
        write_stream_header(&mut out);
        for frame in frames {
            write_frame(&mut out, frame);
        }
        out
    }

    #[test]
    fn every_frame_round_trips() {
        let frames = sample_frames();
        let bytes = encode_stream(&frames);
        let mut reader = FrameReader::new();
        reader.feed(&bytes);
        for expected in &frames {
            let got = reader.try_next().expect("decode").expect("complete");
            assert_eq!(&got, expected);
        }
        assert!(reader.try_next().expect("decode").is_none());
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_feeding_yields_the_same_frames() {
        let frames = sample_frames();
        let bytes = encode_stream(&frames);
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for &byte in &bytes {
            reader.feed(&[byte]);
            while let Some(frame) = reader.try_next().expect("decode") {
                got.push(frame);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn varint_writer_matches_the_codec() {
        use bytes::BytesMut;
        for value in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut ours = Vec::new();
            put_varint(&mut ours, value);
            let mut theirs = BytesMut::new();
            mvc_trace::codec::put_varint(&mut theirs, value);
            assert_eq!(
                &ours[..],
                &theirs[..],
                "varint encodings differ for {value}"
            );
        }
    }

    #[test]
    fn wrong_magic_is_rejected_at_the_first_divergent_byte() {
        let mut reader = FrameReader::new();
        reader.feed(b"MX");
        assert_eq!(reader.try_next(), Err(FrameError::BadMagic));
    }

    #[test]
    fn wrong_version_is_rejected_at_the_fourth_byte() {
        let mut reader = FrameReader::new();
        reader.feed(b"MVN");
        assert_eq!(reader.try_next(), Ok(None));
        reader.feed(&[9]);
        assert_eq!(reader.try_next(), Err(FrameError::VersionMismatch(9)));
    }

    #[test]
    fn batch_codec_magic_is_not_a_net_stream() {
        // A client accidentally pointed at a codec file (or vice versa)
        // must fail loudly, not misparse.
        let mut reader = FrameReader::new();
        reader.feed(b"MVC\x01");
        assert_eq!(reader.try_next(), Err(FrameError::BadMagic));
    }

    #[test]
    fn oversize_frames_are_rejected_before_buffering() {
        let mut out = Vec::new();
        write_stream_header(&mut out);
        put_varint(&mut out, MAX_FRAME_LEN + 1);
        let mut reader = FrameReader::new();
        reader.feed(&out);
        assert_eq!(
            reader.try_next(),
            Err(FrameError::Oversize(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut out = Vec::new();
        write_stream_header(&mut out);
        put_varint(&mut out, 1);
        out.push(200);
        let mut reader = FrameReader::new();
        reader.feed(&out);
        assert_eq!(reader.try_next(), Err(FrameError::UnknownTag(200)));
    }

    #[test]
    fn zero_length_bodies_are_corrupt() {
        let mut out = Vec::new();
        write_stream_header(&mut out);
        put_varint(&mut out, 0);
        let mut reader = FrameReader::new();
        reader.feed(&out);
        assert_eq!(reader.try_next(), Err(FrameError::Truncated));
    }

    #[test]
    fn trailing_bytes_inside_a_body_are_corrupt() {
        let mut body = Vec::new();
        encode_body(&mut body, &Frame::Goodbye { events: 3 });
        body.push(0xff);
        let mut out = Vec::new();
        write_stream_header(&mut out);
        put_varint(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
        let mut reader = FrameReader::new();
        reader.feed(&out);
        assert_eq!(
            reader.try_next(),
            Err(FrameError::TrailingBytes(TAG_GOODBYE))
        );
    }

    #[test]
    fn truncation_inside_every_frame_type_is_detected_or_pends() {
        // Chop each sample frame's encoding at every possible byte
        // boundary.  A truncated suffix within the stream must either
        // report "need more bytes" (Ok(None)) — never a wrong frame — and
        // a re-padded body must fail as Truncated when the length header
        // claims completeness.
        for frame in sample_frames() {
            let mut body = Vec::new();
            encode_body(&mut body, &frame);
            for cut in 1..body.len() {
                // The frame claims its full length but the body was cut:
                // this is the corruption case (bytes lost mid-stream).
                let mut wire = Vec::new();
                write_stream_header(&mut wire);
                put_varint(&mut wire, body.len() as u64);
                wire.extend_from_slice(&body[..cut]);
                let mut reader = FrameReader::new();
                reader.feed(&wire);
                assert_eq!(
                    reader.try_next(),
                    Ok(None),
                    "cut at {cut} of {frame:?} should pend until the body completes"
                );
                // Now pad with garbage to the claimed length: decoding must
                // fail loudly (some cuts happen to produce a decodable
                // body of a different value — those are indistinguishable
                // in any length-delimited format — but none may panic).
                let mut padded = wire.clone();
                padded.resize(wire.len() + (body.len() - cut), 0xff);
                let mut reader = FrameReader::new();
                reader.feed(&padded);
                let _ = reader.try_next();
            }
        }
    }

    #[test]
    fn a_dropped_connection_discards_the_partial_frame_on_reader_replacement() {
        let frames = sample_frames();
        let bytes = encode_stream(&frames);
        // Deliver only part of the stream, as if the peer died mid-frame.
        let mut reader = FrameReader::new();
        reader.feed(&bytes[..bytes.len() - 3]);
        let mut delivered = 0;
        while reader.try_next().expect("prefix decodes").is_some() {
            delivered += 1;
        }
        assert!(delivered < frames.len());
        assert!(reader.buffered() > 0, "a partial frame is pending");
        // Reconnect: the peer starts a fresh stream from the watermark.
        let reader = FrameReader::new();
        assert_eq!(reader.buffered(), 0);
    }
}
