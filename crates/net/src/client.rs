//! The producer client: records events locally, streams them to the
//! server within its credit window, and (optionally) collects the stamps
//! streamed back.
//!
//! The client is a state machine driven by [`step`](ProducerClient::step)
//! — a single non-blocking-capable call that sends what credit allows and
//! processes whatever frames have arrived.  Deterministic tests alternate
//! `step(Some(Duration::ZERO))` with the server's
//! [`service`](crate::NetServer::service) over an in-process pair; the
//! blocking [`finish`](ProducerClient::finish) convenience just loops
//! `step` with a short wait until the server's goodbye arrives.
//!
//! ## Replay log and reconnect
//!
//! Every recorded event stays in a local log until the server
//! acknowledges it via `Credit.acked` (the ingest watermark).  On
//! reconnect the client re-sends `Hello` with its session token and how
//! many stamps it already holds; the server replies with the watermark,
//! and the client replays its log from there.  Events the server already
//! ingested are never re-sent, events it lost in flight are, so the
//! server-side interleaving is exactly what an uninterrupted connection
//! would have produced.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use mvc_clock::VectorTimestamp;
use mvc_trace::OpKind;

use crate::frame::{write_frame, write_stream_header, Frame, FrameReader};
use crate::transport::{Recv, Transport, TransportError};
use crate::NetError;

/// Client-side session parameters.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Names of this producer's threads (local thread `i` = `threads[i]`).
    pub threads: Vec<String>,
    /// Names of the objects it operates on (local object `i` =
    /// `objects[i]`).  Objects are shared across clients *by name*.
    pub objects: Vec<String>,
    /// Whether to request the stamped results back.
    pub want_stamps: bool,
    /// Maximum events per `Events` frame.
    pub events_per_frame: usize,
    /// Send a `StampsAck` every this many newly received stamps (lets the
    /// server prune its retransmit log).
    pub ack_every: u64,
}

impl ClientConfig {
    /// A config with the given registrations and default tuning.
    pub fn new(threads: Vec<String>, objects: Vec<String>, want_stamps: bool) -> Self {
        ClientConfig {
            threads,
            objects,
            want_stamps,
            events_per_frame: 16384,
            ack_every: 8192,
        }
    }
}

/// Registry handles for the client's metrics, resolved once at connect
/// (see docs/OBSERVABILITY.md for the catalogue).
#[derive(Debug)]
struct ClientMetrics {
    /// `net.client.reconnects`: reconnect-and-replay handshakes started.
    reconnects: mvc_obs::Counter,
    /// `net.client.stamp_rtt_ns` (ns): send of an `Events` frame to the
    /// arrival of the stamp that completes it.
    stamp_rtt: mvc_obs::Histogram,
}

impl Default for ClientMetrics {
    fn default() -> Self {
        let registry = mvc_obs::global();
        ClientMetrics {
            reconnects: registry.counter("net.client.reconnects"),
            stamp_rtt: registry.histogram("net.client.stamp_rtt_ns"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Hello sent, waiting for the ack.
    AwaitAck,
    /// Session open, streaming.
    Streaming,
    /// Server goodbye received; the session is complete.
    Done,
}

/// Everything the client ended up with, from
/// [`into_run`](ProducerClient::into_run).
#[derive(Debug, Clone)]
pub struct ClientRun {
    /// Session token assigned by the server.
    pub token: u64,
    /// Total events sent (and acknowledged) in the session.
    pub events: u64,
    /// Stamps received, indexed by the client's event order (empty unless
    /// `want_stamps`).
    pub stamps: Vec<VectorTimestamp>,
    /// Global thread index of each local thread.
    pub thread_ids: Vec<u64>,
    /// Global object index of each local object.
    pub object_ids: Vec<u64>,
    /// Times the session reconnected.
    pub reconnects: u32,
    /// Client-side stamp round-trip latency — send of an `Events` frame
    /// to the arrival of the stamp that completes it — in nanoseconds.
    /// Empty unless `want_stamps`.
    pub stamp_rtt: mvc_obs::HistogramSummary,
}

/// A producer streaming events to a [`NetServer`](crate::NetServer).
#[derive(Debug)]
pub struct ProducerClient<T: Transport> {
    transport: T,
    config: ClientConfig,
    reader: FrameReader,
    phase: Phase,
    token: u64,
    thread_ids: Vec<u64>,
    object_ids: Vec<u64>,
    /// Unacknowledged events; front is event number `log_base`.
    log: VecDeque<(u32, u32, OpKind)>,
    /// Server-acknowledged ingest watermark.
    log_base: u64,
    /// Total events recorded.
    total: u64,
    /// Events sent so far (absolute index; rewound on reconnect).
    sent: u64,
    credit: u64,
    stamps: Vec<VectorTimestamp>,
    last_ack: u64,
    finishing: bool,
    goodbye_sent: bool,
    reconnects: u32,
    scratch: Vec<u8>,
    metrics: ClientMetrics,
    /// Always-on per-client RTT histogram (detached from the registry so
    /// each client's summary is exact even with many clients sharing the
    /// global `net.client.stamp_rtt_ns`).
    rtt: mvc_obs::Histogram,
    /// `(stamp index that completes the frame, send time)` per in-flight
    /// `Events` frame, oldest first.  Cleared on reconnect — an RTT
    /// spanning a reconnect measures the outage, not the pipeline.
    rtt_pending: VecDeque<(u64, Instant)>,
}

impl<T: Transport> ProducerClient<T> {
    /// Opens a session over `transport`: writes the stream header and the
    /// initial `Hello` (does not wait for the ack — the first
    /// [`step`](Self::step) processes it).
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] if the handshake cannot be written.
    pub fn connect(mut transport: T, config: ClientConfig) -> Result<Self, NetError> {
        let mut scratch = Vec::with_capacity(4096);
        write_stream_header(&mut scratch);
        write_frame(
            &mut scratch,
            &Frame::Hello {
                token: 0,
                want_stamps: config.want_stamps,
                stamps_received: 0,
                threads: config.threads.clone(),
                objects: config.objects.clone(),
            },
        );
        transport.send(&scratch)?;
        scratch.clear();
        Ok(ProducerClient {
            transport,
            config,
            reader: FrameReader::new(),
            phase: Phase::AwaitAck,
            token: 0,
            thread_ids: Vec::new(),
            object_ids: Vec::new(),
            log: VecDeque::new(),
            log_base: 0,
            total: 0,
            sent: 0,
            credit: 0,
            stamps: Vec::new(),
            last_ack: 0,
            finishing: false,
            goodbye_sent: false,
            reconnects: 0,
            scratch,
            metrics: ClientMetrics::default(),
            rtt: mvc_obs::Histogram::detached(),
            rtt_pending: VecDeque::new(),
        })
    }

    /// Resumes the session over a fresh transport after a disconnect.
    ///
    /// Replays start from the server's watermark, carried by the
    /// `HelloAck` the next [`step`](Self::step) processes.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] if called before the first ack assigned a
    /// token, [`NetError::Transport`] if the handshake cannot be written.
    pub fn reconnect(&mut self, transport: T) -> Result<(), NetError> {
        if self.token == 0 {
            return Err(NetError::Protocol(
                "cannot reconnect before the first HelloAck assigned a token".to_owned(),
            ));
        }
        self.transport = transport;
        self.reader = FrameReader::new();
        self.phase = Phase::AwaitAck;
        self.credit = 0;
        self.goodbye_sent = false;
        self.reconnects += 1;
        self.metrics.reconnects.inc();
        self.rtt_pending.clear();
        self.scratch.clear();
        write_stream_header(&mut self.scratch);
        write_frame(
            &mut self.scratch,
            &Frame::Hello {
                token: self.token,
                want_stamps: self.config.want_stamps,
                stamps_received: self.stamps.len() as u64,
                threads: self.config.threads.clone(),
                objects: self.config.objects.clone(),
            },
        );
        let result = self.transport.send(&self.scratch);
        self.scratch.clear();
        result.map_err(NetError::from)
    }

    /// Records one event (local thread and object indices).  Purely
    /// local — the next [`step`](Self::step) sends it, credit permitting.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range for the registrations in
    /// the [`ClientConfig`].
    pub fn record(&mut self, thread: usize, object: usize, kind: OpKind) {
        assert!(thread < self.config.threads.len(), "unregistered thread");
        assert!(object < self.config.objects.len(), "unregistered object");
        self.log.push_back((thread as u32, object as u32, kind));
        self.total += 1;
    }

    /// Events recorded but not yet sent on the current connection.
    pub fn backlog(&self) -> u64 {
        self.total - self.sent
    }

    /// Stamps received so far (client event order).
    pub fn stamps(&self) -> &[VectorTimestamp] {
        &self.stamps
    }

    /// Whether the server's goodbye has arrived.
    pub fn is_finished(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Declares the event stream complete: once the backlog drains, the
    /// next [`step`](Self::step) sends `Goodbye` and the session finishes
    /// when the server's goodbye (after all stamps) arrives.
    pub fn request_finish(&mut self) {
        self.finishing = true;
    }

    /// One protocol round: send what credit allows, then read and process
    /// incoming frames.  `wait` bounds the first read (`None` blocks,
    /// `Some(Duration::ZERO)` polls).
    ///
    /// Returns `true` if any bytes moved or frames were processed —
    /// `false` means the caller should wait (for credit, stamps, or the
    /// peer's goodbye) or declare the link dead.
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] when the connection drops (recoverable via
    /// [`reconnect`](Self::reconnect)); [`NetError::Remote`] when the
    /// server reports a session error; [`NetError::Frame`] or
    /// [`NetError::Protocol`] on a corrupt or out-of-order stream.
    pub fn step(&mut self, wait: Option<Duration>) -> Result<bool, NetError> {
        let mut progress = false;
        if self.phase == Phase::Streaming {
            progress |= self.send_ready()?;
        }
        progress |= self.read_frames(wait)?;
        // The ack that opened the stream may have granted credit.
        if self.phase == Phase::Streaming {
            progress |= self.send_ready()?;
        }
        Ok(progress)
    }

    /// Sends as many events as credit allows, plus the goodbye when the
    /// stream is complete.
    fn send_ready(&mut self) -> Result<bool, NetError> {
        let mut progress = false;
        while self.credit > 0 && self.sent < self.total {
            let available = self.total - self.sent;
            let count = available
                .min(self.credit)
                .min(self.config.events_per_frame as u64) as usize;
            let start = (self.sent - self.log_base) as usize;
            let events: Vec<(u32, u32, OpKind)> =
                self.log.iter().skip(start).take(count).copied().collect();
            self.scratch.clear();
            write_frame(&mut self.scratch, &Frame::Events { events });
            self.transport.send(&self.scratch)?;
            self.sent += count as u64;
            self.credit -= count as u64;
            if self.config.want_stamps {
                self.rtt_pending.push_back((self.sent, Instant::now()));
            }
            progress = true;
        }
        if self.finishing && self.sent == self.total && !self.goodbye_sent {
            self.scratch.clear();
            write_frame(&mut self.scratch, &Frame::Goodbye { events: self.total });
            self.transport.send(&self.scratch)?;
            self.goodbye_sent = true;
            progress = true;
        }
        Ok(progress)
    }

    fn read_frames(&mut self, wait: Option<Duration>) -> Result<bool, NetError> {
        let mut progress = false;
        let mut buf = [0u8; 16 * 1024];
        let mut timeout = wait;
        loop {
            match self.transport.recv(&mut buf, timeout) {
                Ok(Recv::Bytes(n)) => {
                    self.reader.feed(&buf[..n]);
                    progress = true;
                }
                Ok(Recv::Empty) => break,
                Ok(Recv::Closed) => {
                    // Process what arrived before the close; the caller
                    // sees the close on its next step.
                    if self.process_buffered()? {
                        return Ok(true);
                    }
                    if self.phase == Phase::Done {
                        return Ok(progress);
                    }
                    return Err(NetError::Transport(TransportError::Closed));
                }
                Err(e) => return Err(NetError::Transport(e)),
            }
            // Only the first read waits; drain the rest without blocking.
            timeout = Some(Duration::ZERO);
        }
        progress |= self.process_buffered()?;
        Ok(progress)
    }

    fn process_buffered(&mut self) -> Result<bool, NetError> {
        let mut progress = false;
        while let Some(frame) = self.reader.try_next()? {
            self.handle_frame(frame)?;
            progress = true;
        }
        Ok(progress)
    }

    fn handle_frame(&mut self, frame: Frame) -> Result<(), NetError> {
        match frame {
            Frame::HelloAck {
                token,
                watermark,
                credit,
                thread_ids,
                object_ids,
            } => {
                if self.phase != Phase::AwaitAck {
                    return Err(NetError::Protocol("unexpected HelloAck".to_owned()));
                }
                if watermark < self.log_base || watermark > self.total {
                    return Err(NetError::Protocol(format!(
                        "server watermark {watermark} outside the client log \
                         ({}..={})",
                        self.log_base, self.total
                    )));
                }
                self.token = token;
                self.thread_ids = thread_ids;
                self.object_ids = object_ids;
                // Everything below the watermark is ingested for good.
                while self.log_base < watermark {
                    self.log.pop_front();
                    self.log_base += 1;
                }
                self.sent = watermark;
                self.credit = credit;
                self.phase = Phase::Streaming;
                Ok(())
            }
            Frame::Stamps { first, stamps } => {
                if first != self.stamps.len() as u64 {
                    return Err(NetError::Protocol(format!(
                        "stamp stream jumped to {first}, expected {}",
                        self.stamps.len()
                    )));
                }
                self.stamps.extend(stamps);
                let received = self.stamps.len() as u64;
                while let Some(&(end, sent_at)) = self.rtt_pending.front() {
                    if end > received {
                        break;
                    }
                    self.rtt_pending.pop_front();
                    let ns = u64::try_from(sent_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    self.rtt.record(ns);
                    self.metrics.stamp_rtt.record(ns);
                }
                if self.stamps.len() as u64 - self.last_ack >= self.config.ack_every {
                    self.last_ack = self.stamps.len() as u64;
                    self.scratch.clear();
                    write_frame(
                        &mut self.scratch,
                        &Frame::StampsAck {
                            received: self.last_ack,
                        },
                    );
                    self.transport.send(&self.scratch)?;
                }
                Ok(())
            }
            Frame::Credit { acked, more } => {
                if acked < self.log_base || acked > self.total {
                    return Err(NetError::Protocol(format!(
                        "server acked {acked} events outside the client log \
                         ({}..={})",
                        self.log_base, self.total
                    )));
                }
                while self.log_base < acked {
                    self.log.pop_front();
                    self.log_base += 1;
                }
                self.credit += more;
                Ok(())
            }
            Frame::Goodbye { events } => {
                if events != self.total {
                    return Err(NetError::Protocol(format!(
                        "server goodbye covers {events} events, client sent {}",
                        self.total
                    )));
                }
                self.phase = Phase::Done;
                Ok(())
            }
            Frame::Error { code, message } => Err(NetError::Remote(code, message)),
            Frame::Hello { .. } | Frame::Events { .. } | Frame::StampsAck { .. } => Err(
                NetError::Protocol("client received a client-only frame".to_owned()),
            ),
        }
    }

    /// Blocking completion for real transports: requests the finish and
    /// loops [`step`](Self::step) with a short wait until the server's
    /// goodbye arrives, then returns the run.
    ///
    /// # Errors
    ///
    /// Any [`NetError`] raised by the remaining protocol rounds
    /// (including a dropped connection — for reconnect-capable loops use
    /// [`step`](Self::step) directly).
    pub fn finish(mut self) -> Result<ClientRun, NetError> {
        self.request_finish();
        while !self.is_finished() {
            self.step(Some(Duration::from_millis(5)))?;
        }
        self.into_run()
    }

    /// Consumes the client, returning the run.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] if the session has not finished.
    pub fn into_run(self) -> Result<ClientRun, NetError> {
        if self.phase != Phase::Done {
            return Err(NetError::Protocol(
                "session has not completed its goodbye handshake".to_owned(),
            ));
        }
        if self.config.want_stamps && self.stamps.len() as u64 != self.total {
            return Err(NetError::Protocol(format!(
                "session finished with {} stamps for {} events",
                self.stamps.len(),
                self.total
            )));
        }
        Ok(ClientRun {
            token: self.token,
            events: self.total,
            stamps: self.stamps,
            thread_ids: self.thread_ids,
            object_ids: self.object_ids,
            reconnects: self.reconnects,
            stamp_rtt: self.rtt.summary(),
        })
    }
}
