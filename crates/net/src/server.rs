//! The timestamping server: N client sessions multiplexed into one
//! merge → engine → sink pipeline.
//!
//! The core, [`NetServer`], is written *sans I/O*: it consumes raw bytes
//! via [`feed`](NetServer::feed), advances the pipeline via
//! [`pump`](NetServer::pump), and produces raw bytes via
//! [`take_outgoing`](NetServer::take_outgoing).  Tests drive it
//! deterministically over [`InProcTransport`](crate::InProcTransport)
//! pairs; [`serve_tcp`] wraps the same core in a thread-per-connection
//! loop behind one mutex.
//!
//! ## Session vs. connection
//!
//! A *session* is a producer's logical stream of events; a *connection* is
//! one transport carrying it.  Sessions survive connection loss: the
//! server keeps the session's ingest watermark, undelivered stamps, and
//! registrations, and a client that reconnects with its token resumes by
//! replaying its log from the `HelloAck` watermark.  Because per-object
//! serialization tickets are assigned once at first ingest and replayed
//! events are dropped below the watermark, the merged interleaving — and
//! therefore every stamp — is bit-for-bit identical to an uninterrupted
//! run.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mvc_clock::{Component, VectorTimestamp};
use mvc_core::{
    EventSink, SinkError, StampedEvent, TimestampReport, Timestamper, TimestampingEngine,
};
use mvc_runtime::{LiveSession, ThreadHandle, TraceSession};
use mvc_shard::ShardedEngine;
use mvc_trace::{ObjectId, OpKind, ThreadId};

use crate::frame::{error_code, write_frame, write_stream_header, Frame, FrameReader};
use crate::transport::{Recv, Transport, TransportError};
use crate::NetError;

/// A [`Timestamper`] the server can grow as clients register objects.
///
/// The server assigns every registered object its own clock component
/// (`Component::Object`), which keeps each event coverable no matter which
/// client's threads touch it — and is the paper-optimal cover for
/// object-dominated workloads.  Implemented for both engines; implement it
/// for your own timestamper to plug it into [`NetServer`].
pub trait ServeEngine: Timestamper + Send {
    /// Ensures `object` is covered by the engine's component map (must be
    /// idempotent).
    fn cover_object(&mut self, object: ObjectId);
}

impl ServeEngine for TimestampingEngine {
    fn cover_object(&mut self, object: ObjectId) {
        self.add_component(Component::Object(object));
    }
}

impl ServeEngine for ShardedEngine {
    fn cover_object(&mut self, object: ObjectId) {
        self.add_component(Component::Object(object));
    }
}

impl ServeEngine for Box<dyn ServeEngine> {
    fn cover_object(&mut self, object: ObjectId) {
        (**self).cover_object(object);
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Send-credit window granted to each session, in events.  Bounds the
    /// server's per-session buffering: a client can never have more than
    /// this many unstamped events in flight.
    pub credit_window: u64,
    /// Maximum stamps packed into one `Stamps` frame.
    pub stamps_per_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            credit_window: 1 << 16,
            stamps_per_frame: 4096,
        }
    }
}

/// Handle to one server-side connection slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(usize);

/// The sink the server wraps around the user's sink: it forwards every
/// stamped batch unchanged and, on success, queues `(thread, stamp)`
/// pairs for threads whose session asked for stamps back.
///
/// On sink error nothing is queued (the queue marker is rolled back), so
/// the pipeline's retry contract keeps server-side stamp delivery exactly
/// as reliable as the sink itself.
struct RouterSink {
    inner: Box<dyn EventSink>,
    /// `wants[global thread index]` — route this thread's stamps back.
    wants: Vec<bool>,
    queue: Vec<(ThreadId, VectorTimestamp)>,
    accepted: usize,
}

impl RouterSink {
    fn new(inner: Box<dyn EventSink>) -> Self {
        RouterSink {
            inner,
            wants: Vec::new(),
            queue: Vec::new(),
            accepted: 0,
        }
    }

    fn set_wants(&mut self, thread: usize, want: bool) {
        if self.wants.len() <= thread {
            self.wants.resize(thread + 1, false);
        }
        self.wants[thread] = want;
    }

    fn wants(&self, thread: ThreadId) -> bool {
        self.wants.get(thread.index()).copied().unwrap_or(false)
    }

    fn drain_queue(&mut self) -> Vec<(ThreadId, VectorTimestamp)> {
        std::mem::take(&mut self.queue)
    }

    fn into_inner(self) -> Box<dyn EventSink> {
        self.inner
    }
}

impl EventSink for RouterSink {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn accept_batch(&mut self, batch: &[StampedEvent]) -> Result<(), SinkError> {
        let mark = self.queue.len();
        for event in batch {
            if self.wants(event.thread) {
                self.queue.push((event.thread, event.timestamp.clone()));
            }
        }
        match self.inner.accept_batch(batch) {
            Ok(()) => {
                self.accepted += batch.len();
                Ok(())
            }
            Err(e) => {
                self.queue.truncate(mark);
                Err(e)
            }
        }
    }

    fn accept_columns(
        &mut self,
        events: &[(ThreadId, ObjectId, OpKind)],
        stamps: &mut Vec<VectorTimestamp>,
    ) -> Result<(), SinkError> {
        let mark = self.queue.len();
        for (&(thread, _, _), stamp) in events.iter().zip(stamps.iter()) {
            if self.wants(thread) {
                self.queue.push((thread, stamp.clone()));
            }
        }
        match self.inner.accept_columns(events, stamps) {
            Ok(()) => {
                self.accepted += events.len();
                Ok(())
            }
            Err(e) => {
                self.queue.truncate(mark);
                Err(e)
            }
        }
    }

    fn flush(&mut self) -> Result<(), SinkError> {
        self.inner.flush()
    }

    fn events_accepted(&self) -> usize {
        self.accepted
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self.inner.as_any()
    }
}

/// Per-session server state (survives connection loss).
#[derive(Debug)]
struct Session {
    token: u64,
    threads: Vec<ThreadHandle>,
    objects: Vec<ObjectId>,
    want_stamps: bool,
    /// Events ingested (the reconnect watermark and `Credit.acked` value).
    ingested: u64,
    /// Remaining send credit.
    credit: u64,
    /// Client's claimed total from its `Goodbye`, once received.
    goodbye_at: Option<u64>,
    done: bool,
    conn: Option<usize>,
    /// Per local thread: session-order indices of its events still
    /// awaiting stamps.  Maps merge-order stamps (which arrive per thread
    /// in ingest order) back to the client's send order.
    pending_seq: Vec<VecDeque<u64>>,
    /// Reorder window: stamps for `slot_base..` not yet contiguous.
    slots: VecDeque<Option<VectorTimestamp>>,
    slot_base: u64,
    /// Contiguous stamps awaiting delivery/acknowledgement;
    /// `stamp_log[0]` is stamp number `stamp_base`.
    stamp_log: VecDeque<VectorTimestamp>,
    stamp_base: u64,
    /// Next stamp index to encode into the connection's outbox.
    next_send: u64,
}

impl Session {
    /// Highest stamp index produced so far (exclusive).
    fn stamps_ready(&self) -> u64 {
        self.stamp_base + self.stamp_log.len() as u64
    }
}

/// Registry handles for the server's session-layer metrics, resolved once
/// at construction so the frame handlers never touch the registry (see
/// docs/OBSERVABILITY.md for the catalogue).
#[derive(Debug)]
struct ServerMetrics {
    /// `net.server.sessions_opened`: fresh sessions created by a Hello.
    sessions_opened: mvc_obs::Counter,
    /// `net.server.sessions_resumed`: successful reconnect-and-replay
    /// handshakes.
    sessions_resumed: mvc_obs::Counter,
    /// `net.server.events_ingested`: events accepted across all sessions.
    events_ingested: mvc_obs::Counter,
    /// `net.server.credit_occupancy` (events): how much of a session's
    /// credit window was in flight when a refill fired.
    credit_occupancy: mvc_obs::Histogram,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        let registry = mvc_obs::global();
        ServerMetrics {
            sessions_opened: registry.counter("net.server.sessions_opened"),
            sessions_resumed: registry.counter("net.server.sessions_resumed"),
            events_ingested: registry.counter("net.server.events_ingested"),
            credit_occupancy: registry.histogram("net.server.credit_occupancy"),
        }
    }
}

/// Per-connection server state.
#[derive(Debug)]
struct Conn {
    reader: FrameReader,
    outbox: Vec<u8>,
    session: Option<usize>,
    open: bool,
}

/// Summary of one session after [`NetServer::finish`].
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// The session's token.
    pub token: u64,
    /// Events ingested from this session.
    pub ingested: u64,
    /// Number of threads the session registered.
    pub threads: usize,
    /// Whether the session ended with a completed goodbye handshake.
    pub completed: bool,
}

/// Everything the server produced, returned by [`NetServer::finish`].
pub struct ServerRun {
    /// The user's sink, with every stamped event fanned into it.
    pub sink: Box<dyn EventSink>,
    /// The engine's final report (clock width, component map, event count).
    pub report: TimestampReport,
    /// Per-session summaries, in session-creation order.
    pub sessions: Vec<SessionSummary>,
}

/// The sans-I/O server core: sessions, framing, backpressure, and the
/// single shared pipeline.
///
/// All methods are synchronous and non-blocking; an I/O layer (the
/// in-process test harness or [`serve_tcp`]) moves bytes between
/// transports and this core.
pub struct NetServer<E: ServeEngine> {
    live: LiveSession<E, RouterSink>,
    config: ServerConfig,
    sessions: Vec<Session>,
    conns: Vec<Conn>,
    tokens: HashMap<u64, usize>,
    object_ids: HashMap<String, ObjectId>,
    /// Next serialization ticket per global object index.
    next_ticket: Vec<u64>,
    /// Global thread index → (session, local thread).
    thread_owner: Vec<(usize, usize)>,
    next_token: u64,
    metrics: ServerMetrics,
}

impl<E: ServeEngine> NetServer<E> {
    /// Creates a server draining into `sink` through `engine`.
    pub fn new(engine: E, sink: Box<dyn EventSink>, config: ServerConfig) -> Self {
        let session = TraceSession::new();
        NetServer {
            live: session.live_with_sink(engine, RouterSink::new(sink)),
            config,
            sessions: Vec::new(),
            conns: Vec::new(),
            tokens: HashMap::new(),
            object_ids: HashMap::new(),
            next_ticket: Vec::new(),
            thread_owner: Vec::new(),
            next_token: 1,
            metrics: ServerMetrics::default(),
        }
    }

    /// Registers a new connection and queues the server's stream header.
    pub fn connect(&mut self) -> ConnId {
        let id = self.conns.len();
        let mut outbox = Vec::with_capacity(64);
        write_stream_header(&mut outbox);
        self.conns.push(Conn {
            reader: FrameReader::new(),
            outbox,
            session: None,
            open: true,
        });
        ConnId(id)
    }

    /// Whether the connection is still open (has not errored, closed, or
    /// finished its session).
    pub fn is_open(&self, conn: ConnId) -> bool {
        self.conns[conn.0].open
    }

    /// Sessions that have completed their goodbye handshake.
    pub fn sessions_done(&self) -> usize {
        self.sessions.iter().filter(|s| s.done).count()
    }

    /// Connections still open.
    pub fn conns_open(&self) -> usize {
        self.conns.iter().filter(|c| c.open).count()
    }

    /// Marks a connection dead (transport closed or failed).  Its
    /// session, if any, is detached and can be resumed by a reconnect;
    /// any half-received frame is discarded with the reader.
    pub fn disconnect(&mut self, conn: ConnId) {
        let c = &mut self.conns[conn.0];
        c.open = false;
        if let Some(sid) = c.session.take() {
            self.sessions[sid].conn = None;
        }
    }

    /// Consumes raw bytes from a connection, decoding and handling every
    /// complete frame.
    ///
    /// Protocol violations do not return an error: they queue an
    /// [`Frame::Error`] on the offending connection and close it (the
    /// session stays resumable).  Only pipeline failures — which poison
    /// the shared run — surface as [`NetError`].
    ///
    /// # Errors
    ///
    /// [`NetError::Pipeline`] if the shared pipeline fails.
    pub fn feed(&mut self, conn: ConnId, bytes: &[u8]) -> Result<(), NetError> {
        if !self.conns[conn.0].open {
            return Ok(());
        }
        self.conns[conn.0].reader.feed(bytes);
        loop {
            let next = self.conns[conn.0].reader.try_next();
            match next {
                Ok(Some(frame)) => {
                    if let Err(violation) = self.handle_frame(conn, frame) {
                        self.fail_conn(conn, error_code::PROTOCOL, &violation);
                        return Ok(());
                    }
                }
                Ok(None) => return Ok(()),
                Err(e) => {
                    self.fail_conn(conn, error_code::PROTOCOL, &e.to_string());
                    return Ok(());
                }
            }
        }
    }

    /// Queues an error frame on the connection and closes it, detaching
    /// (but keeping) its session.
    fn fail_conn(&mut self, conn: ConnId, code: u8, message: &str) {
        let c = &mut self.conns[conn.0];
        if !c.open {
            return;
        }
        write_frame(
            &mut c.outbox,
            &Frame::Error {
                code,
                message: message.to_owned(),
            },
        );
        c.open = false;
        if let Some(sid) = c.session.take() {
            self.sessions[sid].conn = None;
        }
    }

    fn handle_frame(&mut self, conn: ConnId, frame: Frame) -> Result<(), String> {
        match frame {
            Frame::Hello {
                token,
                want_stamps,
                stamps_received,
                threads,
                objects,
            } => self.handle_hello(conn, token, want_stamps, stamps_received, threads, objects),
            Frame::Events { events } => self.handle_events(conn, &events),
            Frame::StampsAck { received } => self.handle_stamps_ack(conn, received),
            Frame::Goodbye { events } => self.handle_goodbye(conn, events),
            Frame::Error { .. } => {
                // Client-side failure: treat as a disconnect.
                self.disconnect(conn);
                Ok(())
            }
            Frame::HelloAck { .. } | Frame::Stamps { .. } | Frame::Credit { .. } => {
                Err("server received a server-only frame".to_owned())
            }
        }
    }

    fn session_of(&self, conn: ConnId) -> Result<usize, String> {
        self.conns[conn.0]
            .session
            .ok_or_else(|| "frame before Hello".to_owned())
    }

    fn handle_hello(
        &mut self,
        conn: ConnId,
        token: u64,
        want_stamps: bool,
        stamps_received: u64,
        threads: Vec<String>,
        objects: Vec<String>,
    ) -> Result<(), String> {
        if self.conns[conn.0].session.is_some() {
            return Err("second Hello on one connection".to_owned());
        }
        let sid = if token == 0 {
            self.open_session(want_stamps, &threads, &objects)
        } else {
            self.resume_session(token, want_stamps, stamps_received, &threads, &objects)?
        };
        self.conns[conn.0].session = Some(sid);
        self.sessions[sid].conn = Some(conn.0);
        let session = &self.sessions[sid];
        let ack = Frame::HelloAck {
            token: session.token,
            watermark: session.ingested,
            credit: session.credit,
            thread_ids: session
                .threads
                .iter()
                .map(|h| h.id().index() as u64)
                .collect(),
            object_ids: session.objects.iter().map(|o| o.index() as u64).collect(),
        };
        write_frame(&mut self.conns[conn.0].outbox, &ack);
        Ok(())
    }

    fn open_session(&mut self, want_stamps: bool, threads: &[String], objects: &[String]) -> usize {
        self.metrics.sessions_opened.inc();
        let sid = self.sessions.len();
        let token = self.next_token;
        self.next_token += 1;
        self.tokens.insert(token, sid);
        let mut handles = Vec::with_capacity(threads.len());
        for (local, name) in threads.iter().enumerate() {
            let handle = self.live.register_thread(&format!("s{token}/{name}"));
            let global = handle.id().index();
            if self.thread_owner.len() <= global {
                self.thread_owner.resize(global + 1, (usize::MAX, 0));
            }
            self.thread_owner[global] = (sid, local);
            self.live.sink_mut().set_wants(global, want_stamps);
            handles.push(handle);
        }
        let mut object_ids = Vec::with_capacity(objects.len());
        for name in objects {
            let id = match self.object_ids.entry(name.clone()) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let id = self.live.register_object(name);
                    // Objects get dense ids in registration order, so the
                    // ticket table grows in lock-step.
                    debug_assert_eq!(id.index(), self.next_ticket.len());
                    self.next_ticket.push(0);
                    self.live.timestamper_mut().cover_object(id);
                    *e.insert(id)
                }
            };
            object_ids.push(id);
        }
        self.sessions.push(Session {
            token,
            threads: handles,
            objects: object_ids,
            want_stamps,
            ingested: 0,
            credit: self.config.credit_window,
            goodbye_at: None,
            done: false,
            conn: None,
            pending_seq: vec![VecDeque::new(); threads.len()],
            slots: VecDeque::new(),
            slot_base: 0,
            stamp_log: VecDeque::new(),
            stamp_base: 0,
            next_send: 0,
        });
        sid
    }

    fn resume_session(
        &mut self,
        token: u64,
        want_stamps: bool,
        stamps_received: u64,
        threads: &[String],
        objects: &[String],
    ) -> Result<usize, String> {
        let sid = *self
            .tokens
            .get(&token)
            .ok_or_else(|| format!("unknown session token {token}"))?;
        let session = &mut self.sessions[sid];
        if session.conn.is_some() {
            return Err(format!("session {token} is already connected"));
        }
        if session.done {
            return Err(format!("session {token} already completed"));
        }
        if session.threads.len() != threads.len()
            || session.objects.len() != objects.len()
            || session.want_stamps != want_stamps
        {
            return Err(format!(
                "session {token} resumed with different registrations"
            ));
        }
        if stamps_received > session.stamps_ready() {
            return Err(format!(
                "session {token} claims {stamps_received} stamps received, only {} were produced",
                session.stamps_ready()
            ));
        }
        if stamps_received < session.stamp_base {
            return Err(format!(
                "session {token} claims {stamps_received} stamps received, already acknowledged {}",
                session.stamp_base
            ));
        }
        // The client definitely holds everything below `stamps_received`:
        // prune, and restart the stamp stream from there.
        while session.stamp_base < stamps_received {
            session.stamp_log.pop_front();
            session.stamp_base += 1;
        }
        session.next_send = stamps_received;
        // Credit in flight on the dead connection is void; grant a fresh
        // window (the HelloAck carries it).
        session.credit = self.config.credit_window;
        self.metrics.sessions_resumed.inc();
        Ok(sid)
    }

    fn handle_events(&mut self, conn: ConnId, events: &[(u32, u32, OpKind)]) -> Result<(), String> {
        let sid = self.session_of(conn)?;
        let session = &mut self.sessions[sid];
        if session.goodbye_at.is_some() {
            return Err("events after Goodbye".to_owned());
        }
        let n = events.len() as u64;
        if n > session.credit {
            return Err(format!(
                "credit exceeded: {n} events sent, {} allowed",
                session.credit
            ));
        }
        for &(local_thread, local_object, kind) in events {
            let handle = session
                .threads
                .get(local_thread as usize)
                .ok_or_else(|| format!("unknown local thread {local_thread}"))?;
            let object = *session
                .objects
                .get(local_object as usize)
                .ok_or_else(|| format!("unknown local object {local_object}"))?;
            // Serialization ticket drawn at ingress, in arrival order —
            // the transport preserves each client's send order and the
            // server mutex serialises clients, so tickets are dense and
            // published in order (the merge can never stall).
            let ticket = self.next_ticket[object.index()];
            self.next_ticket[object.index()] += 1;
            handle.record_sequenced(object, kind, ticket);
            if session.want_stamps {
                session.pending_seq[local_thread as usize].push_back(session.ingested);
            }
            session.ingested += 1;
        }
        session.credit -= n;
        self.metrics.events_ingested.add(n);
        Ok(())
    }

    fn handle_stamps_ack(&mut self, conn: ConnId, received: u64) -> Result<(), String> {
        let sid = self.session_of(conn)?;
        let session = &mut self.sessions[sid];
        if received > session.next_send {
            return Err(format!(
                "acknowledged {received} stamps, only {} were sent",
                session.next_send
            ));
        }
        while session.stamp_base < received {
            session.stamp_log.pop_front();
            session.stamp_base += 1;
        }
        Ok(())
    }

    fn handle_goodbye(&mut self, conn: ConnId, events: u64) -> Result<(), String> {
        let sid = self.session_of(conn)?;
        let session = &mut self.sessions[sid];
        if events != session.ingested {
            return Err(format!(
                "goodbye claims {events} events, server ingested {}",
                session.ingested
            ));
        }
        session.goodbye_at = Some(events);
        Ok(())
    }

    /// Advances the shared pipeline and refreshes every connected
    /// session's outbox: newly produced stamps, credit refills, and
    /// goodbye completions.
    ///
    /// Returns the number of events drained through the pipeline by this
    /// call.
    ///
    /// # Errors
    ///
    /// [`NetError::Pipeline`] if the pipeline fails; the error is fatal
    /// for the whole server (the I/O layer should stop).
    pub fn pump(&mut self) -> Result<usize, NetError> {
        let drained = self
            .live
            .pump()
            .map_err(|e| NetError::Pipeline(e.to_string()))?;
        self.route_stamps()?;
        self.flush_sessions();
        Ok(drained)
    }

    /// Demultiplexes stamps queued by the router back to their sessions,
    /// reordering from merge order to each client's send order.
    fn route_stamps(&mut self) -> Result<(), NetError> {
        let routed = self.live.sink_mut().drain_queue();
        for (thread, stamp) in routed {
            let (sid, local_thread) = *self
                .thread_owner
                .get(thread.index())
                .filter(|(sid, _)| *sid != usize::MAX)
                .ok_or_else(|| {
                    NetError::Pipeline(format!("stamp for unrouted thread {}", thread.index()))
                })?;
            let session = &mut self.sessions[sid];
            let seq = session.pending_seq[local_thread]
                .pop_front()
                .ok_or_else(|| {
                    NetError::Pipeline(format!("stamp without a pending event on session {sid}"))
                })?;
            let idx = (seq - session.slot_base) as usize;
            if session.slots.len() <= idx {
                session.slots.resize(idx + 1, None);
            }
            session.slots[idx] = Some(stamp);
            while let Some(stamp) = session.slots.front_mut().and_then(Option::take) {
                session.slots.pop_front();
                session.stamp_log.push_back(stamp);
                session.slot_base += 1;
            }
        }
        Ok(())
    }

    /// Encodes pending stamps, credit refills, and goodbye completions
    /// into each connected session's outbox.
    fn flush_sessions(&mut self) {
        let window = self.config.credit_window;
        let per_frame = self.config.stamps_per_frame;
        for session in &mut self.sessions {
            let Some(conn) = session.conn else { continue };
            let conn = &mut self.conns[conn];
            if !conn.open {
                continue;
            }
            // Stream newly produced stamps.
            while session.next_send < session.stamps_ready() {
                let start = (session.next_send - session.stamp_base) as usize;
                let count = (session.stamp_log.len() - start).min(per_frame);
                let stamps: Vec<VectorTimestamp> = session
                    .stamp_log
                    .iter()
                    .skip(start)
                    .take(count)
                    .cloned()
                    .collect();
                write_frame(
                    &mut conn.outbox,
                    &Frame::Stamps {
                        first: session.next_send,
                        stamps,
                    },
                );
                session.next_send += count as u64;
            }
            // Refill credit once half the window is consumed.
            if session.goodbye_at.is_none() && session.credit < window / 2 {
                let more = window - session.credit;
                // `more` is exactly the occupancy (events in flight) at
                // the moment the refill fires.
                self.metrics.credit_occupancy.record(more);
                session.credit += more;
                write_frame(
                    &mut conn.outbox,
                    &Frame::Credit {
                        acked: session.ingested,
                        more,
                    },
                );
            }
            // Goodbye completion: everything ingested and (if requested)
            // every stamp encoded for delivery.
            if let Some(total) = session.goodbye_at {
                let stamps_flushed = !session.want_stamps || session.next_send == total;
                if session.ingested == total && stamps_flushed && !session.done {
                    write_frame(&mut conn.outbox, &Frame::Goodbye { events: total });
                    session.done = true;
                    conn.open = false;
                    conn.session = None;
                    session.conn = None;
                }
            }
        }
    }

    /// Takes the bytes queued for a connection (empties its outbox).
    pub fn take_outgoing(&mut self, conn: ConnId) -> Vec<u8> {
        std::mem::take(&mut self.conns[conn.0].outbox)
    }

    /// One non-blocking I/O round for a connection: drain the transport
    /// into [`feed`](Self::feed), [`pump`](Self::pump), and write the
    /// outbox back.  The building block for single-threaded harnesses;
    /// [`serve_tcp`] uses the same sequence with blocking reads.
    ///
    /// # Errors
    ///
    /// [`NetError::Pipeline`] if the pipeline fails, or
    /// [`NetError::Transport`] if writing the outbox fails for a reason
    /// other than a close.
    pub fn service(&mut self, conn: ConnId, transport: &mut dyn Transport) -> Result<(), NetError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match transport.recv(&mut buf, Some(Duration::ZERO)) {
                Ok(Recv::Bytes(n)) => self.feed(conn, &buf[..n])?,
                Ok(Recv::Empty) => break,
                Ok(Recv::Closed) | Err(TransportError::Closed) => {
                    self.disconnect(conn);
                    break;
                }
                Err(e) => {
                    self.disconnect(conn);
                    return Err(NetError::Transport(e));
                }
            }
        }
        self.pump()?;
        let out = self.take_outgoing(conn);
        if !out.is_empty() {
            match transport.send(&out) {
                Ok(()) => {}
                Err(TransportError::Closed) => self.disconnect(conn),
                Err(e) => {
                    self.disconnect(conn);
                    return Err(NetError::Transport(e));
                }
            }
        }
        Ok(())
    }

    /// Drains everything still buffered and returns the sink, the
    /// engine's report, and per-session summaries.
    ///
    /// # Errors
    ///
    /// [`NetError::Pipeline`] if the final drain fails.
    pub fn finish(mut self) -> Result<ServerRun, NetError> {
        self.pump()?;
        let summaries: Vec<SessionSummary> = self
            .sessions
            .iter()
            .map(|s| SessionSummary {
                token: s.token,
                ingested: s.ingested,
                threads: s.threads.len(),
                completed: s.done,
            })
            .collect();
        let (router, report) = self
            .live
            .finish_into_sink()
            .map_err(|(_, e)| NetError::Pipeline(e.to_string()))?;
        Ok(ServerRun {
            sink: router.into_inner(),
            report,
            sessions: summaries,
        })
    }
}

// ---------------------------------------------------------------------------
// TCP serving loop
// ---------------------------------------------------------------------------

struct Shared<E: ServeEngine> {
    server: parking_lot::Mutex<NetServer<E>>,
    fail: parking_lot::Mutex<Option<NetError>>,
    done: AtomicBool,
}

/// Serves connections accepted on `listener` until `expected_sessions`
/// sessions have completed their goodbye handshake, then finishes the
/// pipeline and returns the run.
///
/// Thread-per-connection: each accepted socket gets a handler thread that
/// drives the shared [`NetServer`] core behind one mutex.  Handler reads
/// use a short timeout *outside* the lock, so one client's stall never
/// blocks another's stamp or credit flushing.
///
/// # Errors
///
/// [`NetError::Io`] for listener failures, or the first fatal pipeline
/// error raised by any handler.
pub fn serve_tcp<E: ServeEngine + 'static>(
    listener: TcpListener,
    server: NetServer<E>,
    expected_sessions: usize,
) -> Result<ServerRun, NetError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| NetError::Io(e.to_string()))?;
    let shared = Arc::new(Shared {
        server: parking_lot::Mutex::new(server),
        fail: parking_lot::Mutex::new(None),
        done: AtomicBool::new(false),
    });
    let mut workers = Vec::new();
    loop {
        {
            let server = shared.server.lock();
            if server.sessions_done() >= expected_sessions && server.conns_open() == 0 {
                break;
            }
        }
        if shared.fail.lock().is_some() {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let shared = Arc::clone(&shared);
                workers.push(std::thread::spawn(move || {
                    handle_conn(&shared, crate::TcpTransport::new(stream));
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                *shared.fail.lock() = Some(NetError::Io(e.to_string()));
                break;
            }
        }
    }
    // Release pairs with the Acquire load in `handle_conn`: a handler that
    // observes `done` also observes every write the accept loop made first.
    shared.done.store(true, Ordering::Release);
    for worker in workers {
        let _ = worker.join();
    }
    let shared = Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!("all workers joined"));
    if let Some(err) = shared.fail.into_inner() {
        return Err(err);
    }
    shared.server.into_inner().finish()
}

fn handle_conn<E: ServeEngine>(shared: &Shared<E>, mut transport: crate::TcpTransport) {
    let conn = shared.server.lock().connect();
    let mut buf = vec![0u8; 256 * 1024];
    let mut staged = Vec::with_capacity(512 * 1024);
    loop {
        if shared.done.load(Ordering::Acquire) {
            shared.server.lock().disconnect(conn);
            return;
        }
        // Block on the socket *outside* the lock so other handlers can
        // pump the shared pipeline meanwhile; once bytes arrive, drain
        // everything already queued without blocking, so one lock + one
        // pump covers the whole burst instead of one per 64 KiB chunk.
        staged.clear();
        let mut closed = false;
        let mut error = None;
        match transport.recv(&mut buf, Some(Duration::from_millis(5))) {
            Ok(Recv::Bytes(n)) => {
                staged.extend_from_slice(&buf[..n]);
                while staged.len() < (1 << 20) {
                    match transport.recv(&mut buf, Some(Duration::ZERO)) {
                        Ok(Recv::Bytes(n)) => staged.extend_from_slice(&buf[..n]),
                        Ok(Recv::Empty) => break,
                        Ok(Recv::Closed) | Err(TransportError::Closed) => {
                            closed = true;
                            break;
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
            }
            Ok(Recv::Empty) => {}
            Ok(Recv::Closed) | Err(TransportError::Closed) => closed = true,
            Err(e) => error = Some(e),
        }
        let mut server = shared.server.lock();
        let step = (|| -> Result<(Vec<u8>, bool), NetError> {
            if !staged.is_empty() {
                server.feed(conn, &staged)?;
            }
            if let Some(e) = error {
                server.disconnect(conn);
                return Err(NetError::Transport(e));
            }
            if closed {
                server.disconnect(conn);
            }
            server.pump()?;
            Ok((server.take_outgoing(conn), server.is_open(conn)))
        })();
        drop(server);
        match step {
            Ok((out, open)) => {
                if !out.is_empty() && transport.send(&out).is_err() {
                    shared.server.lock().disconnect(conn);
                    return;
                }
                if !open {
                    // Graceful close: the session completed and the final
                    // Goodbye is written.  A trailing client frame (a
                    // `StampsAck` crossing the Goodbye on the wire) may
                    // still be unread; closing now would turn it into an
                    // RST that can destroy the Goodbye before the client
                    // reads it.  Drain until the client closes its end
                    // (bounded, in case it never does).
                    for _ in 0..200 {
                        match transport.recv(&mut buf, Some(Duration::from_millis(5))) {
                            Ok(Recv::Bytes(_) | Recv::Empty) => {}
                            Ok(Recv::Closed) | Err(_) => break,
                        }
                    }
                    return;
                }
            }
            Err(err) => {
                let mut fail = shared.fail.lock();
                if fail.is_none() {
                    *fail = Some(err);
                }
                return;
            }
        }
    }
}
