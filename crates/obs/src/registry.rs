//! The named-metric registry.
//!
//! A [`Registry`] maps stable dotted names (`pipeline.stamp_ns`,
//! `net.frames_sent`) to shared metric cells. Handles are resolved **once**
//! at construction time — the only lock in the crate guards the name table,
//! and it is taken at registration and snapshot time, never on record.
//!
//! Each registry carries one `enabled` flag shared by every handle it
//! issues. The process-global registry ([`global`](crate::global)) starts
//! disabled, so permanently instrumented hot paths cost one `Relaxed` load
//! and a predictable branch until a harness opts in with
//! [`Registry::set_enabled`].

use std::sync::atomic::AtomicBool;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex, PoisonError};

use crate::cell::{Counter, CounterCell, Gauge, GaugeCell, Histogram, HistogramCell};
use crate::snapshot::{Snapshot, SnapshotEntry, SnapshotValue};

/// The storage behind one registered name.
enum MetricCell {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

/// One registered metric.
struct MetricEntry {
    name: String,
    cell: MetricCell,
}

/// A named-metric table issuing [`Counter`] / [`Gauge`] / [`Histogram`]
/// handles that share its enabled flag.
///
/// Cloning a registry clones the handle to one shared table, so a clone
/// sees (and toggles) the same metrics.
#[derive(Clone)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    metrics: Arc<Mutex<Vec<MetricEntry>>>,
}

impl Registry {
    /// An enabled registry (private harnesses, tests).
    pub fn new() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            metrics: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A disabled registry — the process-global default. Handles record
    /// nothing (one `Relaxed` load + branch) until
    /// [`set_enabled`](Self::set_enabled)`(true)`.
    pub fn disabled() -> Self {
        let registry = Self::new();
        registry.enabled.store(false, Relaxed);
        registry
    }

    /// Whether handles issued by this registry currently record.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Turns recording on or off for every handle this registry issued
    /// (past and future). Cells keep their accumulated values across
    /// toggles.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Resolves (registering on first use) the counter named `name`.
    ///
    /// All handles resolved under one name share one cell. If `name` is
    /// already registered as a different metric kind, a detached
    /// always-enabled counter is returned instead of clobbering it — the
    /// caller keeps working, the registry keeps its invariant that a name
    /// has exactly one kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = metrics.iter().find(|e| e.name == name) {
            return match &entry.cell {
                MetricCell::Counter(cell) => {
                    Counter::from_parts(Arc::clone(&self.enabled), Arc::clone(cell))
                }
                _ => Counter::detached(),
            };
        }
        let cell = Arc::new(CounterCell::new());
        metrics.push(MetricEntry {
            name: name.to_string(),
            cell: MetricCell::Counter(Arc::clone(&cell)),
        });
        Counter::from_parts(Arc::clone(&self.enabled), cell)
    }

    /// Resolves (registering on first use) the gauge named `name`; same
    /// kind-mismatch contract as [`counter`](Self::counter).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = metrics.iter().find(|e| e.name == name) {
            return match &entry.cell {
                MetricCell::Gauge(cell) => {
                    Gauge::from_parts(Arc::clone(&self.enabled), Arc::clone(cell))
                }
                _ => Gauge::detached(),
            };
        }
        let cell = Arc::new(GaugeCell::new());
        metrics.push(MetricEntry {
            name: name.to_string(),
            cell: MetricCell::Gauge(Arc::clone(&cell)),
        });
        Gauge::from_parts(Arc::clone(&self.enabled), cell)
    }

    /// Resolves (registering on first use) the histogram named `name`;
    /// same kind-mismatch contract as [`counter`](Self::counter).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = metrics.iter().find(|e| e.name == name) {
            return match &entry.cell {
                MetricCell::Histogram(cell) => {
                    Histogram::from_parts(Arc::clone(&self.enabled), Arc::clone(cell))
                }
                _ => Histogram::detached(),
            };
        }
        let cell = Arc::new(HistogramCell::new());
        metrics.push(MetricEntry {
            name: name.to_string(),
            cell: MetricCell::Histogram(Arc::clone(&cell)),
        });
        Histogram::from_parts(Arc::clone(&self.enabled), cell)
    }

    /// Publishes an existing counter (typically a
    /// [`Counter::detached`] cell owned by a sink) under `name`,
    /// replacing whatever that name held. Snapshots then read the
    /// adopted cell; the donor handle keeps its own enabled flag.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let cell = MetricCell::Counter(counter.cell());
        if let Some(entry) = metrics.iter_mut().find(|e| e.name == name) {
            entry.cell = cell;
        } else {
            metrics.push(MetricEntry {
                name: name.to_string(),
                cell,
            });
        }
    }

    /// Publishes an existing gauge under `name`; see
    /// [`adopt_counter`](Self::adopt_counter).
    pub fn adopt_gauge(&self, name: &str, gauge: &Gauge) {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let cell = MetricCell::Gauge(gauge.cell());
        if let Some(entry) = metrics.iter_mut().find(|e| e.name == name) {
            entry.cell = cell;
        } else {
            metrics.push(MetricEntry {
                name: name.to_string(),
                cell,
            });
        }
    }

    /// Publishes an existing histogram under `name`; see
    /// [`adopt_counter`](Self::adopt_counter).
    pub fn adopt_histogram(&self, name: &str, histogram: &Histogram) {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let cell = MetricCell::Histogram(histogram.cell());
        if let Some(entry) = metrics.iter_mut().find(|e| e.name == name) {
            entry.cell = cell;
        } else {
            metrics.push(MetricEntry {
                name: name.to_string(),
                cell,
            });
        }
    }

    /// Takes a point-in-time view of every registered metric, sorted by
    /// name. Shards are merged here — the snapshot side pays the sum, the
    /// record side never does.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let mut entries: Vec<SnapshotEntry> = metrics
            .iter()
            .map(|entry| SnapshotEntry {
                name: entry.name.clone(),
                value: match &entry.cell {
                    MetricCell::Counter(cell) => SnapshotValue::Counter(cell.value()),
                    MetricCell::Gauge(cell) => SnapshotValue::Gauge(cell.value()),
                    MetricCell::Histogram(cell) => {
                        SnapshotValue::Histogram(Box::new(cell.summary()))
                    }
                },
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { entries }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_resolved_under_one_name_share_one_cell() {
        let registry = Registry::new();
        let a = registry.counter("hits");
        let b = registry.counter("hits");
        a.add(2);
        b.add(3);
        assert_eq!(registry.snapshot().counter("hits"), Some(5));
    }

    #[test]
    fn disabling_stops_recording_but_keeps_totals() {
        let registry = Registry::new();
        let c = registry.counter("hits");
        c.add(2);
        registry.set_enabled(false);
        c.add(100);
        assert!(!registry.enabled());
        assert_eq!(registry.snapshot().counter("hits"), Some(2));
        registry.set_enabled(true);
        c.inc();
        assert_eq!(registry.snapshot().counter("hits"), Some(3));
    }

    #[test]
    fn kind_mismatch_returns_a_detached_cell_not_a_clobbered_table() {
        let registry = Registry::new();
        registry.counter("x").add(1);
        let g = registry.gauge("x");
        g.set(9);
        assert_eq!(registry.snapshot().counter("x"), Some(1));
        assert_eq!(g.value(), 9, "the detached gauge still works locally");
    }

    #[test]
    fn adopted_cells_appear_in_snapshots() {
        let registry = Registry::disabled();
        let own = Counter::detached();
        own.add(7);
        registry.adopt_counter("sink.events", &own);
        // Detached cells keep counting even while the registry is off.
        own.add(1);
        assert_eq!(registry.snapshot().counter("sink.events"), Some(8));
        // Re-adoption replaces the cell.
        let other = Counter::detached();
        other.add(2);
        registry.adopt_counter("sink.events", &other);
        assert_eq!(registry.snapshot().counter("sink.events"), Some(2));
    }

    #[test]
    fn snapshots_are_sorted_by_name() {
        let registry = Registry::new();
        registry.counter("b");
        registry.counter("a");
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
