//! Lock-free metric cells: sharded counters, gauges, log₂ histograms, and
//! span timers.
//!
//! Recording never takes a lock and never allocates. Counters and histograms
//! stripe their state across [`SHARDS`] cache-line-padded shards; each OS
//! thread is assigned one shard lazily (round-robin over a process-global
//! counter) and all of its `Relaxed` read-modify-writes land there, so two
//! recording threads touch the same cache line only when the thread count
//! exceeds the shard count. Shards are merged on snapshot — the one place a
//! total is computed — which is what makes per-event recording cheap enough
//! to leave on permanently.
//!
//! Every handle carries a shared `enabled` flag (its registry's, or a
//! private always-on flag for [`Counter::detached`]-style cells). A disabled
//! handle's record path is one `Relaxed` load and a branch; span timers
//! additionally skip the `Instant::now()` calls entirely.

use std::cell::Cell;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize};
use std::sync::Arc;
use std::time::Instant;

use crate::snapshot::HistogramSummary;

/// Number of per-thread stripes in a counter or histogram cell.
pub const SHARDS: usize = 16;

/// Number of log₂ latency buckets in a histogram.
///
/// Bucket `0` holds exact zeros; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b - 1]`; the last bucket additionally absorbs everything
/// from `2^62` up.
pub const BUCKETS: usize = 64;

/// Round-robin source for thread → shard assignment.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's assigned shard, or `usize::MAX` before first use.
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Returns the calling thread's shard index, assigning one on first use.
fn shard_index() -> usize {
    THREAD_SHARD.with(|slot| {
        let cached = slot.get();
        if cached != usize::MAX {
            return cached;
        }
        let assigned = NEXT_SHARD.fetch_add(1, Relaxed) % SHARDS;
        slot.set(assigned);
        assigned
    })
}

/// One cache line's worth of counter state, so neighbouring shards never
/// false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// The shared storage behind one [`Counter`] handle.
pub(crate) struct CounterCell {
    shards: [PaddedU64; SHARDS],
}

impl CounterCell {
    pub(crate) fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    #[inline]
    fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Relaxed);
    }

    pub(crate) fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// A monotonically increasing event count.
///
/// Handles are cheap to clone (two `Arc`s) and all clones share one cell;
/// resolve the handle once at construction and call [`Counter::inc`] /
/// [`Counter::add`] from the hot path.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<CounterCell>,
}

impl Counter {
    pub(crate) fn from_parts(enabled: Arc<AtomicBool>, cell: Arc<CounterCell>) -> Self {
        Self { enabled, cell }
    }

    /// A counter attached to no registry, always enabled.
    ///
    /// Use this for per-instance exact counts (e.g. a sink's own figures)
    /// that must keep counting whether or not process-wide metrics are on;
    /// publish it into a registry later with
    /// [`Registry::adopt_counter`](crate::Registry::adopt_counter).
    pub fn detached() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            cell: Arc::new(CounterCell::new()),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op (one `Relaxed` load + branch) while disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Relaxed) {
            self.cell.add(n);
        }
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.cell.value()
    }

    pub(crate) fn cell(&self) -> Arc<CounterCell> {
        Arc::clone(&self.cell)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.value())
            .finish()
    }
}

/// The shared storage behind one [`Gauge`] handle.
///
/// Gauges are set at batch granularity (queue depths, windows in flight),
/// not per event, so a single unsharded atomic is the right trade.
pub(crate) struct GaugeCell {
    value: AtomicI64,
}

impl GaugeCell {
    pub(crate) fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    pub(crate) fn value(&self) -> i64 {
        self.value.load(Relaxed)
    }
}

/// An instantaneous level: queue depth, credit occupancy, chunks in flight.
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<GaugeCell>,
}

impl Gauge {
    pub(crate) fn from_parts(enabled: Arc<AtomicBool>, cell: Arc<GaugeCell>) -> Self {
        Self { enabled, cell }
    }

    /// A gauge attached to no registry, always enabled.
    pub fn detached() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            cell: Arc::new(GaugeCell::new()),
        }
    }

    /// Overwrites the level. A no-op while disabled.
    #[inline]
    pub fn set(&self, value: i64) {
        if self.enabled.load(Relaxed) {
            self.cell.value.store(value, Relaxed);
        }
    }

    /// Moves the level by `delta` (negative to decrease). A no-op while
    /// disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Relaxed) {
            self.cell.value.fetch_add(delta, Relaxed);
        }
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.cell.value()
    }

    pub(crate) fn cell(&self) -> Arc<GaugeCell> {
        Arc::clone(&self.cell)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.value())
            .finish()
    }
}

/// Maps a recorded value to its log₂ bucket.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The largest value bucket `bucket` can hold (`u64::MAX` for the last,
/// open-ended bucket).
pub fn bucket_upper_edge(bucket: usize) -> u64 {
    if bucket >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// One shard of histogram state. No `#[repr(align)]`: at 66 words a shard
/// already spans several cache lines, so padding would only waste memory.
struct HistogramShard {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramShard {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The shared storage behind one [`Histogram`] handle.
pub(crate) struct HistogramCell {
    shards: [HistogramShard; SHARDS],
}

impl HistogramCell {
    pub(crate) fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| HistogramShard::new()),
        }
    }

    #[inline]
    fn record(&self, value: u64) {
        let shard = &self.shards[shard_index()];
        shard.count.fetch_add(1, Relaxed);
        shard.sum.fetch_add(value, Relaxed);
        shard.buckets[bucket_index(value)].fetch_add(1, Relaxed);
    }

    /// Merges every shard into one summary (the snapshot-side total).
    pub(crate) fn summary(&self) -> HistogramSummary {
        let mut out = HistogramSummary::empty();
        for shard in &self.shards {
            out.count = out.count.wrapping_add(shard.count.load(Relaxed));
            out.sum = out.sum.wrapping_add(shard.sum.load(Relaxed));
            for (total, bucket) in out.buckets.iter_mut().zip(shard.buckets.iter()) {
                *total = total.wrapping_add(bucket.load(Relaxed));
            }
        }
        out
    }
}

/// A log₂-bucketed value distribution — latencies in nanoseconds, batch
/// sizes in events.
///
/// Recording rounds the value up to its power-of-two bucket; quantiles read
/// from a [`HistogramSummary`] are therefore upper bounds with at most 2×
/// resolution, which is plenty for p50/p95/p99 latency tracking and costs
/// three `Relaxed` `fetch_add`s per record.
#[derive(Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cell: Arc<HistogramCell>,
}

impl Histogram {
    pub(crate) fn from_parts(enabled: Arc<AtomicBool>, cell: Arc<HistogramCell>) -> Self {
        Self { enabled, cell }
    }

    /// A histogram attached to no registry, always enabled.
    pub fn detached() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            cell: Arc::new(HistogramCell::new()),
        }
    }

    /// Records one observation. A no-op while disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if self.enabled.load(Relaxed) {
            self.cell.record(value);
        }
    }

    /// Starts a span timer that records its elapsed nanoseconds into this
    /// histogram when dropped (or explicitly [`stopped`](SpanTimer::stop)).
    ///
    /// While the histogram is disabled the timer holds no start instant and
    /// its drop is free — no clock is read on either end.
    #[inline]
    pub fn span(&self) -> SpanTimer<'_> {
        SpanTimer {
            histogram: self,
            start: self.enabled.load(Relaxed).then(Instant::now),
        }
    }

    /// Merged totals across all shards.
    pub fn summary(&self) -> HistogramSummary {
        self.cell.summary()
    }

    pub(crate) fn cell(&self) -> Arc<HistogramCell> {
        Arc::clone(&self.cell)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let summary = self.summary();
        f.debug_struct("Histogram")
            .field("count", &summary.count)
            .field("sum", &summary.sum)
            .finish()
    }
}

/// A stage-scoped latency timer; see [`Histogram::span`].
#[must_use = "a span timer records on drop; binding it to `_` drops it immediately"]
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    start: Option<Instant>,
}

impl SpanTimer<'_> {
    /// Stops the timer now and records the elapsed nanoseconds.
    pub fn stop(self) {
        // Dropping does the recording.
    }

    /// Abandons the span without recording anything.
    pub fn discard(mut self) {
        self.start = None;
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.histogram.record(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_disabled_counters_do_not() {
        let c = Counter::detached();
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);

        let off = Counter::from_parts(
            Arc::new(AtomicBool::new(false)),
            Arc::new(CounterCell::new()),
        );
        off.add(7);
        assert_eq!(off.value(), 0);
    }

    #[test]
    fn gauges_set_and_move() {
        let g = Gauge::detached();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
    }

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(2), 3);
        assert_eq!(bucket_upper_edge(BUCKETS - 1), u64::MAX);
        // Every value falls inside its bucket's range.
        for v in [1u64, 2, 3, 4, 7, 8, 1000, 1 << 40] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_edge(b), "{v} in bucket {b}");
            assert!(b == 0 || v > bucket_upper_edge(b - 1), "{v} in bucket {b}");
        }
    }

    #[test]
    fn histogram_records_and_summarises() {
        let h = Histogram::detached();
        for v in [0u64, 1, 1, 3, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1005);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[bucket_index(1000)], 1);
    }

    #[test]
    fn span_timer_records_once_and_discard_records_nothing() {
        let h = Histogram::detached();
        h.span().stop();
        assert_eq!(h.summary().count, 1);
        h.span().discard();
        assert_eq!(h.summary().count, 1);
        {
            let _guard = h.span();
        }
        assert_eq!(h.summary().count, 2);
    }

    #[test]
    fn disabled_span_reads_no_clock_and_records_nothing() {
        let h = Histogram::from_parts(
            Arc::new(AtomicBool::new(false)),
            Arc::new(HistogramCell::new()),
        );
        let span = h.span();
        assert!(
            span.start.is_none(),
            "disabled span must not read the clock"
        );
        drop(span);
        assert_eq!(h.summary().count, 0);
    }
}
