//! Point-in-time metric snapshots, deltas, and text exports.
//!
//! A [`Snapshot`] is a sorted list of `(name, value)` pairs taken from a
//! [`Registry`](crate::Registry). Snapshots are plain data: subtract one
//! from an earlier one with [`Snapshot::delta`] to isolate a measurement
//! window, then render with [`Snapshot::to_json`] (machine-readable, the
//! `metrics` section of `mvc-eval` reports) or [`Snapshot::to_prometheus`]
//! (the text exposition format scrapers ingest).

use crate::cell::{bucket_upper_edge, BUCKETS};

/// Merged totals of one histogram at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Per-bucket observation counts; bucket `b` spans
    /// `(upper_edge(b-1), upper_edge(b)]` — see
    /// [`bucket_upper_edge`](crate::bucket_upper_edge).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSummary {
    /// A summary with nothing recorded.
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// The value at quantile `q` (clamped to `0.0..=1.0`), as the upper
    /// edge of the bucket containing that rank — an upper bound with at
    /// most 2× resolution. Returns 0 when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), computed in f64: count is a metric volume, far
        // below the 2^52 range where the rounding would matter.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*n);
            if seen >= rank {
                return bucket_upper_edge(bucket);
            }
        }
        bucket_upper_edge(BUCKETS - 1)
    }

    /// Bucket-wise difference from an `earlier` summary of the same
    /// histogram (saturating, so a restarted cell never underflows).
    pub fn delta(&self, earlier: &Self) -> Self {
        let mut out = Self {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: [0; BUCKETS],
        };
        for (i, slot) in out.buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out
    }
}

/// The value of one named metric at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotValue {
    /// A monotonic count.
    Counter(u64),
    /// An instantaneous level.
    Gauge(i64),
    /// A merged histogram (boxed: a summary is ~0.5 KiB of buckets).
    Histogram(Box<HistogramSummary>),
}

/// One named metric in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The registry name (dotted, e.g. `pipeline.stamp_ns`).
    pub name: String,
    /// The value at snapshot time.
    pub value: SnapshotValue,
}

/// A point-in-time view of every metric in a registry, sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// The metrics, sorted by name.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Looks up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| match &e.value {
                SnapshotValue::Counter(v) => Some(*v),
                _ => None,
            })
    }

    /// Looks up a gauge's level by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| match &e.value {
                SnapshotValue::Gauge(v) => Some(*v),
                _ => None,
            })
    }

    /// Looks up a histogram's summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| match &e.value {
                SnapshotValue::Histogram(h) => Some(h.as_ref()),
                _ => None,
            })
    }

    /// The change since an `earlier` snapshot of the same registry:
    /// counters and histograms subtract (saturating), gauges keep their
    /// current level (a gauge is a reading, not an accumulation). Metrics
    /// registered after `earlier` was taken pass through unchanged.
    pub fn delta(&self, earlier: &Self) -> Self {
        let entries = self
            .entries
            .iter()
            .map(|entry| {
                let before = earlier.entries.iter().find(|e| e.name == entry.name);
                let value = match (&entry.value, before.map(|e| &e.value)) {
                    (SnapshotValue::Counter(now), Some(SnapshotValue::Counter(then))) => {
                        SnapshotValue::Counter(now.saturating_sub(*then))
                    }
                    (SnapshotValue::Histogram(now), Some(SnapshotValue::Histogram(then))) => {
                        SnapshotValue::Histogram(Box::new(now.delta(then)))
                    }
                    (value, _) => value.clone(),
                };
                SnapshotEntry {
                    name: entry.name.clone(),
                    value,
                }
            })
            .collect();
        Self { entries }
    }

    /// Renders the snapshot as one JSON object: counters and gauges as
    /// integers, histograms as `{"count", "sum", "p50", "p95", "p99"}`
    /// objects. Keys are the registry names, in sorted order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&entry.name);
            out.push_str("\": ");
            match &entry.value {
                SnapshotValue::Counter(v) => out.push_str(&v.to_string()),
                SnapshotValue::Gauge(v) => out.push_str(&v.to_string()),
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                        h.count,
                        h.sum,
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                    ));
                }
            }
        }
        out.push('}');
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// `# TYPE` headers, names sanitised (`.`, `-`, `/` → `_`), histograms
    /// as cumulative `_bucket{le="..."}` series over the power-of-two
    /// edges plus `_sum` / `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let name = sanitize_metric_name(&entry.name);
            match &entry.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let top = h
                        .buckets
                        .iter()
                        .rposition(|&n| n > 0)
                        .map_or(0, |b| (b + 1).min(BUCKETS - 1));
                    let mut cumulative = 0u64;
                    for (bucket, n) in h.buckets.iter().enumerate().take(top + 1) {
                        cumulative = cumulative.saturating_add(*n);
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            bucket_upper_edge(bucket)
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                        h.count, h.sum, h.count
                    ));
                }
            }
        }
        out
    }
}

/// Maps a dotted registry name onto the Prometheus metric-name alphabet.
fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn hist(values: &[u64]) -> HistogramSummary {
        let h = crate::Histogram::detached();
        for &v in values {
            h.record(v);
        }
        h.summary()
    }

    #[test]
    fn quantiles_are_bucket_upper_edges() {
        let h = hist(&[1, 2, 3, 4, 100]);
        assert_eq!(h.quantile(0.0), 1, "rank clamps to the first recording");
        assert_eq!(h.quantile(0.5), 3, "3rd of 5 lands in bucket [2,3]");
        assert_eq!(h.quantile(0.99), 127, "100 rounds up to its bucket edge");
        assert_eq!(HistogramSummary::empty().quantile(0.5), 0);
    }

    #[test]
    fn delta_isolates_a_window() {
        let registry = Registry::new();
        let c = registry.counter("work.items");
        let h = registry.histogram("work.ns");
        c.add(5);
        h.record(10);
        let before = registry.snapshot();
        c.add(3);
        h.record(20);
        let delta = registry.snapshot().delta(&before);
        assert_eq!(delta.counter("work.items"), Some(3));
        let d = delta.histogram("work.ns").unwrap();
        assert_eq!((d.count, d.sum), (1, 20));
    }

    #[test]
    fn gauges_pass_through_delta_unchanged() {
        let registry = Registry::new();
        let g = registry.gauge("queue.depth");
        g.set(4);
        let before = registry.snapshot();
        g.set(9);
        let delta = registry.snapshot().delta(&before);
        assert_eq!(delta.gauge("queue.depth"), Some(9));
    }

    #[test]
    fn json_renders_all_three_kinds() {
        let registry = Registry::new();
        registry.counter("a.count").add(2);
        registry.gauge("b.level").set(-1);
        registry.histogram("c.ns").record(5);
        let json = registry.snapshot().to_json();
        assert_eq!(
            json,
            "{\"a.count\": 2, \"b.level\": -1, \
             \"c.ns\": {\"count\": 1, \"sum\": 5, \"p50\": 7, \"p95\": 7, \"p99\": 7}}"
        );
    }

    #[test]
    fn prometheus_renders_types_buckets_and_sanitised_names() {
        let registry = Registry::new();
        registry.counter("net.frames-in").add(3);
        registry.histogram("rtt.ns").record(5);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE net_frames_in counter\nnet_frames_in 3\n"));
        assert!(text.contains("# TYPE rtt_ns histogram\n"));
        assert!(text.contains("rtt_ns_bucket{le=\"7\"} 1\n"));
        assert!(text.contains("rtt_ns_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("rtt_ns_sum 5\n"));
        assert!(text.contains("rtt_ns_count 1\n"));
    }
}
