//! `mvc-obs`: a zero-dependency observability layer for the whole pipeline.
//!
//! Every stage of the system — ingest buffers, the k-way merge, the
//! sharded engine, the analysis sinks, the networked service — records
//! into this crate's metric cells, and the eval harness reads them back
//! out as structured snapshots. Three design rules keep it cheap enough
//! to leave on permanently:
//!
//! 1. **Recording never takes a lock.** Counters and histograms stripe
//!    across cache-line-padded per-thread shards updated with `Relaxed`
//!    atomics; shards are merged on snapshot, not on record (see the
//!    [`Counter`] and [`Histogram`] docs).
//! 2. **Names resolve once.** A [`Registry`] maps stable dotted names to
//!    cells under a mutex, but handles are resolved at construction time;
//!    the hot path holds only `Arc`s.
//! 3. **Disabled means free.** The process-global registry ([`global`])
//!    starts disabled; a disabled handle's record path is one `Relaxed`
//!    load and a predictable branch, and span timers skip the clock reads
//!    entirely. Harnesses opt in with
//!    `obs::global().set_enabled(true)`.
//!
//! ```
//! use mvc_obs::Registry;
//!
//! let registry = Registry::new();
//! let batches = registry.counter("pipeline.batches");
//! let stamp_ns = registry.histogram("pipeline.stamp_ns");
//!
//! batches.inc();
//! {
//!     let _span = stamp_ns.span(); // records elapsed ns on drop
//! }
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("pipeline.batches"), Some(1));
//! assert_eq!(snap.histogram("pipeline.stamp_ns").unwrap().count, 1);
//! println!("{}", snap.to_json());       // {"pipeline.batches": 1, ...}
//! println!("{}", snap.to_prometheus()); // # TYPE pipeline_batches counter ...
//! ```
//!
//! The metric catalogue — every name the workspace records, with type,
//! unit, and recording site — lives in `docs/OBSERVABILITY.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod registry;
mod snapshot;

pub use cell::{bucket_upper_edge, Counter, Gauge, Histogram, SpanTimer, BUCKETS, SHARDS};
pub use registry::Registry;
pub use snapshot::{HistogramSummary, Snapshot, SnapshotEntry, SnapshotValue};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry every instrumented crate records into.
///
/// Starts **disabled** — instrumentation stays in the hot path at the cost
/// of one `Relaxed` load per record — until a harness (`mvc-eval`, a test)
/// calls `global().set_enabled(true)`.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::disabled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_one_instance_and_starts_disabled() {
        let a = global();
        let b = global();
        assert!(!a.enabled(), "global registry must start disabled");
        a.counter("lib.test.hits").add(3);
        assert_eq!(
            b.snapshot().counter("lib.test.hits"),
            Some(0),
            "disabled recording is a no-op, but the name registers"
        );
    }
}
