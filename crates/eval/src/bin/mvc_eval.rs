//! Command-line entry point that regenerates the paper's figures.
//!
//! ```text
//! mvc-eval [fig4|fig5|fig6|fig7|adaptive|all] [--trials N] [--csv DIR]
//! ```
//!
//! Each figure is printed as an aligned table; with `--csv DIR` the raw series
//! are additionally written as `DIR/<figure>.csv`.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use mvc_eval::{adaptive_ablation, fig4, fig5, fig6, fig7, render_csv, render_table, FigureData};

const DEFAULT_TRIALS: usize = 10;

struct Options {
    figures: Vec<String>,
    trials: usize,
    csv_dir: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut figures = Vec::new();
    let mut trials = DEFAULT_TRIALS;
    let mut csv_dir = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trials" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--trials requires a value".to_string())?;
                trials = value
                    .parse()
                    .map_err(|_| format!("invalid trial count: {value}"))?;
                if trials == 0 {
                    return Err("trial count must be at least 1".into());
                }
            }
            "--csv" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--csv requires a directory".to_string())?;
                csv_dir = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: mvc-eval [fig4|fig5|fig6|fig7|adaptive|all] [--trials N] [--csv DIR]"
                        .into(),
                )
            }
            name => figures.push(name.to_string()),
        }
    }
    if figures.is_empty() {
        figures.push("all".to_string());
    }
    Ok(Options {
        figures,
        trials,
        csv_dir,
    })
}

fn run_figure(name: &str, trials: usize) -> Result<Vec<FigureData>, String> {
    match name {
        "fig4" => Ok(vec![fig4(trials)]),
        "fig5" => Ok(vec![fig5(trials)]),
        "fig6" => Ok(vec![fig6(trials)]),
        "fig7" => Ok(vec![fig7(trials)]),
        "adaptive" => Ok(vec![adaptive_ablation(trials)]),
        "all" => Ok(vec![
            fig4(trials),
            fig5(trials),
            fig6(trials),
            fig7(trials),
            adaptive_ablation(trials),
        ]),
        other => Err(format!(
            "unknown figure '{other}' (expected fig4|fig5|fig6|fig7|adaptive|all)"
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    for name in &options.figures {
        let figures = match run_figure(name, options.trials) {
            Ok(f) => f,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        for figure in figures {
            println!("{}", render_table(&figure));
            if let Some(dir) = &options.csv_dir {
                if let Err(e) = fs::create_dir_all(dir) {
                    eprintln!("cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
                let path = dir.join(format!("{}.csv", figure.id));
                if let Err(e) = fs::write(&path, render_csv(&figure)) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_options_run_everything() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.figures, vec!["all"]);
        assert_eq!(o.trials, DEFAULT_TRIALS);
        assert!(o.csv_dir.is_none());
    }

    #[test]
    fn explicit_figure_and_trials() {
        let o = parse_args(&args(&["fig6", "--trials", "3", "--csv", "/tmp/out"])).unwrap();
        assert_eq!(o.figures, vec!["fig6"]);
        assert_eq!(o.trials, 3);
        assert_eq!(o.csv_dir.as_deref(), Some(std::path::Path::new("/tmp/out")));
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        assert!(parse_args(&args(&["--trials"])).is_err());
        assert!(parse_args(&args(&["--trials", "zero"])).is_err());
        assert!(parse_args(&args(&["--trials", "0"])).is_err());
        assert!(parse_args(&args(&["--csv"])).is_err());
        assert!(parse_args(&args(&["--help"])).is_err());
        assert!(run_figure("fig99", 1).is_err());
    }

    #[test]
    fn run_figure_dispatches_names() {
        assert_eq!(run_figure("fig4", 1).unwrap().len(), 1);
        assert_eq!(run_figure("adaptive", 1).unwrap().len(), 1);
        assert_eq!(run_figure("all", 1).unwrap().len(), 5);
    }
}
